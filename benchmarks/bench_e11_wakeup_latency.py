"""E11 bench: wakeup tiers + ISA mwait-wakeup micro-benchmark."""

from repro.machine import build_machine


def test_e11_wakeup_latency(run_experiment):
    result = run_experiment("E11")
    measured = result.series("measured")
    assert measured["rf"] < measured["l3"]


def test_bench_isa_mwait_wakeup(benchmark):
    """Full ISA machine: arm monitor, block, external write, respond."""

    def one_wakeup():
        machine = build_machine()
        flag = machine.alloc("flag", 64)
        resp = machine.alloc("resp", 64)
        machine.load_asm(0, """
            movi r1, FLAG
            monitor r1
            mwait
            movi r2, RESP
            movi r3, 1
            st r2, 0, r3
            halt
        """, symbols={"FLAG": flag.base, "RESP": resp.base},
            supervisor=True)
        machine.boot(0)
        machine.run(max_events=100)
        machine.engine.at(machine.engine.now + 50,
                          machine.memory.store, flag.base, 1, "dev")
        machine.run(until=machine.engine.now + 10_000)
        return machine.memory.load(resp.base)

    responded = benchmark(one_wakeup)
    assert responded == 1


def test_bench_start_stop_pair(benchmark):
    """api_start + api_stop of a ptid (the scheduler's new hot loop)."""
    machine = build_machine()
    machine.load_asm(1, "halt", supervisor=False)
    core = machine.core(0)

    def start_stop():
        latency = core.api_start(1)
        core.api_stop(1)
        return latency

    latency = benchmark(start_stop)
    assert latency >= 0
