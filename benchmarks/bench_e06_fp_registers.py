"""E06 bench: kernel FP use + architectural-state micro-benchmarks."""

from repro.arch.state import ArchState


def test_e06_fp_registers(run_experiment):
    result = run_experiment("E06")
    cells = result.series("cells")
    assert cells["hw-thread"]["fp"] == cells["hw-thread"]["base"]


def test_bench_state_snapshot_base(benchmark):
    """Snapshotting 272 B of integer state (the baseline switch body)."""
    state = ArchState()
    state.write("r1", 42)
    snap = benchmark(state.snapshot)
    assert snap["r1"] == 42


def test_bench_state_snapshot_with_vector(benchmark):
    """Snapshotting 784 B once vector registers are dirty."""
    state = ArchState()
    state.write("v0", 7)  # dirties the vector file
    assert state.vector_dirty
    snap = benchmark(state.snapshot)
    assert snap["v0"] == 7


def test_bench_state_restore(benchmark):
    state = ArchState()
    state.write("r3", 9)
    snap = state.snapshot()
    other = ArchState()

    def restore():
        other.load_snapshot(snap)
        return other

    restored = benchmark(restore)
    assert restored.read("r3") == 9
