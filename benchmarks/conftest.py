"""Shared benchmark plumbing.

Each bench runs one experiment through pytest-benchmark and prints the
experiment's tables -- the same rows EXPERIMENTS.md records -- so
``pytest benchmarks/ --benchmark-only`` doubles as the paper's
evaluation run.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Benchmark an experiment's run() and print its report."""

    def runner(experiment_id: str, rounds: int = 2, quick: bool = True):
        from repro.experiments import get_experiment

        experiment = get_experiment(experiment_id)
        result = benchmark.pedantic(experiment.run,
                                    kwargs={"quick": quick},
                                    rounds=rounds, iterations=1)
        with capsys.disabled():
            print()
            print(result.render())
        assert result.all_supported(), (
            f"{experiment_id} refuted a paper claim:\n"
            + result.claim_table().render())
        return result

    return runner
