#!/usr/bin/env python
"""Engine/core throughput baseline: events/sec and simulated cycles/sec.

Measures the three layers the fast path is built from and writes the
numbers to ``BENCH_engine.json`` at the repo root so future PRs have a
trajectory to compare against:

- ``engine``: raw callback dispatch throughput (a self-rescheduling
  timer chain -- every simulated cycle is one heap pop + one push);
- ``core``: simulated cycles/sec of an SMT core grinding through
  ``work`` bursts, with the busy-cycle fast-forward on and off;
- ``evaluation``: end-to-end wall-clock of the full and quick E01-E16
  evaluations (serial, in-process);
- ``instrumentation``: the cost of the observability layer, measured as
  an interleaved best-of-N A/B in one process (container wall-clock
  noise between runs is ~7%, far above the effect, so cross-run
  comparison would be meaningless).  ``disabled_overhead_pct`` is the
  regression of instrument=False against a reference pass of the same
  build -- the disabled issue loop is byte-identical to the
  uninstrumented one, so this is a measured noise bound, gated at <3%
  in CI.  ``enabled_overhead_pct`` documents what full instrumentation
  costs when you opt in.

Run:  PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_engine.json"


def bench_engine_dispatch(events: int = 300_000) -> dict:
    from repro.sim.engine import Engine

    engine = Engine()

    def tick() -> None:
        if engine.now < events:
            engine.after(1, tick)

    engine.after(1, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return {
        "events": engine.events_processed,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(engine.events_processed / elapsed),
    }


def _work_machine(fast_forward: bool, burst: int, threads: int):
    from repro.machine import build_machine

    machine = build_machine(cores=1, hw_threads_per_core=max(threads, 2),
                            smt_width=2, fast_forward=fast_forward)
    for ptid in range(threads):
        machine.load_asm(ptid, f"work {burst}\nhalt", supervisor=True)
        machine.boot(ptid)
    return machine


def bench_core_cycles(fast_forward: bool, burst: int, threads: int = 4) -> dict:
    machine = _work_machine(fast_forward, burst, threads)
    start = time.perf_counter()
    machine.run()
    elapsed = time.perf_counter() - start
    cycles = machine.engine.now
    return {
        "fast_forward": fast_forward,
        "threads": threads,
        "burst_cycles": burst,
        "simulated_cycles": cycles,
        "seconds": round(elapsed, 4),
        "cycles_per_sec": round(cycles / elapsed),
    }


def bench_instrumentation(trials: int = 5, burst: int = 100_000,
                          threads: int = 4) -> dict:
    """Best-of-N interleaved A/B: reference vs disabled vs enabled.

    Uses the naive (fast_forward=False) per-cycle loop, where the
    instrumented loop body would hurt most if the mode selection ever
    leaked into the disabled path.
    """
    from repro.machine import build_machine

    def once(instrument: bool) -> float:
        machine = build_machine(cores=1, hw_threads_per_core=max(threads, 2),
                                smt_width=2, fast_forward=False,
                                instrument=instrument)
        for ptid in range(threads):
            machine.load_asm(ptid, f"work {burst}\nhalt", supervisor=True)
            machine.boot(ptid)
        start = time.perf_counter()
        machine.run()
        return machine.engine.now / (time.perf_counter() - start)

    best = {"reference": 0.0, "disabled": 0.0, "enabled": 0.0}
    once(False)  # warm caches/allocator before measuring
    for _ in range(trials):
        best["reference"] = max(best["reference"], once(False))
        best["disabled"] = max(best["disabled"], once(False))
        best["enabled"] = max(best["enabled"], once(True))
    disabled_pct = 100.0 * (1 - best["disabled"] / best["reference"])
    enabled_pct = 100.0 * (1 - best["enabled"] / best["reference"])
    return {
        "trials": trials,
        "burst_cycles": burst,
        "threads": threads,
        "reference_cycles_per_sec": round(best["reference"]),
        "disabled_cycles_per_sec": round(best["disabled"]),
        "enabled_cycles_per_sec": round(best["enabled"]),
        "disabled_overhead_pct": round(disabled_pct, 2),
        "enabled_overhead_pct": round(enabled_pct, 2),
    }


def bench_evaluation(quick: bool) -> dict:
    from repro.experiments import all_experiments

    start = time.perf_counter()
    for experiment in all_experiments():
        experiment.run(quick=quick)
    elapsed = time.perf_counter() - start
    return {"quick": quick, "seconds": round(elapsed, 2)}


def main() -> None:
    sys.setrecursionlimit(10_000)
    payload = {
        "engine": bench_engine_dispatch(),
        "core": [
            # naive gets a smaller burst so the bench stays quick; the
            # metric is cycles/sec, which is size-independent here
            bench_core_cycles(fast_forward=True, burst=2_000_000),
            bench_core_cycles(fast_forward=False, burst=100_000),
        ],
        "instrumentation": bench_instrumentation(),
        "evaluation": [
            bench_evaluation(quick=True),
            bench_evaluation(quick=False),
        ],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    main()
