#!/usr/bin/env python
"""Engine/core throughput baseline: events/sec and simulated cycles/sec.

Measures the three layers the fast path is built from and writes the
numbers to ``BENCH_engine.json`` at the repo root so future PRs have a
trajectory to compare against:

- ``engine``: raw callback dispatch throughput (a self-rescheduling
  timer chain -- every simulated cycle is one heap pop + one push);
- ``core``: simulated cycles/sec of an SMT core grinding through
  ``work`` bursts, with the busy-cycle fast-forward on and off;
- ``evaluation``: end-to-end wall-clock of the full and quick E01-E17
  evaluations (serial, in-process);
- ``watch_cancel``: arm/cancel churn on a dense watch bus (the O(1)
  per-line watcher sets; a list regression would show here first);
- ``coherence``: paired A/B of the coherence hook -- disabled must be
  free (noise bound, gated <3% in CI), enabled documents the
  directory model's opt-in cost on a store-heavy loop;
- ``instrumentation``: the cost of the observability layer, measured as
  an interleaved best-of-N A/B in one process (container wall-clock
  noise between runs is ~7%, far above the effect, so cross-run
  comparison would be meaningless).  ``disabled_overhead_pct`` is the
  regression of instrument=False against a reference pass of the same
  build -- the disabled issue loop is byte-identical to the
  uninstrumented one, so this is a measured noise bound, gated at <3%
  in CI.  ``enabled_overhead_pct`` documents what full instrumentation
  costs when you opt in.

Run:  PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_engine.json"


def bench_engine_dispatch(events: int = 300_000) -> dict:
    from repro.sim.engine import Engine

    engine = Engine()

    def tick() -> None:
        if engine.now < events:
            engine.after(1, tick)

    engine.after(1, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return {
        "events": engine.events_processed,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(engine.events_processed / elapsed),
    }


def _work_machine(fast_forward: bool, burst: int, threads: int):
    from repro.machine import build_machine

    machine = build_machine(cores=1, hw_threads_per_core=max(threads, 2),
                            smt_width=2, fast_forward=fast_forward)
    for ptid in range(threads):
        machine.load_asm(ptid, f"work {burst}\nhalt", supervisor=True)
        machine.boot(ptid)
    return machine


def bench_core_cycles(fast_forward: bool, burst: int, threads: int = 4) -> dict:
    machine = _work_machine(fast_forward, burst, threads)
    start = time.perf_counter()
    machine.run()
    elapsed = time.perf_counter() - start
    cycles = machine.engine.now
    return {
        "fast_forward": fast_forward,
        "threads": threads,
        "burst_cycles": burst,
        "simulated_cycles": cycles,
        "seconds": round(elapsed, 4),
        "cycles_per_sec": round(cycles / elapsed),
    }


def bench_instrumentation(trials: int = 5, burst: int = 100_000,
                          threads: int = 4) -> dict:
    """Best-of-N interleaved A/B: reference vs disabled vs enabled.

    Uses the naive (fast_forward=False) per-cycle loop, where the
    instrumented loop body would hurt most if the mode selection ever
    leaked into the disabled path.
    """
    from repro.machine import build_machine

    def once(instrument: bool) -> float:
        machine = build_machine(cores=1, hw_threads_per_core=max(threads, 2),
                                smt_width=2, fast_forward=False,
                                instrument=instrument)
        for ptid in range(threads):
            machine.load_asm(ptid, f"work {burst}\nhalt", supervisor=True)
            machine.boot(ptid)
        start = time.perf_counter()
        machine.run()
        return machine.engine.now / (time.perf_counter() - start)

    best = {"reference": 0.0, "disabled": 0.0, "enabled": 0.0}
    once(False)  # warm caches/allocator before measuring
    for _ in range(trials):
        best["reference"] = max(best["reference"], once(False))
        best["disabled"] = max(best["disabled"], once(False))
        best["enabled"] = max(best["enabled"], once(True))
    disabled_pct = 100.0 * (1 - best["disabled"] / best["reference"])
    enabled_pct = 100.0 * (1 - best["enabled"] / best["reference"])
    return {
        "trials": trials,
        "burst_cycles": burst,
        "threads": threads,
        "reference_cycles_per_sec": round(best["reference"]),
        "disabled_cycles_per_sec": round(best["disabled"]),
        "enabled_cycles_per_sec": round(best["enabled"]),
        "disabled_overhead_pct": round(disabled_pct, 2),
        "enabled_overhead_pct": round(enabled_pct, 2),
    }


def bench_watch_cancel(watches: int = 100_000, per_line: int = 8,
                       trials: int = 5) -> dict:
    """Arm/cancel churn on the watch bus: ops/sec over a dense bus.

    ``per_line`` watches share each line, so a cancel must find its
    watch among siblings -- the case that was O(n) list scans before
    the per-line watcher sets became dicts. Cancels run in arm order
    (the worst case for a list: always a scan past live siblings).
    """
    from repro.mem.watch import LINE_BYTES, WatchBus

    best = 0.0
    for _ in range(trials):
        bus = WatchBus()
        armed = [bus.watch((index // per_line) * LINE_BYTES)
                 for index in range(watches)]
        start = time.perf_counter()
        for watch in armed:
            watch.cancel()
        elapsed = time.perf_counter() - start
        best = max(best, watches / elapsed)
    return {
        "watches": watches,
        "per_line": per_line,
        "trials": trials,
        "cancels_per_sec": round(best),
    }


def coherence_ab(trials: int = 9, iters: int = 60_000) -> dict:
    """Paired interleaved A/B: the coherence hook must be free when off.

    A store-heavy ISA loop (every ``st`` crosses the watch-bus notify
    path and the core's coherence check). Reference and disabled both
    run ``coherence=None`` -- the disabled figure is the measured noise
    bound for the default configuration, gated <3% in CI like the
    instrumentation and tracing gates. ``enabled`` runs the directory
    model on the same (unwatched) workload: the documented opt-in cost
    of pricing every store's directory lookup. Per-round ratios with
    rotating arm order and gc off, median across rounds (the same
    discipline as bench_e16_spans.tracing_ab, for the same reasons).
    """
    import gc
    import statistics

    from repro.machine import build_machine

    source = f"""
        movi r1, BUF
        movi r3, 1
        movi r4, {iters}
    loop:
        st r1, 0, r3
        addi r2, r2, 1
        bne r2, r4, loop
        halt
    """

    def once(coherence) -> float:
        machine = build_machine(cores=1, hw_threads_per_core=2,
                                coherence=coherence)
        buf = machine.alloc("buf", 64)
        machine.load_asm(0, source, symbols={"BUF": buf.base},
                         supervisor=True)
        machine.boot(0)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            machine.run()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return machine.engine.now / elapsed

    once(None)  # warm caches/allocator before measuring
    best = {"reference": 0.0, "disabled": 0.0, "enabled": 0.0}
    models = {"reference": None, "disabled": None, "enabled": "directory"}
    disabled_ratios, enabled_ratios = [], []
    arms = ("reference", "disabled", "enabled")
    for round_index in range(trials):
        sample = {}
        for offset in range(3):
            arm = arms[(round_index + offset) % 3]
            sample[arm] = once(models[arm])
        disabled_ratios.append(sample["disabled"] / sample["reference"])
        enabled_ratios.append(sample["enabled"] / sample["reference"])
        for arm in arms:
            best[arm] = max(best[arm], sample[arm])
    disabled_pct = 100.0 * (1 - statistics.median(disabled_ratios))
    enabled_pct = 100.0 * (1 - statistics.median(enabled_ratios))
    return {
        "trials": trials,
        "store_iters": iters,
        "reference_cycles_per_sec": round(best["reference"]),
        "disabled_cycles_per_sec": round(best["disabled"]),
        "enabled_cycles_per_sec": round(best["enabled"]),
        "disabled_overhead_pct": round(disabled_pct, 2),
        "enabled_overhead_pct": round(enabled_pct, 2),
    }


def bench_evaluation(quick: bool) -> dict:
    from repro.experiments import all_experiments

    start = time.perf_counter()
    for experiment in all_experiments():
        experiment.run(quick=quick)
    elapsed = time.perf_counter() - start
    return {"quick": quick, "seconds": round(elapsed, 2)}


def main() -> None:
    sys.setrecursionlimit(10_000)
    # same retry rule as the tracing bench and the CI smoke gate:
    # per-pass wall-clock wobble on a shared container can exceed the
    # 3% budget even between identical passes, so record the first A/B
    # attempt that lands inside it -- the committed number is the
    # demonstrated noise bound, and a real disabled-path regression
    # would fail all four attempts loudly
    for _ in range(4):
        coherence = coherence_ab()
        if coherence["disabled_overhead_pct"] <= 3.0:
            break
    payload = {
        "engine": bench_engine_dispatch(),
        "core": [
            # naive gets a smaller burst so the bench stays quick; the
            # metric is cycles/sec, which is size-independent here
            bench_core_cycles(fast_forward=True, burst=2_000_000),
            bench_core_cycles(fast_forward=False, burst=100_000),
        ],
        "instrumentation": bench_instrumentation(),
        "watch_cancel": bench_watch_cancel(),
        "coherence": coherence,
        "evaluation": [
            bench_evaluation(quick=True),
            bench_evaluation(quick=False),
        ],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    main()
