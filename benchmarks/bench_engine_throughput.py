#!/usr/bin/env python
"""Engine/core throughput baseline: events/sec and simulated cycles/sec.

Measures the three layers the fast path is built from and writes the
numbers to ``BENCH_engine.json`` at the repo root so future PRs have a
trajectory to compare against:

- ``engine``: raw callback dispatch throughput (a self-rescheduling
  timer chain -- every simulated cycle is one heap pop + one push);
- ``core``: simulated cycles/sec of an SMT core grinding through
  ``work`` bursts, with the busy-cycle fast-forward on and off;
- ``evaluation``: end-to-end wall-clock of the full and quick E01-E13
  evaluations (serial, in-process).

Run:  PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_engine.json"


def bench_engine_dispatch(events: int = 300_000) -> dict:
    from repro.sim.engine import Engine

    engine = Engine()

    def tick() -> None:
        if engine.now < events:
            engine.after(1, tick)

    engine.after(1, tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return {
        "events": engine.events_processed,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(engine.events_processed / elapsed),
    }


def _work_machine(fast_forward: bool, burst: int, threads: int):
    from repro.machine import build_machine

    machine = build_machine(cores=1, hw_threads_per_core=max(threads, 2),
                            smt_width=2, fast_forward=fast_forward)
    for ptid in range(threads):
        machine.load_asm(ptid, f"work {burst}\nhalt", supervisor=True)
        machine.boot(ptid)
    return machine


def bench_core_cycles(fast_forward: bool, burst: int, threads: int = 4) -> dict:
    machine = _work_machine(fast_forward, burst, threads)
    start = time.perf_counter()
    machine.run()
    elapsed = time.perf_counter() - start
    cycles = machine.engine.now
    return {
        "fast_forward": fast_forward,
        "threads": threads,
        "burst_cycles": burst,
        "simulated_cycles": cycles,
        "seconds": round(elapsed, 4),
        "cycles_per_sec": round(cycles / elapsed),
    }


def bench_evaluation(quick: bool) -> dict:
    from repro.experiments import all_experiments

    start = time.perf_counter()
    for experiment in all_experiments():
        experiment.run(quick=quick)
    elapsed = time.perf_counter() - start
    return {"quick": quick, "seconds": round(elapsed, 2)}


def main() -> None:
    sys.setrecursionlimit(10_000)
    payload = {
        "engine": bench_engine_dispatch(),
        "core": [
            # naive gets a smaller burst so the bench stays quick; the
            # metric is cycles/sec, which is size-independent here
            bench_core_cycles(fast_forward=True, burst=2_000_000),
            bench_core_cycles(fast_forward=False, burst=100_000),
        ],
        "evaluation": [
            bench_evaluation(quick=True),
            bench_evaluation(quick=False),
        ],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    main()
