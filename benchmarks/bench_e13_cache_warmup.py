"""E13 bench: cache warmup policies + hierarchy micro-benchmarks."""

from repro.mem.cache import CacheHierarchy


def test_e13_cache_warmup(run_experiment):
    result = run_experiment("E13")
    cells = result.series("cells")
    assert cells["prefetch"] < cells["none"]
    assert cells["pinned"] < cells["none"]


def test_bench_hot_access(benchmark):
    caches = CacheHierarchy()
    caches.warm(0x1000, 64)
    cycles = benchmark(caches.access, 0x1000)
    assert cycles == caches.l1.hit_cycles


def test_bench_working_set_walk(benchmark):
    caches = CacheHierarchy()

    def walk():
        return caches.walk_working_set(0x100000, 4096)

    cycles = benchmark(walk)
    assert cycles > 0


def test_bench_pin_and_interfere(benchmark):
    """Pin 4 KiB, stream 8 MiB over it, verify residency survives."""

    def run():
        caches = CacheHierarchy()
        caches.pin(0x1000, 4096)
        caches.walk_working_set(0x4000000, 8 * 1024 * 1024)
        return caches.walk_working_set(0x1000, 4096)

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    # fully L1-resident walk: 64 lines at l1 hit cost
    hot = CacheHierarchy()
    assert cycles == 64 * hot.l1.hit_cycles
