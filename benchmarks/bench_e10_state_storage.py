"""E10 bench: storage arithmetic + ThreadStateStore micro-benchmarks."""

from repro.hw.storage import ThreadStateStore


def test_e10_state_storage(run_experiment):
    result = run_experiment("E10")
    assert result.series("rf_full") == 83


def test_bench_store_registration(benchmark):
    """Registering 512 contexts across the three tiers."""

    def fill():
        store = ThreadStateStore(rf_bytes=64 * 1024, l2_slots=48)
        for ptid in range(512):
            store.register(ptid)
        return store

    store = benchmark(fill)
    assert sum(store.occupancy().values()) == 512


def test_bench_promote_evict_cycle(benchmark):
    """start_latency on a spilled context: promote + LRU evict."""
    store = ThreadStateStore(rf_bytes=2 * 1024, l2_slots=8)
    for ptid in range(16):
        store.register(ptid)
    everyone = list(range(16))
    state = {"next": 2}

    def churn():
        victim = state["next"]
        state["next"] = (victim + 1) % 16
        return store.start_latency(victim, evictable=everyone)

    latency = benchmark(churn)
    assert latency > 0
