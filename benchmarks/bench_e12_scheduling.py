"""E12 bench: scheduling disciplines + server micro-benchmarks."""

import random

from repro.kernel import FifoServer, ProcessorSharingServer
from repro.kernel.sched import feed_trace
from repro.sim.engine import Engine
from repro.workloads import (
    Bimodal,
    PoissonArrivals,
    RequestGenerator,
    gap_for_load,
)


def test_e12_scheduling(run_experiment):
    result = run_experiment("E12", rounds=1)
    series = result.series("series")
    high = max(series["ps"])
    assert series["ps"][high]["p99"] < series["fifo"][high]["p99"]


def _trace(n=500):
    svc = Bimodal(500, 50_000, p_long=0.01)
    gen = RequestGenerator(PoissonArrivals(gap_for_load(svc, 0.6)), svc,
                           random.Random(3))
    return gen.trace(n)


def _run(factory, trace):
    engine = Engine()
    server = factory(engine)
    feed_trace(engine, server, trace)
    engine.run()
    return server


def test_bench_fifo_server(benchmark):
    server = benchmark.pedantic(
        lambda: _run(FifoServer, _trace()), rounds=3, iterations=1)
    assert server.completed == 500


def test_bench_ps_server(benchmark):
    server = benchmark.pedantic(
        lambda: _run(ProcessorSharingServer, _trace()), rounds=3,
        iterations=1)
    assert server.completed == 500
