"""E08 bench: untrusted hypervisor + ISA-machine micro-benchmark."""

from repro.hypervisor import UntrustedHypervisorDemo


def test_e08_untrusted_hv(run_experiment):
    result = run_experiment("E08", rounds=1)
    outcome = result.series("outcome")
    assert outcome.hv_ran_privileged is False


def test_bench_exit_roundtrip_isa(benchmark):
    """Full ISA-level exit: privop fault -> descriptor -> user-mode
    hypervisor handles -> guest restart."""

    def one_run():
        demo = UntrustedHypervisorDemo(iterations=5,
                                       guest_work_cycles=500,
                                       handler_work_cycles=100)
        return demo.run()

    outcome = benchmark(one_run)
    assert outcome.exits_handled == 5
