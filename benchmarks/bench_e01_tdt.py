"""E01 bench: Table 1 reproduction + TDT primitive micro-benchmarks."""

from repro.hw.tdt import Permission, TdtCache, ThreadDescriptorTable
from repro.mem.memory import Memory


def test_e01_table1(run_experiment):
    result = run_experiment("E01")
    assert result.series("all_match") is True


def test_bench_tdt_cached_lookup(benchmark):
    """Hot-path vtid->ptid translation through the core's TDT cache."""
    memory = Memory()
    region = memory.alloc("tdt", 1024)
    table = ThreadDescriptorTable(memory, region.base, capacity=64)
    for vtid in range(64):
        table.set_entry(vtid, vtid, Permission.ALL)
    cache = TdtCache()
    cache.lookup(memory, region.base, 7)  # warm

    def lookup():
        entry, _cycles = cache.lookup(memory, region.base, 7)
        return entry

    entry = benchmark(lookup)
    assert entry.ptid == 7


def test_bench_tdt_miss_walk(benchmark):
    """Cold lookup: a walk of the memory-resident table after invtid."""
    memory = Memory()
    region = memory.alloc("tdt", 1024)
    table = ThreadDescriptorTable(memory, region.base, capacity=64)
    table.set_entry(3, 9, Permission.ALL)
    cache = TdtCache()

    def miss():
        cache.invalidate(region.base, 3)
        entry, cycles = cache.lookup(memory, region.base, 3)
        return cycles

    cycles = benchmark(miss)
    assert cycles == cache.costs.tdt_miss_cycles
