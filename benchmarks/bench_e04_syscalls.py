"""E04 bench: syscall paths + per-path call micro-benchmarks."""

from repro.arch.costs import CostModel
from repro.kernel import HwThreadSyscallPath, SyncSyscallPath, SyscallRunner
from repro.sim.engine import Engine


def test_e04_syscalls(run_experiment):
    result = run_experiment("E04")
    series = result.series("series")
    for work in series["hw-thread"]:
        assert series["hw-thread"][work]["p50"] < series["sync"][work]["p50"]


def _run_calls(path_cls, calls=200):
    engine = Engine()
    path = path_cls(engine, CostModel())
    runner = SyscallRunner(engine, path, calls, user_work_cycles=100,
                           kernel_work_cycles=200)
    engine.run()
    return runner


def test_bench_sync_syscall_batch(benchmark):
    runner = benchmark(_run_calls, SyncSyscallPath)
    assert runner.recorder.count == 200


def test_bench_hw_thread_syscall_batch(benchmark):
    runner = benchmark(_run_calls, HwThreadSyscallPath)
    assert runner.recorder.count == 200
    assert runner.overhead_fraction() < 0.2
