"""E03 bench: the I/O triangle + NIC RX-path micro-benchmark."""

from repro.devices import Nic
from repro.machine import build_machine
from repro.workloads import DeterministicArrivals


def test_e03_fast_io(run_experiment):
    result = run_experiment("E03", rounds=1)
    series = result.series("series")
    for load in result.series("loads"):
        assert series["interrupt"][load]["mean"] \
            > series["mwait"][load]["mean"]


def test_bench_nic_rx_packet(benchmark):
    """Simulated cost of one full RX delivery: DMA, descriptor, tail."""

    def deliver_batch():
        machine = build_machine()
        nic = Nic(machine.engine, machine.memory, machine.dma)
        nic.start_rx(DeterministicArrivals(1_000),
                     machine.rngs.stream("rx"), max_packets=50)
        machine.run(until=1_000_000)
        return nic

    nic = benchmark(deliver_batch)
    assert nic.packets_delivered == 50


def test_bench_ring_consume(benchmark):
    """Software-side ring pop (head load, descriptor load, head store)."""
    machine = build_machine()
    nic = Nic(machine.engine, machine.memory, machine.dma)
    nic.start_rx(DeterministicArrivals(100),
                 machine.rngs.stream("rx"), max_packets=200)
    machine.run(until=1_000_000)

    state = {"left": nic.rx.pending()}

    def consume():
        pkt = nic.rx.consume()
        if pkt is None:
            # refill by rewinding the head (bench loops many times)
            machine.memory.store(nic.rx.head_addr, 0)
            pkt = nic.rx.consume()
        return pkt

    pkt = benchmark(consume)
    assert pkt is not None
