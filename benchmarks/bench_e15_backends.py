"""E15 bench: backend agreement + the ISA-backend cluster micro-bench.

Run as a script (``PYTHONPATH=src python benchmarks/bench_e15_backends.py``)
to record the E15 wall-clock and an ISA-cluster events/sec number per
engine-queue mode into ``BENCH_cluster.json``; pass ``--quick`` to skip
the full-mode experiment timing.
"""

import sys

from repro.cluster import ClusterConfig, DESIGNS, run_cluster


def test_e15_backend_agreement(run_experiment):
    result = run_experiment("E15", rounds=1)
    assert result.series("worst_p99_deviation") <= 2.0
    ratios = result.series("sw_hw_ratios")
    assert all(r > 1.0 for r in ratios["model"])
    assert all(r > 1.0 for r in ratios["isa"])


def _run(backend, requests=60):
    config = ClusterConfig(nodes=2, design=DESIGNS["hw-threads"],
                           policy="round-robin", fanout=1, load=0.06,
                           mean_service_cycles=4_000, segments=2,
                           rtt_cycles=20_000, requests=requests,
                           backend=backend)
    return run_cluster(config, seed=7)


def test_bench_model_cluster(benchmark):
    result = benchmark(_run, "model")
    assert result.summary["completed"] == 60
    assert result.summary["conserved"]


def test_bench_isa_cluster(benchmark):
    """The fidelity premium: every ISA-node cycle is simulated."""
    result = benchmark(_run, "isa")
    assert result.summary["completed"] == 60
    assert result.summary["conserved"]

def micro_bench() -> dict:
    """The ISA-backend cluster run (every node a simulated machine):
    the path the busy-cycle fast-forward keeps viable."""
    from benchmarks._cluster_bench import timed_cluster_run

    return timed_cluster_run(lambda: _run("isa"))


def main(quick_only: bool) -> None:
    from benchmarks import _cluster_bench as cb

    payload = {
        # pre-rework E15 full-mode wall-clock (heap engine, naive
        # per-cycle ISA stepping on the machine-backend nodes)
        "pre_rework_full_seconds": 8.13,
        "modes": cb.per_queue_mode(lambda: {
            "cluster_run": micro_bench(),
            "experiment": (
                [cb.timed_experiment("E15", quick=True)] if quick_only else
                [cb.timed_experiment("E15", quick=True),
                 cb.timed_experiment("E15", quick=False)]),
        }),
    }
    cb.update_section("e15", payload)


if __name__ == "__main__":
    sys.path.insert(0, str(__import__("pathlib").Path(__file__)
                           .resolve().parent.parent))
    main(quick_only="--quick" in sys.argv[1:])
