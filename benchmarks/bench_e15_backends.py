"""E15 bench: backend agreement + the ISA-backend cluster micro-bench."""

from repro.cluster import ClusterConfig, DESIGNS, run_cluster


def test_e15_backend_agreement(run_experiment):
    result = run_experiment("E15", rounds=1)
    assert result.series("worst_p99_deviation") <= 2.0
    ratios = result.series("sw_hw_ratios")
    assert all(r > 1.0 for r in ratios["model"])
    assert all(r > 1.0 for r in ratios["isa"])


def _run(backend, requests=60):
    config = ClusterConfig(nodes=2, design=DESIGNS["hw-threads"],
                           policy="round-robin", fanout=1, load=0.06,
                           mean_service_cycles=4_000, segments=2,
                           rtt_cycles=20_000, requests=requests,
                           backend=backend)
    return run_cluster(config, seed=7)


def test_bench_model_cluster(benchmark):
    result = benchmark(_run, "model")
    assert result.summary["completed"] == 60
    assert result.summary["conserved"]


def test_bench_isa_cluster(benchmark):
    """The fidelity premium: every ISA-node cycle is simulated."""
    result = benchmark(_run, "isa")
    assert result.summary["completed"] == 60
    assert result.summary["conserved"]