"""Benches for the paper's extension / future-work features.

- smartNIC direct dispatch (Section 4: offloading thread-event
  association to peripheral devices);
- priority-weighted SMT issue (Section 4: "threads used for serving
  time-sensitive interrupts receive more cycles");
- cross-core thread migration (Section 4: the scheduler "will also
  manage the mapping of threads to cores");
- multi-guest exception queuing (Section 3.2).
"""

from repro.devices import Nic
from repro.hypervisor.multiguest import MultiGuestHypervisor
from repro.machine import build_machine
from repro.workloads import DeterministicArrivals


def test_bench_smartnic_dispatch(benchmark):
    """Packets dispatched by the NIC starting the handler ptid itself."""

    def run():
        machine = build_machine()
        nic = Nic(machine.engine, machine.memory, machine.dma,
                  dispatch=lambda seq: machine.core(0).api_start(1))
        machine.load_asm(1, """
        loop:
            movi r1, HEAD
            ld r2, r1, 0
            addi r2, r2, 1
            st r1, 0, r2
            stop 1
            jmp loop
        """, symbols={"HEAD": nic.rx.head_addr}, supervisor=True)
        nic.start_rx(DeterministicArrivals(3_000),
                     machine.rngs.stream("rx"), max_packets=20)
        machine.run(until=1_000_000)
        return machine.thread(1).starts

    starts = benchmark(run)
    assert starts == 20


def test_bench_priority_issue_contention(benchmark):
    """A high-priority thread racing three hogs on one issue slot."""

    def run():
        machine = build_machine(issue_policy="priority", smt_width=1)
        done = machine.alloc("done", 64)
        machine.load_asm(0, """
        loop:
            addi r1, r1, 1
            movi r9, 2000
            blt r1, r9, loop
            movi r2, DONE
            movi r3, 1
            st r2, 0, r3
            halt
        """, symbols={"DONE": done.base}, supervisor=True)
        for ptid in (1, 2, 3):
            machine.load_asm(ptid, "loop:\n    work 1000\n    jmp loop",
                             supervisor=False)
            machine.boot(ptid)
        machine.core(0).set_priority(0, 8)
        machine.boot(0)
        finish = {}
        machine.memory.watch_bus.subscribe(
            done.base, lambda _i: finish.setdefault("at", machine.engine.now))
        machine.run(until=100_000)
        return finish.get("at")

    finish = benchmark(run)
    # priority 8 of (8+3): ~11/8 of solo time for ~6000 issue events
    assert finish is not None and finish < 20_000


def test_bench_cross_core_migration(benchmark):
    """Stop on one core, migrate, resume on another."""
    machine = build_machine(cores=2)
    machine.load_asm(0, "movi r1, 5\nstop 0\naddi r1, r1, 1\nhalt",
                     core_id=0, supervisor=True)
    machine.boot(0, core_id=0)
    machine.run(until=10_000)
    state = {"slot": 1}

    def migrate():
        slot = state["slot"]
        state["slot"] += 1
        if state["slot"] >= 60:
            state["slot"] = 1
        return machine.chip.migrate(0, 0, 1, slot)

    latency = benchmark(migrate)
    assert latency == machine.costs.hw_start_l3_cycles


def test_bench_multiguest_queuing(benchmark):
    """Four guests faulting into one hypervisor ptid."""

    def run():
        return MultiGuestHypervisor(guests=4, iterations=3).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_exits == 12
