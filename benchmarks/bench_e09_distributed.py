"""E09 bench: RPC server designs + per-design workload micro-benchmarks."""

from repro.arch.costs import CostModel
from repro.distributed import HW_THREADS, SW_THREADS, RpcServerModel, RpcWorkload
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads import Exponential, PoissonArrivals


def test_e09_distributed(run_experiment):
    result = run_experiment("E09", rounds=1)
    series = result.series("load_series")
    top = max(series["hw-threads"])
    assert (series["sw-threads"][top]["p99"]
            >= series["hw-threads"][top]["p99"])


def _run_server(design, requests=150):
    engine = Engine()
    server = RpcServerModel(engine, design, CostModel())
    RpcWorkload(engine, server, PoissonArrivals(8_000), Exponential(4_000),
                RngStreams(7).stream("bench"), segments=3,
                rtt_cycles=10_000, max_requests=requests)
    engine.run()
    return server


def test_bench_hw_thread_server(benchmark):
    server = benchmark(_run_server, HW_THREADS)
    assert server.completed == 150


def test_bench_sw_thread_server(benchmark):
    server = benchmark(_run_server, SW_THREADS)
    assert server.completed == 150
    assert server.cpu_busy_cycles() > _run_server(HW_THREADS).cpu_busy_cycles()
