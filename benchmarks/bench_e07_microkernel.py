"""E07 bench: microkernel IPC + ping-pong micro-benchmarks."""

from repro.arch.costs import CostModel
from repro.microkernel import DirectStartIpc, SchedulerIpc
from repro.sim.engine import Engine


def test_e07_microkernel(run_experiment):
    result = run_experiment("E07")
    rtt = result.series("rtt")
    assert rtt["direct-start"] < rtt["scheduler"]


def _ping_pong(ipc_cls, calls=100):
    engine = Engine()
    ipc = ipc_cls(engine, CostModel())
    done = []

    def client():
        for _ in range(calls):
            yield from ipc.call(200)
        done.append(engine.now)

    engine.spawn(client())
    engine.run()
    return done[0]


def test_bench_scheduler_ipc_pingpong(benchmark):
    wall = benchmark(_ping_pong, SchedulerIpc)
    assert wall > 100 * SchedulerIpc(Engine(), CostModel()).rtt_cycles(0)


def test_bench_direct_start_pingpong(benchmark):
    wall = benchmark(_ping_pong, DirectStartIpc)
    # 100 calls of (47 + 200 + queue dispatch) cycles
    assert wall < 100 * 1_000
