"""ISA dispatch bench: pre-decoded handler chains vs naive stepping.

Measures raw interpreter throughput (retired instructions per second of
wall clock) on the three loop shapes that bound the decode cache's
win -- fusable straight-line ALU blocks (best case), a cost-1 branchy
loop (dispatch overhead only, no fusion), and a load/store loop (memory
handlers) -- plus the full E15 experiment wall-clock, the ISA-heavy
evaluation the decode path exists to keep cheap. Results land in the
``isa_dispatch`` section of ``BENCH_engine.json``; the CI bench-smoke
gate compares fresh predecode-on numbers against the committed
baseline at the usual 25% tolerance.

Run:  PYTHONPATH=src python benchmarks/bench_isa_dispatch.py [--quick]
"""

import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_engine.json"

#: 12 fusable ALU ops per iteration; the run starts exactly at the
#: back-branch target (the `work 1` break keeps the prologue out of
#: the run) so every iteration executes as one superinstruction
_ALU = """
    movi r9, {iters}
    work 1
loop:
    movi r2, 7
    addi r2, r2, 5
    xor  r3, r2, r1
    shl  r4, r2, 3
    sub  r5, r4, r3
    or   r6, r5, r2
    and  r7, r6, r4
    mov  r8, r5
    xor  r2, r7, r8
    addi r5, r5, 3
    shr  r6, r5, 1
    addi r1, r1, 1
    bne r1, r9, loop
    halt
"""

#: nothing to fuse (single-ALU runs): pure dispatch-cost comparison
_BRANCHY = """
    movi r9, {iters}
loop:
    addi r1, r1, 1
    bne r1, r9, loop
    halt
"""

#: the memory handlers (ld/st resolve operands once in decoded form)
_MEMORY = """
    movi r9, {iters}
    movi r2, BUF
loop:
    st r2, 0, r1
    ld r3, r2, 0
    addi r1, r1, 1
    bne r1, r9, loop
    halt
"""

WORKLOADS = {
    "alu": (_ALU, 20_000),
    "branchy": (_BRANCHY, 60_000),
    "memory": (_MEMORY, 25_000),
}


def _run_once(source: str, iters: int, predecode: bool) -> float:
    """One cold machine; returns retired instructions per wall second."""
    from repro.machine import build_machine

    machine = build_machine(cores=1, hw_threads_per_core=2,
                            predecode=predecode)
    symbols = {"BUF": machine.alloc("buf", 64).base} \
        if "BUF" in source else None
    machine.load_asm(0, source.format(iters=iters), supervisor=True,
                     symbols=symbols)
    machine.boot(0)
    start = time.perf_counter()
    machine.run()
    elapsed = time.perf_counter() - start
    return machine.thread(0).instructions_executed / elapsed


def bench_workload(name: str, trials: int = 3,
                   scale: int = 1) -> dict:
    source, iters = WORKLOADS[name]
    iters //= scale
    decoded = naive = 0.0
    _run_once(source, iters, True)       # warm caches before measuring
    for _ in range(trials):
        decoded = max(decoded, _run_once(source, iters, True))
        naive = max(naive, _run_once(source, iters, False))
    return {
        "iters": iters,
        "predecode_instr_per_sec": round(decoded),
        "naive_instr_per_sec": round(naive),
        "speedup": round(decoded / naive, 2),
    }


def micro_bench(scale: int = 1) -> dict:
    """Fresh per-workload numbers (the bench-smoke entry point)."""
    return {name: bench_workload(name, scale=scale) for name in WORKLOADS}


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_bench_alu_dispatch(benchmark):
    source, iters = WORKLOADS["alu"]
    ips = benchmark(_run_once, source, iters // 4, True)
    assert ips > 0


def test_decoded_beats_naive_on_alu():
    cell = bench_workload("alu", trials=2, scale=4)
    assert cell["speedup"] > 1.5


def main(quick: bool) -> None:
    payload = {"workloads": micro_bench()}
    if not quick:
        from benchmarks._cluster_bench import timed_experiment
        payload["e15_full"] = timed_experiment("E15", quick=False)
    data = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else {}
    data["isa_dispatch"] = payload
    OUTPUT.write_text(json.dumps(data, indent=2) + "\n")
    print(json.dumps({"isa_dispatch": payload}, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    sys.path.insert(0, str(ROOT))
    main(quick="--quick" in sys.argv[1:])
