"""E05 bench: VM-exit designs + guest-run micro-benchmark."""

from repro.arch.costs import CostModel
from repro.hypervisor import GuestVm, HwThreadExitPath, InThreadExitPath
from repro.sim.engine import Engine


def test_e05_vmexits(run_experiment):
    result = run_experiment("E05")
    series = result.series("series")
    for interval in series["hw-thread"]:
        assert (series["hw-thread"][interval]["slowdown"]
                <= series["in-thread"][interval]["slowdown"])


def _run_guest(path_cls):
    engine = Engine()
    guest = GuestVm(engine, path_cls(engine, CostModel()),
                    total_work_cycles=500_000, exit_interval_cycles=5_000)
    engine.run()
    return guest


def test_bench_guest_in_thread_exits(benchmark):
    guest = benchmark(_run_guest, InThreadExitPath)
    assert guest.slowdown() > 1.2


def test_bench_guest_hw_thread_exits(benchmark):
    guest = benchmark(_run_guest, HwThreadExitPath)
    assert guest.slowdown() < 1.2
