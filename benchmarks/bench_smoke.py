#!/usr/bin/env python
"""CI bench-smoke: quick engine + cluster benchmarks vs committed baselines.

Re-measures the cheap throughput numbers -- raw engine dispatch
(``BENCH_engine.json``) and the two cluster micro-runs per engine-queue
mode (``BENCH_cluster.json``) -- and fails if any events/sec figure
regresses more than ``TOLERANCE_PCT`` below its committed baseline.
Wall-clock entries are informational; only events/sec is gated, since
it is the one metric that tracks the engine hot path rather than the
container's mood.

Run:  PYTHONPATH=src python benchmarks/bench_smoke.py
"""

import json
import os
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))

TOLERANCE_PCT = 25.0


def check(label: str, baseline: int, measured: int, failures: list) -> None:
    drop = 100.0 * (1 - measured / baseline)
    status = "ok" if drop <= TOLERANCE_PCT else "REGRESSED"
    print(f"{label:42s} baseline {baseline:>10,}  "
          f"measured {measured:>10,}  drop {drop:6.1f}%  {status}")
    if drop > TOLERANCE_PCT:
        failures.append(label)


def main() -> int:
    from benchmarks import _cluster_bench as cb
    from benchmarks.bench_engine_throughput import bench_engine_dispatch
    import benchmarks.bench_e14_cluster as e14
    import benchmarks.bench_e15_backends as e15
    import benchmarks.bench_e16_spans as e16_spans

    engine_base = json.loads((ROOT / "BENCH_engine.json").read_text())
    cluster_base = json.loads(cb.OUTPUT.read_text())
    failures: list = []

    # best-of-3 to keep CI noise out of the comparison
    measured = max(bench_engine_dispatch()["events_per_sec"]
                   for _ in range(3))
    check("engine.dispatch", engine_base["engine"]["events_per_sec"],
          measured, failures)

    for section, module in (("e14", e14), ("e15", e15)):
        for mode, cell in cluster_base[section]["modes"].items():
            os.environ["REPRO_ENGINE_QUEUE"] = mode
            fresh = module.micro_bench()
            check(f"{section}.cluster_run[{mode}]",
                  cell["cluster_run"]["events_per_sec"],
                  fresh["events_per_sec"], failures)
    os.environ.pop("REPRO_ENGINE_QUEUE", None)

    # tracing A/B (fresh, interleaved in this process): span hooks must
    # stay free when tracing is off -- the disabled pass runs the exact
    # same untraced code as the reference, so a *consistent* gap is a
    # real regression (a hook doing work outside its ``store is None``
    # guard). One attempt's wall-clock wobble on a shared container is
    # larger than the 3% budget, so the gate retries: noise does not
    # survive four independent A/Bs, a real regression shows in all
    for attempt in range(4):
        ab = e16_spans.tracing_ab()
        if ab["disabled_overhead_pct"] <= 3.0:
            break
    status = "ok" if ab["disabled_overhead_pct"] <= 3.0 else "REGRESSED"
    print(f"{'e16.tracing[disabled]':42s} overhead "
          f"{ab['disabled_overhead_pct']:6.2f}%  budget   3.00%  "
          f"(attempt {attempt + 1})  {status}")
    print(f"{'e16.tracing[enabled]':42s} overhead "
          f"{ab['enabled_overhead_pct']:6.2f}%  (informational)")
    if ab["disabled_overhead_pct"] > 3.0:
        failures.append("e16.tracing[disabled]")

    # watch-bus cancel churn: the O(1) per-line watcher sets, gated
    # against the committed baseline like any events/sec figure
    from benchmarks.bench_engine_throughput import (bench_watch_cancel,
                                                    coherence_ab)
    fresh_cancel = bench_watch_cancel(trials=5)
    check("watch.cancel_churn",
          engine_base["watch_cancel"]["cancels_per_sec"],
          fresh_cancel["cancels_per_sec"], failures)

    # coherence hook A/B: coherence=None (the default everywhere) must
    # cost nothing on the store hot path -- same retry discipline as
    # the tracing gate above
    for attempt in range(4):
        coh = coherence_ab()
        if coh["disabled_overhead_pct"] <= 3.0:
            break
    status = "ok" if coh["disabled_overhead_pct"] <= 3.0 else "REGRESSED"
    print(f"{'coherence[disabled]':42s} overhead "
          f"{coh['disabled_overhead_pct']:6.2f}%  budget   3.00%  "
          f"(attempt {attempt + 1})  {status}")
    print(f"{'coherence[enabled]':42s} overhead "
          f"{coh['enabled_overhead_pct']:6.2f}%  (informational)")
    if coh["disabled_overhead_pct"] > 3.0:
        failures.append("coherence[disabled]")

    # PDES shard scaling (process transport, default store): the same
    # sweep cell at 1/2/4 shard workers, each gated independently
    scaling_base = cluster_base["e14"].get("shard_scaling", {})
    fresh_scaling = e14.shard_scaling(
        tuple(int(s) for s in scaling_base))
    for shards, cell in scaling_base.items():
        check(f"e14.shard_scaling[shards={shards}]",
              cell["events_per_sec"],
              fresh_scaling[shards]["events_per_sec"], failures)

    # decoded-dispatch throughput: fresh instr/sec per loop shape with
    # the decode cache on, gated against the committed baseline (a
    # regression here means the handler chains or fusion got slower)
    from benchmarks.bench_isa_dispatch import micro_bench as isa_dispatch
    fresh_isa = isa_dispatch(scale=2)
    for name, cell in engine_base["isa_dispatch"]["workloads"].items():
        check(f"isa_dispatch.{name}[predecode]",
              cell["predecode_instr_per_sec"],
              fresh_isa[name]["predecode_instr_per_sec"], failures)

    if failures:
        print(f"\nevents/sec regression >{TOLERANCE_PCT}% in: "
              + ", ".join(failures))
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
