"""E02 bench: interrupt elimination + watch-bus micro-benchmarks."""

from repro.mem.memory import Memory


def test_e02_interrupts(run_experiment):
    result = run_experiment("E02")
    assert result.data["speedup"] > 10


def test_bench_watch_notify_hit(benchmark):
    """One store hitting an armed watch (the mwait wakeup trigger)."""
    memory = Memory()
    word = memory.alloc("evt", 8)
    fired = []

    def rearm(info):
        fired.append(info)

    memory.watch_bus.subscribe(word.base, rearm)

    def store():
        memory.store(word.base, 1, source="dev")

    benchmark(store)
    assert fired


def test_bench_watch_notify_miss(benchmark):
    """Store with no watcher: the common case must stay cheap."""
    memory = Memory()
    word = memory.alloc("cold", 8)

    def store():
        memory.store(word.base, 1)

    benchmark(store)
    assert memory.watch_bus.total_triggers == 0
