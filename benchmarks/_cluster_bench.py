"""Shared plumbing for the cluster benchmark scripts.

``bench_e14_cluster.py`` and ``bench_e15_backends.py`` both double as
standalone scripts that record wall-clock and events/sec numbers --
per engine-queue mode (wheel default, heap reference) -- into
``BENCH_cluster.json`` at the repo root. The committed file is the
baseline the CI bench-smoke job compares fresh measurements against.
"""

import json
import os
import pathlib
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_cluster.json"

QUEUE_MODES = ("wheel", "heap")


def timed_cluster_run(run_fn, repeats: int = 3) -> dict:
    """Best-of-N wall-clock of one ``run_cluster`` workload, with the
    dispatched-event count turned into events/sec. Sharded runs count
    every engine: coordinator plus the shard workers' events
    (``service.pdes['worker_events']``)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_fn()
        elapsed = time.perf_counter() - start
        events = (result.engine.events_processed
                  + getattr(result.service, "pdes", {}).get(
                      "worker_events", 0))
        if best is None or elapsed < best[0]:
            best = (elapsed, events)
    seconds, events = best
    return {
        "seconds": round(seconds, 4),
        "events": events,
        "events_per_sec": round(events / seconds),
    }


def timed_experiment(experiment_id: str, quick: bool) -> dict:
    from repro.experiments import get_experiment

    experiment = get_experiment(experiment_id)
    start = time.perf_counter()
    experiment.run(quick=quick)
    return {"quick": quick,
            "seconds": round(time.perf_counter() - start, 2)}


def per_queue_mode(measure) -> dict:
    """Run ``measure()`` once per engine backing store and key the
    results by mode. Restores the environment afterwards."""
    prior = os.environ.get("REPRO_ENGINE_QUEUE")
    out = {}
    try:
        for mode in QUEUE_MODES:
            os.environ["REPRO_ENGINE_QUEUE"] = mode
            out[mode] = measure()
    finally:
        if prior is None:
            os.environ.pop("REPRO_ENGINE_QUEUE", None)
        else:
            os.environ["REPRO_ENGINE_QUEUE"] = prior
    return out


def update_section(section: str, payload: dict) -> None:
    """Read-merge-write one experiment's section of BENCH_cluster.json
    so the two scripts can be run in either order."""
    data = {}
    if OUTPUT.exists():
        data = json.loads(OUTPUT.read_text())
    data[section] = payload
    OUTPUT.write_text(json.dumps(data, indent=2) + "\n")
    print(json.dumps({section: payload}, indent=2))
    print(f"\nwrote {OUTPUT}")
