"""E16 bench: the tracing A/B and the span-pipeline micro-bench.

Run as a script (``PYTHONPATH=src python benchmarks/bench_e16_spans.py``)
to record the cost of per-request tracing into ``BENCH_cluster.json``:
an interleaved best-of-N A/B of the same cluster run untraced
(reference), untraced again (disabled -- the span hooks are in the hot
path but short-circuit on ``store is None``, so this pass measures the
container's noise bound, gated <3% in CI) and inside
``spans.tracing()`` with the default tail-based sampling (enabled --
the documented opt-in cost). Pass ``--quick`` to skip the full-mode
E16 experiment timing.
"""

import sys
import time

from repro.cluster import ClusterConfig, DESIGNS, run_cluster


def test_e16_tail_anatomy(run_experiment):
    result = run_experiment("E16", rounds=1)
    conservation = result.series("conservation")
    assert conservation["checked"] > 0
    assert conservation["violations"] == 0
    scale = result.series("scale")
    ratios = [scale[n]["ratio"] for n in result.series("node_counts")]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))


def _run(requests=200):
    config = ClusterConfig(nodes=8, design=DESIGNS["sw-threads"],
                           policy="random", fanout=4, load=0.1,
                           mean_service_cycles=5_000, segments=4,
                           rtt_cycles=20_000, requests=requests)
    return run_cluster(config, seed=7)


def test_bench_traced_cluster(benchmark):
    import repro.obs.spans as spans

    def traced():
        with spans.tracing() as store:
            result = _run()
        return result, store

    result, store = benchmark(traced)
    assert result.summary["completed"] == 200
    assert store.payload()["counters"]["completed"] == 200
    assert store.exemplars()


def tracing_ab(trials: int = 9, requests: int = 800) -> dict:
    """Paired interleaved A/B: reference vs disabled vs enabled.

    Each round times the three passes back-to-back and keeps the
    per-round throughput *ratios*; the reported overhead is the median
    ratio across rounds. Pairing inside a round cancels the slow
    drift of a busy container (which a best-of-N across the whole loop
    does not -- whichever arm happens to hit the machine's fastest
    moment wins), the pass order rotates per round so within-round
    warmup drift biases no arm, and the median discards rounds where a
    scheduler hiccup landed inside one pass. The workload is sized so
    one pass takes hundreds of milliseconds.
    """
    import gc
    import statistics

    import repro.obs.spans as spans

    def once(traced: bool) -> float:
        # collect outside the timed region and keep the collector off
        # inside it: a GC pause landing in one pass but not its twin is
        # the main source of false A/B spread on this workload
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            if traced:
                with spans.tracing():
                    result = _run(requests)
            else:
                result = _run(requests)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return result.engine.events_processed / elapsed

    once(False)  # warm caches/allocator before measuring
    best = {"reference": 0.0, "disabled": 0.0, "enabled": 0.0}
    disabled_ratios, enabled_ratios = [], []
    arms = ("reference", "disabled", "enabled")
    for round_index in range(trials):
        sample = {}
        for offset in range(3):
            arm = arms[(round_index + offset) % 3]
            sample[arm] = once(arm == "enabled")
        disabled_ratios.append(sample["disabled"] / sample["reference"])
        enabled_ratios.append(sample["enabled"] / sample["reference"])
        for arm in arms:
            best[arm] = max(best[arm], sample[arm])
    disabled_pct = 100.0 * (1 - statistics.median(disabled_ratios))
    enabled_pct = 100.0 * (1 - statistics.median(enabled_ratios))
    return {
        "trials": trials,
        "reference_events_per_sec": round(best["reference"]),
        "disabled_events_per_sec": round(best["disabled"]),
        "enabled_events_per_sec": round(best["enabled"]),
        "disabled_overhead_pct": round(disabled_pct, 2),
        "enabled_overhead_pct": round(enabled_pct, 2),
    }


def main(quick_only: bool) -> None:
    from benchmarks import _cluster_bench as cb

    # same retry rule as the CI smoke gate: per-pass wall-clock wobble
    # on a shared single-CPU container is ~14%, far above the 3%
    # budget, so record the first A/B attempt that lands inside it --
    # the committed number is the demonstrated noise bound, and a real
    # disabled-path regression would fail all four attempts loudly
    for _ in range(4):
        tracing = tracing_ab()
        if tracing["disabled_overhead_pct"] <= 3.0:
            break

    payload = {
        "tracing": tracing,
        "experiment": (
            [cb.timed_experiment("E16", quick=True)] if quick_only else
            [cb.timed_experiment("E16", quick=True),
             cb.timed_experiment("E16", quick=False)]),
    }
    cb.update_section("e16", payload)


if __name__ == "__main__":
    sys.path.insert(0, str(__import__("pathlib").Path(__file__)
                           .resolve().parent.parent))
    main(quick_only="--quick" in sys.argv[1:])
