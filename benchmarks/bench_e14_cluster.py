"""E14 bench: the cluster experiment + cluster-run micro-benchmarks.

Run as a script (``PYTHONPATH=src python benchmarks/bench_e14_cluster.py``)
to record the E14 wall-clock and a cluster-run events/sec number per
engine-queue mode into ``BENCH_cluster.json``; pass ``--quick`` to skip
the full-mode experiment timing.
"""

import sys

from repro.cluster import ClusterConfig, DESIGNS, run_cluster


def test_e14_cluster(run_experiment):
    result = run_experiment("E14", rounds=1)
    tail = result.series("tail")
    counts = result.series("node_counts")
    ratios = [tail[n]["ratio"] for n in counts]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert all(tail[n]["conserved"] for n in counts)


def _run(design, nodes=8, fanout=4):
    config = ClusterConfig(nodes=nodes, design=DESIGNS[design],
                           policy="random", fanout=fanout, load=0.1,
                           mean_service_cycles=5_000, segments=4,
                           rtt_cycles=20_000, requests=200)
    return run_cluster(config, seed=7)


def test_bench_hw_cluster(benchmark):
    result = benchmark(_run, "hw-threads")
    assert result.summary["completed"] == 200
    assert result.summary["conserved"]


def test_bench_sw_cluster(benchmark):
    result = benchmark(_run, "sw-threads")
    assert result.summary["completed"] == 200
    # the fan-in crowding tax: sw pays more for the same workload
    assert (result.summary["p99"]
            > _run("hw-threads").summary["p99"])


def _stale_run(probe_delay):
    config = ClusterConfig(nodes=8, design=DESIGNS["hw-threads"],
                           policy="jsq", fanout=2, load=0.8,
                           mean_service_cycles=5_000, segments=4,
                           rtt_cycles=20_000, requests=300,
                           probe_delay_cycles=probe_delay)
    return run_cluster(config, seed=7)


def test_staleness_vs_p99():
    """The oracle gap: stale jsq probes cost tail latency.

    One row per probe delay -- the staleness-vs-p99 curve the balancer
    satellite asks for. At high load the exact oracle must beat badly
    stale snapshots; mild staleness may tie, so the assertion compares
    the endpoints only.
    """
    rows = {delay: _stale_run(delay).summary
            for delay in (0, 20_000, 200_000)}
    for delay, summary in rows.items():
        assert summary["conserved"], f"probe_delay={delay}"
        assert summary["completed"] == 300
    assert rows[200_000]["p99"] > rows[0]["p99"]


def micro_bench() -> dict:
    """The representative cluster run the CI smoke job regresses on:
    the sw-threads design (the PS-heaviest path) at moderate scale."""
    from benchmarks._cluster_bench import timed_cluster_run

    return timed_cluster_run(lambda: _run("sw-threads", nodes=8, fanout=4))


SHARD_COUNTS = (1, 2, 4)


def _shard_run(shards, nodes=16, requests=300):
    config = ClusterConfig(nodes=nodes, design=DESIGNS["sw-threads"],
                           policy="round-robin", fanout=8, load=0.1,
                           mean_service_cycles=5_000, segments=4,
                           rtt_cycles=20_000, requests=requests,
                           shards=shards)
    return run_cluster(config, seed=7, transport="process")


def shard_scaling(shard_counts=SHARD_COUNTS) -> dict:
    """Events/sec per shard count on one sweep cell (real worker
    processes; shards=1 is the classic single-engine run). Recorded
    honestly: on a single-CPU container the worker processes add
    synchronization overhead without adding cores, so sharded
    throughput *trails* shards=1 there -- the figures are the baseline
    a multi-core host compares against."""
    from benchmarks._cluster_bench import timed_cluster_run

    return {str(shards): timed_cluster_run(
                lambda shards=shards: _shard_run(shards))
            for shards in shard_counts}


def sweep_256(shard_counts=(1, 4)) -> dict:
    """The acceptance sweep: one 256-node cell, single-engine vs 4
    shard workers, wall-clock seconds (best of 2)."""
    from benchmarks._cluster_bench import timed_cluster_run

    return {str(shards): timed_cluster_run(
                lambda shards=shards: _shard_run(shards, nodes=256,
                                                 requests=300),
                repeats=2)
            for shards in shard_counts}


def main(quick_only: bool) -> None:
    from benchmarks import _cluster_bench as cb

    payload = {
        # the pre-PR timer-wheel/lazy-deadline baseline: E14 full-mode
        # wall-clock on this container before the engine rework
        "pre_rework_full_seconds": 62.07,
        "modes": cb.per_queue_mode(lambda: {
            "cluster_run": micro_bench(),
            "experiment": (
                [cb.timed_experiment("E14", quick=True)] if quick_only else
                [cb.timed_experiment("E14", quick=True),
                 cb.timed_experiment("E14", quick=False)]),
        }),
        # conservative-PDES sharding (default wheel store, process
        # transport); byte-identical output, so this is purely a
        # wall-clock/events-per-sec trajectory
        "shard_scaling": shard_scaling(),
    }
    if not quick_only:
        payload["sweep_256_nodes"] = sweep_256()
    cb.update_section("e14", payload)


if __name__ == "__main__":
    sys.path.insert(0, str(__import__("pathlib").Path(__file__)
                           .resolve().parent.parent))
    main(quick_only="--quick" in sys.argv[1:])
