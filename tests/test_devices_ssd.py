"""Tests for the SSD model."""

import pytest

from repro.devices import Ssd
from repro.devices.ssd import OP_READ, OP_WRITE
from repro.errors import ConfigError
from repro.machine import build_machine
from repro.mem.memory import WORD_BYTES


def make_ssd(**kwargs):
    machine = build_machine()
    ssd = Ssd(machine.engine, machine.memory, machine.dma, **kwargs)
    return machine, ssd


class TestSubmission:
    def test_read_completes_and_lands_data(self):
        machine, ssd = make_ssd()
        dest = machine.alloc("dest", 64)
        cid = ssd.submit(OP_READ, lba=1000, dest_addr=dest.base,
                         length_words=4)
        machine.run(until=1_000_000)
        assert ssd.commands_completed == 1
        assert machine.memory.load_words(dest.base, 4) == [
            1000, 1001, 1002, 1003]
        entry = ssd.cq_entry_addr(cid)
        assert machine.memory.load(entry) == cid + 1
        assert machine.memory.load(ssd.cq_tail_addr) == 1

    def test_write_completes_without_dma(self):
        machine, ssd = make_ssd()
        ssd.submit(OP_WRITE, lba=5, dest_addr=0x2000, length_words=2)
        machine.run(until=1_000_000)
        assert ssd.commands_completed == 1

    def test_read_latency_modeled(self):
        machine, ssd = make_ssd(read_latency_cycles=10_000)
        dest = machine.alloc("dest", 64)
        ssd.submit(OP_READ, 0, dest.base, 1)
        machine.run(until=1_000_000)
        latency = ssd.complete_time[0] - ssd.submit_time[0]
        assert latency >= 10_000

    def test_write_slower_than_read(self):
        machine, ssd = make_ssd(read_latency_cycles=1_000,
                                write_latency_cycles=5_000)
        dest = machine.alloc("dest", 64)
        ssd.submit(OP_READ, 0, dest.base, 1)
        ssd.submit(OP_WRITE, 0, dest.base, 1)
        machine.run(until=1_000_000)
        read_latency = ssd.complete_time[0] - ssd.submit_time[0]
        write_latency = ssd.complete_time[1] - ssd.submit_time[1]
        assert write_latency > read_latency

    def test_cq_tail_write_wakes_monitor(self):
        # the completion thread of the proposed world mwaits on cq tail
        machine, ssd = make_ssd()
        dest = machine.alloc("dest", 64)
        hits = []
        machine.memory.watch_bus.subscribe(ssd.cq_tail_addr,
                                           lambda info: hits.append(info))
        ssd.submit(OP_READ, 0, dest.base, 1)
        machine.run(until=1_000_000)
        assert len(hits) == 1
        assert hits[0]["source"].startswith("dma:")

    def test_multiple_commands_all_complete(self):
        machine, ssd = make_ssd()
        dest = machine.alloc("dest", 1024)
        for i in range(8):
            ssd.submit(OP_READ, i * 100, dest.base + i * 8 * WORD_BYTES, 2)
        machine.run(until=10_000_000)
        assert ssd.commands_completed == 8
        assert machine.memory.load(ssd.cq_tail_addr) == 8

    def test_legacy_irq_path(self):
        machine = build_machine()
        irqs = []
        ssd = Ssd(machine.engine, machine.memory, machine.dma,
                  legacy_irq=irqs.append)
        dest = machine.alloc("dest", 64)
        ssd.submit(OP_READ, 0, dest.base, 1)
        machine.run(until=1_000_000)
        assert irqs == [0]


class TestValidation:
    def test_bad_opcode_rejected(self):
        machine, ssd = make_ssd()
        with pytest.raises(ConfigError):
            ssd.submit(99, 0, 0x1000, 1)

    def test_zero_length_rejected(self):
        machine, ssd = make_ssd()
        with pytest.raises(ConfigError):
            ssd.submit(OP_READ, 0, 0x1000, 0)

    def test_zero_slots_rejected(self):
        with pytest.raises(ConfigError):
            make_ssd(queue_slots=0)
