"""Tests for register footprint arithmetic (paper Section 4)."""

import pytest

from repro.arch import (
    FXSAVE_BYTES,
    X86_64_BASE_STATE_BYTES,
    X86_64_FULL_STATE_BYTES,
    RegisterClass,
    register_file_capacity,
    state_bytes,
)
from repro.arch.registers import (
    build_register_specs,
    chip_register_file_bytes,
    general_register_names,
)
from repro.errors import ConfigError


def test_base_state_is_paper_272_bytes():
    assert X86_64_BASE_STATE_BYTES == 272


def test_full_state_is_paper_784_bytes():
    assert X86_64_FULL_STATE_BYTES == 784


def test_fxsave_area_is_512():
    assert FXSAVE_BYTES == 512
    assert X86_64_BASE_STATE_BYTES + FXSAVE_BYTES == X86_64_FULL_STATE_BYTES


def test_state_bytes_switches_on_vector_use():
    assert state_bytes(with_vector=False) == 272
    assert state_bytes(with_vector=True) == 784


def test_v100_64kb_file_brackets_paper_83_to_224():
    # Paper: 64KB V100 sub-core register file stores 83 to 224 contexts.
    lo = register_file_capacity(64 * 1024, with_vector=True)
    hi = register_file_capacity(64 * 1024, with_vector=False)
    assert lo == 83  # exact match with full 784B state
    assert hi >= 224  # pure-division upper bound brackets the paper's 224


def test_100_core_chip_is_6_4_mb():
    # Paper: "For a CPU with 100 cores, the cost is 6.4MB".
    assert chip_register_file_bytes(100) == 6_553_600  # 6.4 * 1024 * 1024 / 1.024...
    assert chip_register_file_bytes(100) / 1024 / 1024 == pytest.approx(6.25, abs=0.01)
    # in the paper's decimal MB convention: 100 * 65536 B = 6.55 decimal MB,
    # matching their "6.4MB" to one significant figure of unit convention
    assert chip_register_file_bytes(100) / 1e6 == pytest.approx(6.55, abs=0.01)


def test_register_file_capacity_rejects_nonpositive():
    with pytest.raises(ConfigError):
        register_file_capacity(0)
    with pytest.raises(ConfigError):
        chip_register_file_bytes(0)


def test_general_register_names():
    assert general_register_names(4) == ["r0", "r1", "r2", "r3"]
    with pytest.raises(ConfigError):
        general_register_names(0)


class TestRegisterSpecs:
    def test_contains_novel_control_registers(self):
        specs = build_register_specs()
        assert "edp" in specs  # exception descriptor pointer
        assert "tdtr" in specs  # thread descriptor table register

    def test_tdtr_is_privileged(self):
        specs = build_register_specs()
        assert specs["tdtr"].reg_class is RegisterClass.PRIVILEGED
        assert specs["priv"].reg_class is RegisterClass.PRIVILEGED

    def test_edp_is_control_not_privileged(self):
        # edp is settable with MODIFY_MOST permission (a handler thread
        # configures where its wards write descriptors)
        specs = build_register_specs()
        assert specs["edp"].reg_class is RegisterClass.CONTROL

    def test_gprs_are_general(self):
        specs = build_register_specs()
        for i in range(16):
            assert specs[f"r{i}"].reg_class is RegisterClass.GENERAL

    def test_vector_registers_are_wide(self):
        specs = build_register_specs()
        assert specs["v0"].bytes_ == 32
        assert specs["v0"].reg_class is RegisterClass.VECTOR
