"""Tests for request traces and load arithmetic."""

import random

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    Constant,
    DeterministicArrivals,
    Exponential,
    PoissonArrivals,
    Request,
    RequestGenerator,
    gap_for_load,
    offered_load,
)


def make_gen(gap=100, svc=50, seed=1):
    return RequestGenerator(DeterministicArrivals(gap), Constant(svc),
                            random.Random(seed))


class TestRequest:
    def test_latency_and_waiting(self):
        req = Request(0, arrival_time=100, service_cycles=50,
                      start_time=120, finish_time=170)
        assert req.latency == 70
        assert req.waiting_time == 20
        assert req.slowdown == pytest.approx(70 / 50)

    def test_latency_requires_finish(self):
        req = Request(0, arrival_time=0, service_cycles=1)
        with pytest.raises(ConfigError):
            _ = req.latency

    def test_waiting_requires_start(self):
        req = Request(0, arrival_time=0, service_cycles=1, finish_time=5)
        with pytest.raises(ConfigError):
            _ = req.waiting_time


class TestRequestGenerator:
    def test_trace_is_sorted_and_sized(self):
        trace = make_gen().trace(20)
        assert len(trace) == 20
        times = [r.arrival_time for r in trace]
        assert times == sorted(times)
        assert [r.req_id for r in trace] == list(range(20))

    def test_deterministic_arrivals_spacing(self):
        trace = make_gen(gap=100).trace(5)
        assert [r.arrival_time for r in trace] == [100, 200, 300, 400, 500]

    def test_same_seed_same_trace(self):
        gen_a = RequestGenerator(PoissonArrivals(100), Exponential(50),
                                 random.Random(9))
        gen_b = RequestGenerator(PoissonArrivals(100), Exponential(50),
                                 random.Random(9))
        a = gen_a.trace(30)
        b = gen_b.trace(30)
        assert [(r.arrival_time, r.service_cycles) for r in a] == \
               [(r.arrival_time, r.service_cycles) for r in b]

    def test_stream_is_unbounded_and_matches_trace_semantics(self):
        gen = make_gen()
        stream = gen.stream()
        first = [next(stream) for _ in range(3)]
        assert [r.req_id for r in first] == [0, 1, 2]

    def test_trace_rejects_zero_count(self):
        with pytest.raises(ConfigError):
            make_gen().trace(0)

    def test_offered_load(self):
        gen = make_gen(gap=100, svc=50)
        assert gen.offered_load() == pytest.approx(0.5)


class TestLoadArithmetic:
    def test_offered_load_multi_server(self):
        assert offered_load(DeterministicArrivals(100), Constant(50),
                            servers=2) == pytest.approx(0.25)

    def test_gap_for_load_roundtrip(self):
        svc = Constant(800)
        for load in (0.1, 0.5, 0.9):
            gap = gap_for_load(svc, load)
            assert offered_load(DeterministicArrivals(gap), svc) \
                == pytest.approx(load)

    def test_gap_for_load_rejects_zero(self):
        with pytest.raises(ConfigError):
            gap_for_load(Constant(1), 0)

    def test_offered_load_rejects_zero_servers(self):
        with pytest.raises(ConfigError):
            offered_load(DeterministicArrivals(1), Constant(1), servers=0)
