"""Tests for flat memory, regions, and MMIO routing."""

import pytest

from repro.errors import GuestFault, MemoryError_
from repro.mem import Memory, MmioRegion


def test_load_of_untouched_memory_is_zero():
    assert Memory().load(0x1000) == 0


def test_store_load_roundtrip():
    mem = Memory()
    mem.store(0x2000, 12345)
    assert mem.load(0x2000) == 12345


def test_values_truncate_to_64_bits():
    mem = Memory()
    mem.store(0x2000, 1 << 70)
    assert mem.load(0x2000) == 0


def test_misaligned_access_faults():
    mem = Memory()
    with pytest.raises(GuestFault) as err:
        mem.load(0x1001)
    assert err.value.kind == "alignment-fault"
    with pytest.raises(GuestFault):
        mem.store(0x1004, 1)


def test_out_of_range_faults():
    mem = Memory(size_bytes=0x10000)
    with pytest.raises(GuestFault) as err:
        mem.load(0x20000)
    assert err.value.kind == "page-fault"
    with pytest.raises(GuestFault):
        mem.load(-8)


def test_strict_mode_requires_regions():
    mem = Memory(strict=True)
    region = mem.alloc("heap", 4096)
    mem.store(region.base, 1)  # inside a region: ok
    with pytest.raises(GuestFault) as err:
        mem.store(region.end + 0x10000, 1)
    assert err.value.kind == "page-fault"
    assert err.value.faulting_address == region.end + 0x10000


def test_alloc_returns_aligned_disjoint_regions():
    mem = Memory()
    a = mem.alloc("a", 100)
    b = mem.alloc("b", 100)
    assert a.base % 64 == 0
    assert b.base % 64 == 0
    assert a.end <= b.base
    assert a.base >= 0x1000  # page 0 kept unmapped


def test_alloc_rejects_bad_size_and_exhaustion():
    mem = Memory(size_bytes=0x4000)
    with pytest.raises(MemoryError_):
        mem.alloc("bad", 0)
    with pytest.raises(MemoryError_):
        mem.alloc("huge", 0x10000)


def test_region_lookup_and_word_addressing():
    mem = Memory()
    region = mem.alloc("ring", 256)
    assert mem.region("ring") is region
    assert region.word(0) == region.base
    assert region.word(3) == region.base + 24
    with pytest.raises(MemoryError_):
        region.word(32)  # past the end
    with pytest.raises(MemoryError_):
        mem.region("nope")


def test_fetch_add_is_read_modify_write():
    mem = Memory()
    assert mem.fetch_add(0x3000, 5) == 5
    assert mem.fetch_add(0x3000, 2) == 7
    assert mem.load(0x3000) == 7


def test_bulk_words():
    mem = Memory()
    mem.store_words(0x4000, [1, 2, 3])
    assert mem.load_words(0x4000, 3) == [1, 2, 3]


def test_access_counters():
    mem = Memory()
    mem.store(0x1000, 1)
    mem.load(0x1000)
    mem.load(0x1000)
    assert mem.store_count == 1
    assert mem.load_count == 2


class TestMmio:
    def test_store_in_window_invokes_doorbell(self):
        mem = Memory()
        region = mem.alloc("nic-regs", 128)
        rings = []
        mmio = MmioRegion(region, on_store=lambda off, val, src: rings.append((off, val, src)))
        mem.attach_mmio(mmio)
        mem.store(region.word(2), 99)
        assert rings == [(2, 99, "cpu")]

    def test_load_reads_device_register(self):
        mem = Memory()
        region = mem.alloc("regs", 64)
        mmio = MmioRegion(region)
        mem.attach_mmio(mmio)
        mmio.set_reg(1, 0xBEEF)
        assert mem.load(region.word(1)) == 0xBEEF

    def test_mmio_store_still_notifies_watchers(self):
        # paper: monitors work on "memory-mapped I/O registers"
        mem = Memory()
        region = mem.alloc("regs", 64)
        mem.attach_mmio(MmioRegion(region))
        watch = mem.watch_bus.watch(region.word(0))
        mem.store(region.word(0), 1)
        assert watch.trigger_count == 1

    def test_stores_outside_window_unaffected(self):
        mem = Memory()
        region = mem.alloc("regs", 64)
        mmio = MmioRegion(region)
        mem.attach_mmio(mmio)
        plain = mem.alloc("plain", 64)
        mem.store(plain.word(0), 5)
        assert mem.load(plain.word(0)) == 5
        assert mmio.store_count == 0

    def test_reg_addr_helper(self):
        mem = Memory()
        region = mem.alloc("regs", 64)
        mmio = MmioRegion(region)
        assert mmio.reg_addr(3) == region.base + 24
