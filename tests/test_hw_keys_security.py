"""Tests for the secret-key security model (Section 3.2 alternative)."""

import pytest

from repro.errors import PermissionFault
from repro.hw.exceptions import ExceptionDescriptor, descriptor_present
from repro.hw.keys import KeyRegistry
from repro.hw.ptid import PtidState
from repro.hw.tdt import Permission
from repro.machine import build_machine


class TestKeyRegistry:
    def test_matching_key_authorizes(self):
        keys = KeyRegistry()
        keys.set_key(3, 0x5EC2E7)
        keys.authorize(3, 0x5EC2E7)  # no raise
        assert keys.checks == 1
        assert keys.denials == 0

    def test_wrong_key_denied(self):
        keys = KeyRegistry()
        keys.set_key(3, 111)
        with pytest.raises(PermissionFault):
            keys.authorize(3, 222)
        assert keys.denials == 1

    def test_no_key_fails_closed(self):
        keys = KeyRegistry()
        with pytest.raises(PermissionFault):
            keys.authorize(5, 123)

    def test_supervisor_bypasses(self):
        keys = KeyRegistry()
        keys.authorize(5, None, supervisor=True)  # no raise

    def test_key_rotation(self):
        keys = KeyRegistry()
        keys.set_key(1, 10)
        keys.set_key(1, 20)
        with pytest.raises(PermissionFault):
            keys.authorize(1, 10)
        keys.authorize(1, 20)

    def test_key_zero_clears(self):
        keys = KeyRegistry()
        keys.set_key(1, 10)
        keys.set_key(1, 0)
        assert not keys.has_key(1)


def _key_machine():
    """ptid 0 spins (manageable target), ptid 1 is the manager."""
    machine = build_machine(security_model="keys")
    machine.load_asm(0, """
        movi r1, KEY
        setkey r1
    spin:
        jmp spin
    """, symbols={"KEY": 0xABC}, supervisor=False)
    machine.boot(0)
    return machine


class TestKeyModelIsaLevel:
    def test_right_key_stops_target(self):
        machine = _key_machine()
        edp = machine.alloc("edp", 64)
        # manager presents the key in r15 (the KEY_REGISTER convention)
        machine.load_asm(1, """
            work 100
            movi r15, 0xABC
            stop 0
            halt
        """, supervisor=False, edp=edp.base,
            tdtr=machine.build_tdt("t", {0: (0, Permission.NONE)}).base)
        machine.boot(1)
        machine.run(until=50_000)
        machine.check()
        assert machine.thread(0).state is PtidState.DISABLED
        assert machine.thread(1).finished
        assert not descriptor_present(machine.memory, edp.base)

    def test_wrong_key_faults_manager(self):
        machine = _key_machine()
        edp = machine.alloc("edp", 64)
        machine.load_asm(1, """
            work 100
            movi r15, 0xDEF
            stop 0
            halt
        """, supervisor=False, edp=edp.base,
            tdtr=machine.build_tdt("t", {0: (0, Permission.NONE)}).base)
        machine.boot(1)
        machine.run(until=50_000)
        machine.check()
        assert descriptor_present(machine.memory, edp.base)
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        assert descriptor.kind.name == "PERMISSION_FAULT"
        # the target keeps running: the manager was contained instead
        assert machine.thread(0).state is PtidState.RUNNABLE

    def test_supervisor_ignores_keys(self):
        machine = _key_machine()
        machine.load_asm(1, """
            work 100
            stop 0
            halt
        """, supervisor=True)
        machine.boot(1)
        machine.run(until=50_000)
        machine.check()
        assert machine.thread(0).state is PtidState.DISABLED


class TestModelEquivalence:
    """DESIGN.md Section 6: for configurations expressible in both
    models -- full authority (TDT ALL <-> holding the key) and no
    authority (invalid entry <-> no/wrong key) -- the reachable
    operation sets must match."""

    OPERATIONS = ("start", "stop")

    @staticmethod
    def _attempt_tdt(authorized: bool, operation: str) -> bool:
        machine = build_machine(security_model="tdt")
        perms = Permission.ALL if authorized else Permission.NONE
        tdt = machine.build_tdt("t", {0: (0, perms)})
        edp = machine.alloc("edp", 64)
        machine.load_asm(0, "spin:\n    jmp spin", supervisor=False)
        machine.boot(0)
        machine.load_asm(1, f"work 50\n{operation} 0\nhalt",
                         supervisor=False, tdtr=tdt.base, edp=edp.base)
        machine.boot(1)
        machine.run(until=20_000)
        machine.check()
        return not descriptor_present(machine.memory, edp.base)

    @staticmethod
    def _attempt_keys(authorized: bool, operation: str) -> bool:
        machine = build_machine(security_model="keys")
        machine.load_asm(0, """
            movi r1, 0x77
            setkey r1
        spin:
            jmp spin
        """, supervisor=False)
        machine.boot(0)
        tdt = machine.build_tdt("t", {0: (0, Permission.NONE)})
        edp = machine.alloc("edp", 64)
        presented = "0x77" if authorized else "0x11"
        machine.load_asm(1, f"""
            work 50
            movi r15, {presented}
            {operation} 0
            halt
        """, supervisor=False, tdtr=tdt.base, edp=edp.base)
        machine.boot(1)
        machine.run(until=20_000)
        machine.check()
        return not descriptor_present(machine.memory, edp.base)

    @pytest.mark.parametrize("authorized", [True, False])
    @pytest.mark.parametrize("operation", OPERATIONS)
    def test_reachable_operations_match(self, authorized, operation):
        assert (self._attempt_tdt(authorized, operation)
                == self._attempt_keys(authorized, operation))
