"""Tests for the three syscall paths."""

import pytest

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.kernel import (
    FlexScPath,
    HwThreadSyscallPath,
    SyncSyscallPath,
    SyscallRunner,
)
from repro.sim.engine import Engine


def run_path(path_cls, iterations=50, user_work=500, kernel_work=300,
             **kwargs):
    engine = Engine()
    path = path_cls(engine, CostModel(), **kwargs)
    runner = SyscallRunner(engine, path, iterations,
                           user_work_cycles=user_work,
                           kernel_work_cycles=kernel_work)
    engine.run()
    return path, runner


class TestSyncSyscallPath:
    def test_per_call_latency_is_mode_switch_plus_work(self):
        costs = CostModel()
        path, runner = run_path(SyncSyscallPath)
        assert runner.recorder.pct(50) == costs.mode_switch_cycles + 300

    def test_fp_kernel_pays_fxsave(self):
        costs = CostModel()
        _path, plain = run_path(SyncSyscallPath)
        _path, fp = run_path(SyncSyscallPath, kernel_uses_fp=True)
        assert (fp.recorder.pct(50) - plain.recorder.pct(50)
                == costs.sw_switch_fp_extra_cycles)

    def test_overhead_hundreds_of_cycles(self):
        path = SyncSyscallPath(Engine(), CostModel())
        assert 100 <= path.overhead_cycles() <= 1000

    def test_call_count(self):
        path, _runner = run_path(SyncSyscallPath, iterations=17)
        assert path.calls == 17


class TestFlexScPath:
    def test_latency_includes_batch_delay(self):
        costs = CostModel()
        _path, runner = run_path(FlexScPath)
        # every call waits for the next 5000-cycle batch boundary
        assert runner.recorder.pct(50) > costs.mode_switch_cycles

    def test_batches_amortize(self):
        # many simultaneous callers share one batch
        engine = Engine()
        path = FlexScPath(engine, CostModel())
        results = []

        def caller():
            yield from path.call(100)
            results.append(engine.now)

        for _ in range(10):
            engine.spawn(caller())
        engine.run()
        assert len(results) == 10
        assert path.batches <= 2  # one (maybe two) batch visits

    def test_no_mode_switch_charged(self):
        _path, runner = run_path(FlexScPath, iterations=20)
        # latency never includes the 300-cycle mode switch; it is post +
        # batch wait + work, and the runner finished
        assert runner.finished_at is not None

    def test_engine_drains_after_runner_finishes(self):
        engine = Engine()
        path = FlexScPath(engine, CostModel())
        SyscallRunner(engine, path, 5)
        final = engine.run()
        assert engine.pending_events == 0
        assert final < 10_000_000

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            FlexScPath(Engine(), batch_window_cycles=0)


class TestHwThreadSyscallPath:
    def test_overhead_tens_of_cycles(self):
        path = HwThreadSyscallPath(Engine(), CostModel())
        assert path.overhead_cycles() < 50

    def test_beats_sync_on_latency(self):
        _p, sync_runner = run_path(SyncSyscallPath)
        _p, hw_runner = run_path(HwThreadSyscallPath)
        assert hw_runner.recorder.pct(50) < sync_runner.recorder.pct(50)

    def test_fp_kernel_is_free(self):
        _p, plain = run_path(HwThreadSyscallPath)
        _p, fp = run_path(HwThreadSyscallPath, kernel_uses_fp=True)
        assert fp.recorder.pct(50) == plain.recorder.pct(50)

    def test_tier_affects_overhead(self):
        rf = HwThreadSyscallPath(Engine(), CostModel(), tier="rf")
        l3 = HwThreadSyscallPath(Engine(), CostModel(), tier="l3")
        assert l3.overhead_cycles() > rf.overhead_cycles()

    def test_rejects_bad_tier(self):
        with pytest.raises(ConfigError):
            HwThreadSyscallPath(Engine(), tier="dram")


class TestSyscallRunner:
    def test_total_vs_useful_accounting(self):
        _path, runner = run_path(SyncSyscallPath, iterations=10)
        assert runner.total_cycles() > runner.useful_cycles()
        assert 0 < runner.overhead_fraction() < 1

    def test_unfinished_runner_rejects_totals(self):
        engine = Engine()
        runner = SyscallRunner(engine, SyncSyscallPath(engine), 5)
        with pytest.raises(ConfigError):
            runner.total_cycles()

    def test_rejects_zero_iterations(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            SyscallRunner(engine, SyncSyscallPath(engine), 0)
