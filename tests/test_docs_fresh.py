"""The committed docs/ files must match what the code generates."""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "examples"))

import generate_docs  # noqa: E402


@pytest.mark.parametrize("name", sorted(generate_docs.GENERATORS))
def test_doc_is_fresh(name):
    committed = (ROOT / "docs" / name).read_text()
    regenerated = generate_docs.GENERATORS[name]()
    assert committed == regenerated, (
        f"docs/{name} is stale; run `python examples/generate_docs.py`")


def test_isa_doc_covers_every_opcode():
    from repro.isa.instructions import OPS
    text = generate_docs.isa_markdown()
    for op in OPS:
        assert f"`{op}`" in text


def test_cost_doc_covers_every_constant():
    import dataclasses
    from repro.arch.costs import CostModel
    text = generate_docs.cost_model_markdown()
    for field in dataclasses.fields(CostModel()):
        assert f"`{field.name}`" in text


def test_experiments_doc_covers_registry():
    from repro.experiments import all_experiments
    text = generate_docs.experiments_markdown()
    for experiment in all_experiments():
        assert experiment.experiment_id in text
