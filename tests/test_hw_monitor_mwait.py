"""Tests for generalized monitor/mwait semantics on the core."""

from repro import build_machine
from repro.hw import PtidState


def test_mwait_blocks_until_store_from_another_thread():
    machine = build_machine()
    mailbox = machine.alloc("mailbox", 64)
    machine.load_asm(0, """
        movi r1, BOX
        monitor r1
        mwait
        ld r2, r1, 0
        halt
    """, symbols={"BOX": mailbox.base}, supervisor=True)
    machine.load_asm(1, """
        work 200
        movi r1, BOX
        movi r2, 99
        st r1, 0, r2
        halt
    """, symbols={"BOX": mailbox.base}, supervisor=True)
    machine.boot(0)
    machine.boot(1)
    machine.run()
    waiter = machine.thread(0)
    assert waiter.finished
    assert waiter.arch.read("r2") == 99
    assert waiter.wakeups == 1


def test_waiting_state_visible_while_blocked():
    machine = build_machine()
    box = machine.alloc("box", 64)
    machine.load_asm(0, """
        movi r1, BOX
        monitor r1
        mwait
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(0)
    machine.run(until=1000)
    assert machine.thread(0).state is PtidState.WAITING
    # now write from "outside" (device-like)
    machine.memory.store(box.base, 1, source="dma:test")
    machine.run()
    assert machine.thread(0).finished


def test_no_lost_wakeup_store_between_monitor_and_mwait():
    # thread 1 writes BEFORE thread 0 reaches mwait: mwait must fall through
    machine = build_machine()
    box = machine.alloc("box", 64)
    machine.load_asm(0, """
        movi r1, BOX
        monitor r1
        work 500        ; window where the write lands
        mwait
        movi r3, 1
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.load_asm(1, """
        movi r1, BOX
        movi r2, 7
        st r1, 0, r2
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(0)
    machine.boot(1)
    machine.run(until=100_000)
    thread = machine.thread(0)
    assert thread.finished, "mwait slept through a pre-armed write (lost wakeup)"
    assert thread.arch.read("r3") == 1
    assert thread.monitor.total_fallthroughs == 1


def test_monitor_multiple_locations():
    # paper: "A hardware thread can monitor multiple memory locations"
    machine = build_machine()
    box_a = machine.alloc("a", 64)
    box_b = machine.alloc("b", 64)
    machine.load_asm(0, """
        movi r1, A
        movi r2, B
        monitor r1
        monitor r2
        mwait
        halt
    """, symbols={"A": box_a.base, "B": box_b.base}, supervisor=True)
    machine.boot(0)
    machine.run(until=100)
    assert machine.thread(0).state is PtidState.WAITING
    machine.memory.store(box_b.base, 1)  # second location suffices
    machine.run()
    assert machine.thread(0).finished


def test_mwait_without_monitor_does_not_block():
    machine = build_machine()
    machine.load_asm(0, "mwait\nmovi r1, 5\nhalt", supervisor=True)
    machine.boot(0)
    machine.run(until=10_000)
    assert machine.thread(0).finished
    assert machine.thread(0).arch.read("r1") == 5


def test_wakeup_consumes_armed_set_rearm_needed():
    machine = build_machine()
    box = machine.alloc("box", 64)
    # handler loop: re-arms each iteration, counts events in r5
    machine.load_asm(0, """
        movi r1, BOX
        movi r5, 0
    loop:
        monitor r1
        mwait
        addi r5, r5, 1
        movi r6, 3
        bne r5, r6, loop
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(0)
    for t in (1000, 2000, 3000):
        machine.engine.at(t, machine.memory.store, box.base, t, "dma:test")
    machine.run()
    thread = machine.thread(0)
    assert thread.finished
    assert thread.arch.read("r5") == 3
    assert thread.wakeups >= 1


def test_wakeup_charges_monitor_and_start_costs():
    machine = build_machine()
    box = machine.alloc("box", 64)
    machine.load_asm(0, """
        movi r1, BOX
        monitor r1
        mwait
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(0)
    machine.run(until=100)
    store_time = 5000
    machine.engine.at(store_time, machine.memory.store, box.base, 1, "dma:test")
    machine.run()
    thread = machine.thread(0)
    assert thread.finished
    costs = machine.costs
    wakeup_latency = machine.engine.now - store_time
    # dispatched within the hw wakeup budget (monitor + RF start), plus
    # a couple of issue-round cycles
    assert wakeup_latency <= costs.hw_wakeup_cycles("rf") + 5
    assert wakeup_latency >= costs.monitor_wakeup_cycles


def test_stop_while_waiting_cancels_monitor():
    machine = build_machine()
    box = machine.alloc("box", 64)
    machine.load_asm(0, """
        movi r1, BOX
        monitor r1
        mwait
        movi r3, 1
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(0)
    machine.run(until=100)
    machine.core(0).api_stop(0)
    machine.memory.store(box.base, 1)
    machine.run(until=10_000)
    thread = machine.thread(0)
    assert thread.state is PtidState.DISABLED
    assert thread.arch.read("r3") == 0  # never woke
    assert machine.memory.watch_bus.watchers_on(box.base) == 0
