"""Tests for latency statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import LatencyRecorder, percentile, summarize
from repro.analysis.stats import (
    geometric_mean,
    ratio,
    throughput_per_second,
    utilization,
)
from repro.errors import ConfigError


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_sample(self):
        assert percentile([7], 99) == 7

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            percentile([], 50)

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ConfigError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                    max_size=200),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_within_sample_range_property(self, data, pct):
        import math
        p = percentile(data, pct)
        lo, hi = min(data), max(data)
        assert (lo <= p <= hi
                or math.isclose(p, lo, rel_tol=1e-12)
                or math.isclose(p, hi, rel_tol=1e-12))

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=2,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_pct_property(self, data):
        import math
        values = [percentile(data, p) for p in (10, 50, 90, 99)]
        for lo, hi in zip(values, values[1:]):
            assert lo <= hi or math.isclose(lo, hi, rel_tol=1e-12)


class TestSummarize:
    def test_summary_fields(self):
        s = summarize(list(range(1, 101)))
        assert s.count == 100
        assert s.mean == pytest.approx(50.5)
        assert s.p50 == pytest.approx(50.5)
        assert s.maximum == 100
        assert s.p99 > s.p95 > s.p50

    def test_as_dict_keys(self):
        d = summarize([1.0]).as_dict()
        assert set(d) == {"count", "mean", "p50", "p95", "p99", "max"}


class TestLatencyRecorder:
    def test_records_and_summarizes(self):
        rec = LatencyRecorder("x")
        rec.record_many([10, 20, 30])
        assert rec.count == 3
        assert rec.mean() == 20

    def test_warmup_dropped(self):
        rec = LatencyRecorder(warmup=2)
        rec.record_many([1000, 1000, 10, 20])
        assert rec.samples == [10, 20]

    def test_empty_mean_rejected(self):
        with pytest.raises(ConfigError):
            LatencyRecorder().mean()

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigError):
            LatencyRecorder(warmup=-1)


class TestRates:
    def test_throughput(self):
        # 3000 completions in 3e9 cycles at 3 GHz = one second
        assert throughput_per_second(3000, 3e9, 3.0) == pytest.approx(3000)

    def test_utilization(self):
        assert utilization(500, 1000) == pytest.approx(0.5)
        assert utilization(500, 1000, servers=2) == pytest.approx(0.25)

    def test_ratio_handles_zero(self):
        assert ratio(1, 0) == float("inf")
        assert ratio(10, 5) == 2

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1, 0])

    def test_throughput_rejects_zero_elapsed(self):
        with pytest.raises(ConfigError):
            throughput_per_second(1, 0)
