"""Tests for instruction definitions, the assembler, and programs."""

import pytest

from repro.errors import IsaError
from repro.isa import Imm, Instruction, Label, OPS, Program, Reg, RegName, assemble


class TestInstruction:
    def test_valid_construction(self):
        instr = Instruction("addi", (Reg("r1"), Reg("r2"), Imm(5)))
        assert instr.spec.latency == 1
        assert str(instr) == "addi r1, r2, 5"

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IsaError):
            Instruction("frobnicate", ())

    def test_wrong_arity_rejected(self):
        with pytest.raises(IsaError):
            Instruction("add", (Reg("r1"), Reg("r2")))

    def test_wrong_operand_type_rejected(self):
        with pytest.raises(IsaError):
            Instruction("movi", (Imm(1), Imm(2)))  # first must be Reg

    def test_ri_operand_accepts_both(self):
        Instruction("start", (Reg("r1"),))
        Instruction("start", (Imm(3),))

    def test_all_seven_proposed_instructions_exist(self):
        # the paper's Section 3.1 instruction list
        for op in ("monitor", "mwait", "start", "stop", "rpull", "rpush",
                   "invtid"):
            assert op in OPS

    def test_rpull_signature_matches_paper(self):
        # rpull <vtid>, <local-reg>, <remote-reg>
        assert OPS["rpull"].operands == ("RI", "R", "N")
        # rpush <vtid>, <remote-reg>, <local-reg>
        assert OPS["rpush"].operands == ("RI", "N", "R")


class TestAssembler:
    def test_simple_program(self):
        prog = assemble("""
            movi r1, 10
            addi r1, r1, -1
            halt
        """)
        assert len(prog) == 3
        assert prog.fetch(0).op == "movi"
        assert prog.fetch(1).operands[2] == Imm(-1)

    def test_labels_and_branches(self):
        prog = assemble("""
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """)
        assert prog.labels == {"loop": 0}
        branch = prog.fetch(1)
        assert branch.operands[2] == Label("loop")
        assert prog.resolve("loop") == 0

    def test_forward_label_reference(self):
        prog = assemble("""
            jmp end
            nop
        end:
            halt
        """)
        assert prog.resolve("end") == 2

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble("""
            ; full comment
            nop  ; trailing
            # hash comment
            nop
        """)
        assert len(prog) == 2

    def test_hex_and_negative_immediates(self):
        prog = assemble("movi r1, 0xFF\nmovi r2, -3")
        assert prog.fetch(0).operands[1] == Imm(255)
        assert prog.fetch(1).operands[1] == Imm(-3)

    def test_symbols_substitute(self):
        prog = assemble("movi r1, RX_TAIL", symbols={"RX_TAIL": 0x5000})
        assert prog.fetch(0).operands[1] == Imm(0x5000)

    def test_rpull_parses_register_name_operand(self):
        prog = assemble("rpull 3, r1, pc")
        instr = prog.fetch(0)
        assert instr.operands == (Imm(3), Reg("r1"), RegName("pc"))

    def test_and_or_keyword_mangling(self):
        prog = assemble("and r1, r2, r3\nor r4, r5, r6")
        assert prog.fetch(0).op == "and_"
        assert prog.fetch(1).op == "or_"

    def test_unknown_opcode(self):
        with pytest.raises(IsaError) as err:
            assemble("bogus r1")
        assert "line 1" in str(err.value)

    def test_duplicate_label_rejected(self):
        with pytest.raises(IsaError):
            assemble("x:\nnop\nx:\nnop")

    def test_undefined_branch_target(self):
        with pytest.raises(IsaError):
            assemble("jmp nowhere")

    def test_wrong_operand_count_reports_line(self):
        with pytest.raises(IsaError) as err:
            assemble("nop\nadd r1, r2")
        assert "line 2" in str(err.value)

    def test_register_where_immediate_needed(self):
        with pytest.raises(IsaError):
            assemble("work r1")

    def test_monitor_mwait_sequence(self):
        prog = assemble("""
            movi r2, 0x5000
            monitor r2
            mwait
            halt
        """)
        assert [i.op for i in prog.instructions] == [
            "movi", "monitor", "mwait", "halt"]


class TestProgram:
    def test_fetch_out_of_range(self):
        prog = assemble("nop")
        with pytest.raises(IsaError):
            prog.fetch(5)
        with pytest.raises(IsaError):
            prog.fetch(-1)

    def test_resolve_missing_label(self):
        with pytest.raises(IsaError):
            assemble("nop").resolve("ghost")

    def test_bad_label_target_rejected(self):
        from repro.isa.instructions import Instruction as I
        with pytest.raises(IsaError):
            Program([I("nop")], labels={"x": 9})

    def test_listing_includes_labels(self):
        prog = assemble("start:\nnop\nhalt")
        listing = prog.listing()
        assert "start:" in listing
        assert "nop" in listing
