"""Pre-decoded handler chains vs the naive interpreter.

The decode cache (``repro.isa.decode``) claims byte-for-byte behavioral
identity with instruction-at-a-time interpretation: same architectural
state, same retirement counts, same busy-cycle accounting, same final
clock -- with and without the busy-cycle fast-forward stacked on top.
These tests run the same workload across ``predecode`` on/off (crossed
with ``fast_forward`` where the interplay matters) and diff everything
except ``events`` (batching fused runs legitimately drops engine
events, exactly like the fast-forward).
"""

import pytest

from repro import build_machine


def _strip_events(stats):
    return {key: value for key, value in stats.items() if key != "events"}


def _fingerprint(machine, core_id=0):
    out = []
    for thread in machine.core(core_id).threads:
        if thread.program is None:
            continue
        out.append({
            "ptid": thread.ptid,
            "state": thread.state.name,
            "finished": thread.finished,
            "instructions": thread.instructions_executed,
            "cycles_busy": thread.cycles_busy,
            "wakeups": thread.wakeups,
            "exceptions": thread.exceptions_raised,
            "pc": thread.arch.pc,
            "gprs": list(thread.arch.gprs),
            "flags": thread.arch.flags,
        })
    return out


def _run_contended(predecode: bool, fast_forward: bool = True):
    """Contended SMT with fusable ALU runs, a DMA-woken monitor sleeper,
    and a faulting thread -- the full decoded-dispatch surface."""
    machine = build_machine(cores=1, hw_threads_per_core=8, smt_width=2,
                            predecode=predecode, fast_forward=fast_forward)
    box = machine.alloc("box", 64)
    edp = machine.alloc("edp", 256)
    for ptid in range(4):
        machine.load_asm(ptid, f"""
            movi r1, 0
            movi r2, 3
        loop:
            movi r4, {5 + ptid}
            addi r4, r4, 7
            xor  r5, r4, r1
            shl  r6, r4, 2
            work {400 + 97 * ptid}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """, supervisor=True)
        machine.boot(ptid)
    machine.load_asm(4, """
        movi r1, BOX
        monitor r1
        mwait
        ld r2, r1, 0
        work 300
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(4)
    machine.load_asm(5, """
        work 200
        movi r1, 7
        movi r2, 0
        div r3, r1, r2
        halt
    """, supervisor=True, edp=edp.base)
    machine.boot(5)
    machine.dma.write_word(box.base, 42)
    machine.run()
    machine.run(until=machine.engine.now + 100)
    return machine


def _run_multicore(predecode: bool):
    """Two cores; a cross-core store wakes a sleeper mid-fused-run."""
    machine = build_machine(cores=2, hw_threads_per_core=4, smt_width=2,
                            predecode=predecode)
    box = machine.alloc("box", 64)
    for ptid in range(3):
        machine.load_asm(ptid, f"""
            movi r1, 0
            movi r2, 2
        loop:
            movi r4, {3 + ptid}
            add  r5, r4, r4
            sub  r6, r5, r1
            work {350 + 151 * ptid}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """, core_id=0, supervisor=True)
        machine.boot(ptid, core_id=0)
    machine.load_asm(3, """
        movi r1, BOX
        monitor r1
        mwait
        ld r2, r1, 0
        halt
    """, core_id=0, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(3, core_id=0)
    machine.load_asm(0, """
        work 900
        movi r1, BOX
        movi r2, 99
        st r1, 0, r2
        work 400
        halt
    """, core_id=1, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(0, core_id=1)
    machine.run()
    return machine


def _run_jump_into_run(predecode: bool):
    """A dynamic jump lands mid-way inside a fusable ALU run: interior
    indices must execute instruction-at-a-time with identical results."""
    machine = build_machine(cores=1, hw_threads_per_core=2,
                            predecode=predecode)
    machine.load_asm(0, """
        movi r1, 6       ; jr target: index of 'addi r3, r3, 10' below
        jr r1
        movi r2, 1       ; skipped
        movi r3, 2       ; skipped
        movi r2, 100     ; run start (skipped by the jump)
        movi r3, 200
        addi r3, r3, 10  ; jump lands here, inside the run
        add  r4, r2, r3
        halt
    """, supervisor=True)
    machine.boot(0)
    machine.run()
    return machine


def _run_stop_mid_run(predecode: bool):
    """api_stop lands while a fused run is burning: the rewind must
    leave pc/registers exactly where naive stepping would."""
    machine = build_machine(cores=1, hw_threads_per_core=2,
                            predecode=predecode)
    machine.load_asm(0, """
        movi r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        halt
    """, supervisor=True)
    machine.boot(0)
    # stop at cycle 3: mid-way through the fused ALU run
    machine.engine.at(3, machine.core(0).api_stop, 0)
    machine.run()
    return machine


@pytest.mark.parametrize("fast_forward", [True, False])
def test_predecode_matches_naive_contended(fast_forward):
    fast = _run_contended(True, fast_forward)
    naive = _run_contended(False, fast_forward)
    assert fast.engine.now == naive.engine.now
    assert _strip_events(fast.stats()) == _strip_events(naive.stats())
    assert _fingerprint(fast) == _fingerprint(naive)


def test_predecode_matches_naive_multicore():
    fast = _run_multicore(True)
    naive = _run_multicore(False)
    assert fast.engine.now == naive.engine.now
    assert _strip_events(fast.stats()) == _strip_events(naive.stats())
    for core_id in (0, 1):
        assert _fingerprint(fast, core_id) == _fingerprint(naive, core_id)


@pytest.mark.parametrize("workload", [_run_jump_into_run,
                                      _run_stop_mid_run])
def test_predecode_fusion_edges(workload):
    fast = workload(True)
    naive = workload(False)
    assert fast.engine.now == naive.engine.now
    assert _fingerprint(fast) == _fingerprint(naive)


def test_env_var_forces_naive(monkeypatch):
    monkeypatch.setenv("REPRO_NO_PREDECODE", "1")
    machine = build_machine(predecode=True)
    assert not machine.core(0).predecode_enabled


def test_config_disables_predecode():
    machine = build_machine(predecode=False)
    assert not machine.core(0).predecode_enabled
    assert build_machine().core(0).predecode_enabled


def test_tracer_forces_naive():
    # the decoded path skips per-instruction trace emits, so an enabled
    # tracer must fall back to the naive interpreter
    machine = build_machine(trace=True, predecode=True)
    assert not machine.core(0).predecode_enabled
