"""Tests for hardware thread priorities under SMT contention.

Section 4: "we can introduce hardware support for thread priorities
(e.g., threads used for serving time-sensitive interrupts receive more
cycles [56])".
"""

import pytest

from repro.errors import ConfigError
from repro.machine import build_machine

_SPIN_WORKER = """
loop:
    movi r2, DONE
    faa r3, r2, 0
    addi r1, r1, 1
    work 3
    jmp loop
"""

_COUNTED_WORKER = """
loop:
    addi r1, r1, 1
    blt r1, r9, loop
    movi r2, DONE
    movi r3, 1
    st r2, 0, r3
    halt
"""


def _race(policy: str, priorities):
    """Run two identical counting workers; return their finish order
    and progress. The worker loop bodies are identical, so the issue
    policy alone decides who advances faster."""
    machine = build_machine(issue_policy=policy, smt_width=1)
    dones = [machine.alloc(f"done{i}", 64) for i in range(2)]
    for i in range(2):
        machine.load_asm(i, _COUNTED_WORKER,
                         symbols={"DONE": dones[i].base},
                         supervisor=True, name=f"worker{i}")
        machine.thread(i).arch.write("r9", 3_000)
        machine.core(0).set_priority(i, priorities[i])
        machine.boot(i)
    finish = {}
    for i, done in enumerate(dones):
        machine.memory.watch_bus.subscribe(
            done.base,
            lambda _info, i=i: finish.setdefault(i, machine.engine.now))
    machine.run(until=200_000)
    machine.check()
    return finish


class TestPriorityWeightedIssue:
    def test_equal_priorities_finish_together(self):
        finish = _race("priority", (1, 1))
        assert set(finish) == {0, 1}
        assert abs(finish[0] - finish[1]) < 500

    def test_higher_priority_finishes_first(self):
        finish = _race("priority", (4, 1))
        assert finish[0] < finish[1]

    def test_priority_ratio_reflects_in_finish_times(self):
        finish = _race("priority", (4, 1))
        # priority 4 gets ~4/5 of cycles until it halts: it should
        # finish in roughly 5/4 of its solo time, far before the other
        assert finish[1] > finish[0] * 1.4

    def test_round_robin_ignores_priority(self):
        finish = _race("rr", (4, 1))
        assert abs(finish[0] - finish[1]) < 500

    def test_no_starvation(self):
        # even a 16:1 ratio must let the low-priority thread finish
        finish = _race("priority", (16, 1))
        assert set(finish) == {0, 1}

    def test_set_priority_validates(self):
        machine = build_machine()
        with pytest.raises(ConfigError):
            machine.core(0).set_priority(0, 0)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            build_machine(issue_policy="lottery")


class TestTimeCriticalHandler:
    def test_high_priority_handler_wakes_into_cycles(self):
        """A time-critical mwait handler with high priority responds
        faster under background compute load than a low-priority one."""
        latencies = {}
        for prio in (1, 8):
            machine = build_machine(issue_policy="priority", smt_width=1)
            flag = machine.alloc("flag", 64)
            resp = machine.alloc("resp", 64)
            machine.load_asm(0, """
                movi r1, FLAG
                monitor r1
                mwait
                work 50
                movi r2, RESP
                movi r3, 1
                st r2, 0, r3
                halt
            """, symbols={"FLAG": flag.base, "RESP": resp.base},
                supervisor=True, name="handler")
            # background compute hogs
            for ptid in (1, 2, 3):
                machine.load_asm(ptid, "loop:\n    work 1000\n    jmp loop",
                                 supervisor=False, name=f"hog{ptid}")
                machine.boot(ptid)
            machine.core(0).set_priority(0, prio)
            machine.boot(0)
            times = {}
            machine.memory.watch_bus.subscribe(
                resp.base, lambda _info: times.setdefault(
                    "resp", machine.engine.now))
            machine.run(max_events=500)
            wake_at = machine.engine.now + 10
            machine.engine.at(wake_at, machine.memory.store,
                              flag.base, 1, "apic")
            machine.run(until=wake_at + 50_000)
            latencies[prio] = times["resp"] - wake_at
        assert latencies[8] < latencies[1]
