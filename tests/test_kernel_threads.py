"""Tests for software threads and context-switch accounting."""

import pytest

from repro.arch.costs import CostModel
from repro.errors import SimulationError
from repro.kernel import ContextSwitchAccounting, SoftwareThread
from repro.kernel.threads import SwThreadState


class TestSoftwareThread:
    def test_lifecycle(self):
        t = SoftwareThread("t")
        assert t.state is SwThreadState.READY
        t.run()
        t.block()
        t.wake()
        t.run()
        t.preempt()
        t.run()
        t.finish()
        assert t.state is SwThreadState.DONE
        assert t.blocks == 1
        assert t.wakeups == 1

    def test_cannot_block_when_ready(self):
        with pytest.raises(SimulationError):
            SoftwareThread().block()

    def test_cannot_wake_running(self):
        t = SoftwareThread()
        t.run()
        with pytest.raises(SimulationError):
            t.wake()

    def test_cannot_run_twice(self):
        t = SoftwareThread()
        t.run()
        with pytest.raises(SimulationError):
            t.run()

    def test_unique_tids(self):
        assert SoftwareThread().tid != SoftwareThread().tid


class TestContextSwitchAccounting:
    def test_switch_charge(self):
        acct = ContextSwitchAccounting(CostModel())
        cycles = acct.charge_switch()
        assert cycles == 500 + 1000  # switch + pollution
        assert acct.switches == 1

    def test_switch_without_pollution(self):
        acct = ContextSwitchAccounting(CostModel())
        assert acct.charge_switch(include_pollution=False) == 500
        assert acct.pollution_cycles == 0

    def test_fp_switch_extra(self):
        acct = ContextSwitchAccounting(CostModel())
        plain = acct.charge_switch(include_pollution=False)
        with_fp = acct.charge_switch(fp_state=True, include_pollution=False)
        assert with_fp - plain == CostModel().sw_switch_fp_extra_cycles

    def test_mode_switch_charge(self):
        acct = ContextSwitchAccounting(CostModel())
        assert acct.charge_mode_switch() == 300
        assert acct.charge_mode_switch(fp_save=True) == 500
        assert acct.mode_switches == 2

    def test_irq_scheduler_ipi(self):
        costs = CostModel()
        acct = ContextSwitchAccounting(costs)
        assert acct.charge_irq() == costs.irq_entry_cycles + costs.irq_exit_cycles
        assert acct.charge_scheduler() == costs.scheduler_cycles
        assert acct.charge_ipi() == costs.ipi_cycles

    def test_total_and_breakdown_consistent(self):
        acct = ContextSwitchAccounting(CostModel())
        acct.charge_switch()
        acct.charge_mode_switch()
        acct.charge_irq()
        acct.charge_scheduler()
        acct.charge_ipi()
        assert acct.total_overhead_cycles == sum(acct.breakdown().values())
        assert all(v >= 0 for v in acct.breakdown().values())
