"""Unit tests for the credit-based weighted-round-robin arbiter.

The O(1) hardware-faithful counterpart of the float virtual-time WFQ
policy: a ptid-ordered ring, a rotation pointer, and one integer credit
counter per thread. E18 measures its steady-state shares at machine
level; these tests pin the arbitration mechanics directly.
"""

import pytest

from repro.errors import ConfigError
from repro.hw.issue import RoundRobinIssue, WeightedRoundRobinIssue
from repro.machine import build_machine


class _Thread:
    __slots__ = ("ptid", "priority")

    def __init__(self, ptid, priority=1):
        self.ptid = ptid
        self.priority = priority


def _stream(policy, threads, width, rounds):
    picks = []
    for _ in range(rounds):
        picks.extend(t.ptid for t in policy.select(threads, width))
    return picks


class TestCreditWalk:
    def test_shares_proportional_to_weights(self):
        threads = [_Thread(0, 4), _Thread(1, 2), _Thread(2, 1)]
        policy = WeightedRoundRobinIssue()
        for t in threads:
            policy.note_enqueue(t)
        picks = _stream(policy, threads, width=1, rounds=7 * 40)
        counts = {p: picks.count(p) for p in (0, 1, 2)}
        # 40 full frames of sum(weights)=7 picks: exactly proportional
        assert counts == {0: 4 * 40, 1: 2 * 40, 2: 1 * 40}

    def test_every_thread_served_each_frame(self):
        """No starvation: within any window of sum(weights) picks,
        every backlogged thread appears at least once."""
        threads = [_Thread(0, 5), _Thread(1, 1), _Thread(2, 1)]
        policy = WeightedRoundRobinIssue()
        for t in threads:
            policy.note_enqueue(t)
        picks = _stream(policy, threads, width=1, rounds=7 * 10)
        frame = sum(t.priority for t in threads)
        for start in range(0, len(picks) - frame + 1, frame):
            window = picks[start:start + frame]
            assert {0, 1, 2} <= set(window)

    def test_uncontended_rotation_touches_no_credits(self):
        threads = [_Thread(0, 4), _Thread(1, 1)]
        policy = WeightedRoundRobinIssue()
        for t in threads:
            policy.note_enqueue(t)
        before = dict(policy._credit)
        picked = policy.select(threads, width=4)
        assert [t.ptid for t in picked] == [0, 1]
        assert policy._credit == before       # nothing to arbitrate
        assert policy.advance_rounds(picked, 10) == picked

    def test_note_enqueue_grants_fresh_frame(self):
        thread = _Thread(3, 6)
        policy = WeightedRoundRobinIssue()
        policy.note_enqueue(thread)
        assert policy._credit[3] == 6

    def test_forget_drops_counter(self):
        thread = _Thread(2, 3)
        policy = WeightedRoundRobinIssue()
        policy.note_enqueue(thread)
        policy.forget(2)
        assert 2 not in policy._credit
        policy.forget(2)                       # idempotent

    def test_refill_carries_deficit(self):
        """Partial frames carry over: += (not =) on refill keeps
        long-run shares exact."""
        threads = [_Thread(0, 2), _Thread(1, 1)]
        policy = WeightedRoundRobinIssue()
        for t in threads:
            policy.note_enqueue(t)
        picks = _stream(policy, threads, width=1, rounds=3 * 20)
        assert picks.count(0) == 2 * picks.count(1)

    def test_matches_rr_at_uniform_weights(self):
        threads = [_Thread(p) for p in range(5)]
        rr, wrr = RoundRobinIssue(), WeightedRoundRobinIssue()
        for t in threads:
            rr.note_enqueue(t)
            wrr.note_enqueue(t)
        for width in (1, 2, 3):
            assert (_stream(rr, threads, width, 30)
                    == _stream(wrr, threads, width, 30))

    def test_fastforward_contract_flags(self):
        policy = WeightedRoundRobinIssue()
        assert policy.full_pick_uncontended      # lazy uncontended ok
        assert not policy.rotation_invariant     # contended batch: no
        assert policy.wants_forget


class TestMachineIntegration:
    def test_wrr_policy_config(self):
        machine = build_machine(issue_policy="wrr")
        assert machine.core(0).issue_policy.name == "weighted-round-robin"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            build_machine(issue_policy="lottery")

    def test_weighted_progress_under_contention(self):
        """Two always-issueable counting loops, smt_width 1: the
        priority-4 thread retires ~4x the instructions of priority-1."""
        machine = build_machine(issue_policy="wrr", smt_width=1,
                                hw_threads_per_core=2)
        for ptid, weight in ((0, 4), (1, 1)):
            machine.load_asm(ptid, "loop:\n    addi r1, r1, 1\n    jmp loop",
                             supervisor=True)
            machine.core(0).set_priority(ptid, weight)
            machine.boot(ptid)
        machine.run(until=20_000)
        fast = machine.thread(0).instructions_executed
        slow = machine.thread(1).instructions_executed
        assert fast / slow == pytest.approx(4.0, rel=0.02)
