"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting. Output is captured and spot-checked for the headline facts.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600, check=True)
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "echo_server_io.py", "untrusted_hypervisor.py",
            "microkernel_fs.py", "sandboxed_extension.py",
            "thread_per_request.py", "hw_scheduler.py",
            "run_evaluation.py", "cluster_service.py"} <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "reply value   : 42" in out
    assert "DIV_ZERO" in out


def test_echo_server_io():
    out = run_example("echo_server_io.py", "0.4")
    assert "interrupt" in out and "mwait" in out and "polling" in out


def test_untrusted_hypervisor():
    out = run_example("untrusted_hypervisor.py")
    assert "hypervisor privileged? False" in out
    assert "faulted (PERMISSION_FAULT)" in out


def test_microkernel_fs():
    out = run_example("microkernel_fs.py")
    assert "direct ptid start" in out
    assert "scheduler IPC" in out


def test_hw_scheduler():
    out = run_example("hw_scheduler.py")
    assert "scheduler supervisor?: False" in out
    # all three workers made progress under round-robin slicing
    assert out.count("activations") == 3


def test_thread_per_request():
    out = run_example("thread_per_request.py")
    assert "handlers finished : 16/16" in out
    assert "blocked and woke exactly once: True" in out


def test_sandboxed_extension():
    out = run_example("sandboxed_extension.py")
    assert "sandbox crash contained?  : True" in out
    assert "PRIVILEGE_FAULT" in out


def test_cluster_service():
    out = run_example("cluster_service.py")
    assert "conserved         : True" in out
    assert "hedges sent" in out
    assert "sw/hw p99 ratio" in out


@pytest.mark.slow
def test_run_evaluation_quick():
    out = run_example("run_evaluation.py", "--quick")
    assert "All 18 experiments support the paper's claims." in out
