"""Tests for the smartNIC direct-dispatch offload (Section 4)."""

from repro.devices import Nic
from repro.machine import build_machine
from repro.workloads import DeterministicArrivals


def test_dispatch_called_per_packet():
    machine = build_machine()
    started = []
    nic = Nic(machine.engine, machine.memory, machine.dma,
              dispatch=started.append)
    nic.start_rx(DeterministicArrivals(1_000),
                 machine.rngs.stream("rx"), max_packets=3)
    machine.run(until=100_000)
    assert started == [0, 1, 2]


def test_dispatch_takes_precedence_over_legacy_irq():
    machine = build_machine()
    started, irqs = [], []
    nic = Nic(machine.engine, machine.memory, machine.dma,
              dispatch=started.append, legacy_irq=irqs.append)
    nic.start_rx(DeterministicArrivals(1_000),
                 machine.rngs.stream("rx"), max_packets=2)
    machine.run(until=100_000)
    assert started == [0, 1]
    assert irqs == []


def test_smartnic_starts_handler_ptid_directly():
    """The offload scenario end-to-end: the NIC starts a handler ptid
    that was left disabled (no monitor armed, no polling)."""
    machine = build_machine()
    processed = machine.alloc("processed", 64)
    nic = Nic(machine.engine, machine.memory, machine.dma,
              dispatch=lambda seq: machine.core(0).api_start(1))
    # the handler consumes one ring entry per activation, then stops
    # *itself* (the paper's disable, not terminate); the NIC's start
    # resumes it right after the stop, which jumps back to the loop
    machine.load_asm(1, """
    loop:
        movi r1, HEAD
        ld r2, r1, 0
        addi r2, r2, 1
        st r1, 0, r2
        movi r3, PROC
        faa r4, r3, 1
        stop 1
        jmp loop
    """, symbols={"HEAD": nic.rx.head_addr, "PROC": processed.base},
        supervisor=True, name="rx-handler")
    nic.start_rx(DeterministicArrivals(5_000),
                 machine.rngs.stream("rx"), max_packets=4)
    machine.run(until=1_000_000)
    machine.check()
    assert machine.memory.load(processed.base) == 4
    assert machine.thread(1).starts == 4


def test_dispatch_latency_beats_monitor_path():
    """Direct ptid start skips the monitor wakeup: first handler
    activity lands sooner than write+monitor-wakeup would."""
    from repro.arch.costs import CostModel
    costs = CostModel()
    machine = build_machine()
    activity = []
    nic = Nic(machine.engine, machine.memory, machine.dma,
              dispatch=lambda seq: activity.append(machine.engine.now))
    nic.start_rx(DeterministicArrivals(2_000),
                 machine.rngs.stream("rx"), max_packets=1)
    machine.run(until=100_000)
    land = nic.delivery_time[0]
    # the dispatch callback fires at land time: zero added latency,
    # versus monitor_wakeup + start for the mwait path
    assert activity[0] == land
    assert costs.hw_wakeup_cycles("rf") > 0
