"""Property tests for watch-line aliasing and one-shot semantics.

Watches are line-granular (64 B), so distinct addresses alias onto one
watch iff they share a line -- including addresses that land on
opposite sides of a line boundary. The properties below hold with the
flat bus and with every coherence model, which is itself a property
worth pinning: the directory defers delivery but never changes *who*
wakes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.costs import CostModel
from repro.coherence import DirectoryModel
from repro.mem.watch import LINE_BYTES, WatchBus
from repro.sim.engine import Engine

COSTS = CostModel()
MODELS = st.sampled_from(["off", "null", "directory"])
ADDRS = st.integers(min_value=0, max_value=64 * LINE_BYTES - 1)


def _bus(model: str, engine=None):
    bus = WatchBus()
    if model != "off":
        bus.coherence = DirectoryModel.from_name(model, COSTS,
                                                 engine=engine)
    return bus


def _drain(engine):
    if engine is not None:
        engine.run()


class TestLineAliasing:
    @given(watched=ADDRS, written=ADDRS, model=MODELS)
    @settings(max_examples=60, deadline=None)
    def test_trigger_iff_same_line(self, watched, written, model):
        engine = Engine()
        bus = _bus(model, engine)
        watch = bus.watch(watched)
        fired = []
        watch.signal.add_waiter(fired.append)
        bus.notify(written, 1)
        _drain(engine)
        same_line = watched // LINE_BYTES == written // LINE_BYTES
        assert bool(fired) == same_line
        assert watch.covers(written) == same_line

    @given(addr=ADDRS, span=st.integers(min_value=1, max_value=200),
           model=MODELS)
    @settings(max_examples=60, deadline=None)
    def test_span_watches_both_boundary_lines(self, addr, span, model):
        """A buffer spanning a line boundary needs (and gets) a watch
        on every line it touches -- writes to either end wake."""
        engine = Engine()
        bus = _bus(model, engine)
        last = addr + span - 1
        watch = bus.watch([addr, last])
        fired = []
        watch.signal.add_waiter(fired.append)
        bus.notify(last, 1)
        _drain(engine)
        assert fired                        # the far end always wakes
        lines = {addr // LINE_BYTES, last // LINE_BYTES}
        assert watch.lines == lines
        if bus.coherence is not None:
            assert bus.coherence.lines_tracked() == len(lines)

    @given(addr=ADDRS, model=MODELS)
    @settings(max_examples=30, deadline=None)
    def test_one_shot_per_arm(self, addr, model):
        """A watch fires at most once per arm even under repeated
        writes (mwait consumes the arm; only re-arming re-waits)."""
        engine = Engine()
        bus = _bus(model, engine)
        watch = bus.watch(addr)
        fired = []
        watch.signal.add_waiter(
            lambda info: (fired.append(info), watch.cancel()))
        for _ in range(3):
            bus.notify(addr, 1)
        _drain(engine)
        assert len(fired) == 1


class TestCancelWhilePending:
    @given(addr=ADDRS, cancel_delay=st.integers(min_value=0, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_cancel_races_the_forward(self, addr, cancel_delay):
        """With the directory deferring delivery, a cancel issued any
        time before the forward lands suppresses the wakeup; a cancel
        after it lands is a harmless no-op. There is no window where a
        cancelled watch still fires."""
        engine = Engine()
        bus = _bus("directory", engine)
        watch = bus.watch(addr)
        fired = []
        watch.signal.add_waiter(fired.append)
        engine.at(100, bus.notify, addr, 1, "w")
        engine.at(100 + cancel_delay, watch.cancel)
        engine.run()
        lands_at = 100 + bus.coherence.wakeup_delay(0)
        # same-cycle tie: the engine breaks ties by schedule order, and
        # the cancel event was enqueued at setup time -- before notify's
        # forward existed -- so a cancel at the landing cycle runs first
        # and still suppresses the wakeup (the safe direction: a
        # cancelled watch never fires)
        assert bool(fired) == (100 + cancel_delay > lands_at)
        assert watch.cancel() == 0          # idempotent either way

    @given(addr=ADDRS, writes=st.integers(min_value=1, max_value=4),
           model=MODELS)
    @settings(max_examples=40, deadline=None)
    def test_rearm_after_fire_sees_the_next_write(self, addr, writes, model):
        """Re-arming after each wakeup (the subscribe discipline, and
        what a looping mwait-er does) observes every write exactly
        once, under every model."""
        engine = Engine()
        bus = _bus(model, engine)
        seen = []
        bus.subscribe(addr, seen.append)
        for index in range(writes):
            engine.at(100 * (index + 1), bus.notify, addr, index, "w")
        engine.run()
        assert [info["value"] for info in seen] == list(range(writes))
