"""Tests for the TLB model."""

import pytest

from repro.errors import ConfigError
from repro.mem.tlb import PAGE_BYTES, Tlb


class TestTranslate:
    def test_first_access_walks(self):
        tlb = Tlb(walk_cycles=100, hit_cycles=1)
        assert tlb.translate(0x1000) == 101
        assert tlb.misses == 1

    def test_second_access_hits(self):
        tlb = Tlb(walk_cycles=100, hit_cycles=1)
        tlb.translate(0x1000)
        assert tlb.translate(0x1008) == 1  # same page
        assert tlb.hits == 1

    def test_page_granularity(self):
        tlb = Tlb()
        tlb.translate(0)
        assert tlb.contains(PAGE_BYTES - 8)
        assert not tlb.contains(PAGE_BYTES)

    def test_lru_eviction(self):
        tlb = Tlb(entries=4, ways=4)  # one set
        for page in range(4):
            tlb.translate(page * PAGE_BYTES)
        tlb.translate(0)  # refresh page 0
        tlb.translate(4 * PAGE_BYTES)  # evicts LRU = page 1
        assert tlb.contains(0)
        assert not tlb.contains(1 * PAGE_BYTES)

    def test_hit_rate(self):
        tlb = Tlb()
        tlb.translate(0)
        tlb.translate(8)
        tlb.translate(16)
        assert tlb.hit_rate == pytest.approx(2 / 3)


class TestWarmPinFlush:
    def test_warm_preloads_range(self):
        tlb = Tlb()
        tlb.warm(0, 3 * PAGE_BYTES)
        assert tlb.translate(2 * PAGE_BYTES) == tlb.hit_cycles

    def test_pin_survives_thrash(self):
        tlb = Tlb(entries=8, ways=4)
        tlb.pin(0, PAGE_BYTES)
        for page in range(1, 64):
            tlb.translate(page * PAGE_BYTES)
        assert tlb.contains(0)

    def test_flush_spares_pinned(self):
        tlb = Tlb()
        tlb.pin(0, PAGE_BYTES)
        tlb.warm(PAGE_BYTES, PAGE_BYTES)
        tlb.flush()
        assert tlb.contains(0)
        assert not tlb.contains(PAGE_BYTES)

    def test_unpin_then_flush_drops(self):
        tlb = Tlb()
        tlb.pin(0, PAGE_BYTES)
        tlb.unpin(0, PAGE_BYTES)
        tlb.flush()
        assert not tlb.contains(0)

    def test_fully_pinned_set_bypasses(self):
        tlb = Tlb(entries=4, ways=4)
        for page in range(4):
            tlb.pin(page * PAGE_BYTES, PAGE_BYTES)
        before = tlb.bypasses
        tlb.translate(4 * PAGE_BYTES)
        assert tlb.bypasses == before + 1


class TestWorkingSetWalk:
    def test_cold_vs_warm_walk(self):
        tlb = Tlb(walk_cycles=100)
        cold = tlb.walk_working_set(0, 4 * PAGE_BYTES)
        warm = tlb.walk_working_set(0, 4 * PAGE_BYTES)
        assert cold > warm
        # 4 pages walked once, the rest hits
        accesses = 4 * PAGE_BYTES // 64
        assert cold == accesses * tlb.hit_cycles + 4 * tlb.walk_cycles

    def test_thrash_shape(self):
        # a working set larger than the TLB never stops missing
        tlb = Tlb(entries=8, ways=4, walk_cycles=100)
        big = 64 * PAGE_BYTES
        first = tlb.walk_working_set(0, big, stride=PAGE_BYTES)
        second = tlb.walk_working_set(0, big, stride=PAGE_BYTES)
        assert second == first  # no reuse survives


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            Tlb(entries=10, ways=4)

    def test_bad_page_size(self):
        with pytest.raises(ConfigError):
            Tlb(page_bytes=0)
