"""Tests for ArchState register access semantics."""

import pytest

from repro.arch import ArchState
from repro.arch.registers import RegisterClass
from repro.errors import IsaError


def test_initial_state_is_zeroed_user_mode():
    state = ArchState()
    assert state.read("r0") == 0
    assert state.read("pc") == 0
    assert state.priv == 0
    assert not state.supervisor


def test_supervisor_construction():
    assert ArchState(supervisor=True).supervisor


def test_gpr_read_write_roundtrip():
    state = ArchState()
    state.write("r5", 1234)
    assert state.read("r5") == 1234
    assert state.read("r4") == 0


def test_control_register_access():
    state = ArchState()
    state.write("edp", 0x8000)
    state.write("tdtr", 0x9000)
    assert state.read("edp") == 0x8000
    assert state.read("tdtr") == 0x9000


def test_priv_write_normalizes_to_bool():
    state = ArchState()
    state.write("priv", 42)
    assert state.read("priv") == 1
    state.write("priv", 0)
    assert state.read("priv") == 0


def test_unknown_register_raises():
    state = ArchState()
    with pytest.raises(IsaError):
        state.read("xyzzy")
    with pytest.raises(IsaError):
        state.write("r99", 1)


def test_vector_write_sets_dirty_and_grows_footprint():
    state = ArchState()
    assert not state.vector_dirty
    assert state.footprint_bytes() == 272
    state.write("v3", 7)
    assert state.vector_dirty
    assert state.footprint_bytes() == 784


def test_plain_writes_do_not_dirty_vector_state():
    state = ArchState()
    state.write("r1", 1)
    state.write("pc", 100)
    assert state.footprint_bytes() == 272


def test_snapshot_roundtrip():
    state = ArchState()
    state.write("r2", 5)
    state.write("pc", 64)
    state.write("edp", 0x100)
    snap = state.snapshot()
    other = ArchState()
    other.load_snapshot(snap)
    assert other.read("r2") == 5
    assert other.read("pc") == 64
    assert other.read("edp") == 0x100


def test_reset_clears_and_sets_pc():
    state = ArchState()
    state.write("r1", 9)
    state.write("v1", 9)
    state.reset(pc=0x40, supervisor=True)
    assert state.read("r1") == 0
    assert state.read("pc") == 0x40
    assert state.supervisor
    assert not state.vector_dirty


def test_register_class_lookup():
    state = ArchState()
    assert state.register_class("r0") is RegisterClass.GENERAL
    assert state.register_class("pc") is RegisterClass.PC
    assert state.register_class("tdtr") is RegisterClass.PRIVILEGED
    with pytest.raises(IsaError):
        state.register_class("bogus")
