"""Tests for the cycle-attribution profiler.

The load-bearing invariant: every core's buckets sum exactly to
``engine.now`` -- on unit-level ledgers and on every registered
experiment end to end.
"""

import pytest

from repro.errors import ConfigError
from repro.obs.profile import BUCKETS, CoreProfile, Profiler


class TestCoreProfile:
    def test_pend_settle_attributes_interval(self):
        profile = CoreProfile(0)
        profile.pend("stall", 10)
        profile.settle(25)
        assert profile.buckets["stall"] == 15

    def test_settle_without_pend_is_noop(self):
        profile = CoreProfile(0)
        profile.settle(100)
        assert sum(profile.buckets.values()) == 0

    def test_charge_direct(self):
        profile = CoreProfile(0)
        profile.charge("fastforward", 500)
        assert profile.buckets["fastforward"] == 500

    def test_snapshot_folds_pending_and_fills_idle(self):
        profile = CoreProfile(0)
        profile.pend("issue", 0)
        profile.settle(30)
        profile.pend("mwait", 30)  # still waiting when the run stops
        snap = profile.snapshot(100)
        assert snap["issue"] == 30
        assert snap["mwait"] == 70
        assert snap["idle"] == 0
        assert snap["total"] == 100
        assert sum(snap[b] for b in BUCKETS) == 100

    def test_snapshot_remainder_is_idle(self):
        profile = CoreProfile(0)
        profile.charge("issue", 40)
        snap = profile.snapshot(100)
        assert snap["idle"] == 60
        assert sum(snap[b] for b in BUCKETS) == snap["total"] == 100

    def test_over_attribution_raises(self):
        profile = CoreProfile(3)
        profile.charge("issue", 101)
        with pytest.raises(ConfigError):
            profile.snapshot(100)

    def test_accounted_includes_pending(self):
        profile = CoreProfile(0)
        profile.charge("issue", 10)
        profile.pend("stall", 10)
        assert profile.accounted(35) == 35


class TestProfiler:
    def test_cores_created_on_touch(self):
        profiler = Profiler()
        profiler.core(2).charge("issue", 5)
        profiler.core(0).charge("idle", 5)
        snap = profiler.snapshot(10)
        assert list(snap) == ["core0", "core2"]
        assert snap["core2"]["issue"] == 5


class TestExperimentsSumExactly:
    """Acceptance criterion: on every registered experiment, every
    core's attribution sums exactly to its machine's engine.now."""

    def experiment_ids(self):
        from repro.experiments import all_experiments
        return [e.experiment_id for e in all_experiments()]

    @pytest.mark.parametrize("experiment_id", [
        f"E{n:02d}" for n in range(1, 19)])
    def test_buckets_sum_to_engine_now(self, experiment_id):
        import repro.obs as obs
        from repro.experiments import get_experiment

        experiment = get_experiment(experiment_id)
        with obs.session(experiment_id) as sess:
            experiment.run(quick=True)
        # analytic / queueing-only experiments build no Machine; the
        # invariant is then vacuous and covered by the machines they
        # do build in the E01/E02/... cases
        for machine in sess.machines:
            now = machine.engine.now
            # snapshot() itself raises on over-attribution; assert the
            # exact-sum side too
            for buckets in machine.obs.profiler.snapshot(now).values():
                assert sum(buckets[b] for b in BUCKETS) == now
                assert buckets["total"] == now

    def test_some_experiments_do_build_machines(self):
        import repro.obs as obs
        from repro.experiments import get_experiment

        with obs.session("E02") as sess:
            get_experiment("E02").run(quick=True)
        assert sess.machines
        assert any(profile.cores
                   for machine in sess.machines
                   for profile in [machine.obs.profiler])

    def test_registry_covers_all_eighteen(self):
        assert self.experiment_ids() == [
            f"E{n:02d}" for n in range(1, 19)]
