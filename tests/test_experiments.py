"""Integration tests: every experiment runs (quick mode) and reproduces
the paper's shape -- orderings, crossovers, and exact constants."""

import pytest

from repro.analysis.report import Verdict
from repro.errors import ConfigError
from repro.experiments import all_experiments, get_experiment
from repro.experiments.registry import register


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = [e.experiment_id for e in all_experiments()]
        assert ids == [f"E{i:02d}" for i in range(1, 19)]

    def test_lookup_by_id(self):
        exp = get_experiment("E05")
        assert "VM-exit" in exp.title

    def test_unknown_id_lists_known(self):
        with pytest.raises(ConfigError) as err:
            get_experiment("E99")
        assert "E01" in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register("E01", "dup", "nowhere")(lambda **kw: None)

    def test_every_experiment_has_anchor(self):
        for exp in all_experiments():
            assert "Section" in exp.paper_anchor or "Table" in exp.paper_anchor


@pytest.fixture(scope="module")
def results():
    """Run every experiment once in quick mode; shared across tests."""
    return {e.experiment_id: e.run(quick=True) for e in all_experiments()}


class TestAllExperiments:
    def test_no_refuted_claims(self, results):
        for eid, result in results.items():
            refuted = [c.claim for c in result.claims
                       if c.verdict is Verdict.REFUTED]
            assert not refuted, f"{eid} refuted: {refuted}"

    def test_every_experiment_has_tables_and_claims(self, results):
        for eid, result in results.items():
            assert result.tables, f"{eid} produced no tables"
            assert result.claims, f"{eid} produced no claims"

    def test_renders_are_nonempty(self, results):
        for result in results.values():
            assert len(result.render()) > 100
            assert result.render_markdown().startswith("###")


class TestE01Shape:
    def test_table1_outcomes_match_permissions(self, results):
        observed = results["E01"].series("observed")
        assert observed[0x0] == {"start": True, "stop": False,
                                 "modify_some": False, "modify_most": False}
        assert observed[0x2] == {"start": True, "stop": True,
                                 "modify_some": True, "modify_most": True}
        assert observed[0x3]["modify_most"] is False
        assert not any(observed[0x1].values())


class TestE02Shape:
    def test_hw_dispatch_order_of_magnitude_faster(self, results):
        data = results["E02"].data
        assert data["speedup"] > 10

    def test_isa_and_model_agree(self, results):
        data = results["E02"].data
        assert 0.2 * data["hw_mean"] <= data["isa_mean"] \
            <= 5 * data["hw_mean"]


class TestE03Shape:
    def test_mwait_latency_tracks_polling(self, results):
        series = results["E03"].series("series")
        for load in results["E03"].series("loads"):
            assert series["mwait"][load]["p50"] \
                <= series["polling"][load]["p50"] + 1_700

    def test_polling_wastes_most(self, results):
        series = results["E03"].series("series")
        load = results["E03"].series("loads")[0]
        assert series["polling"][load]["wasted_frac"] > 0.5
        assert series["mwait"][load]["wasted_frac"] < 0.05


class TestE04Shape:
    def test_hw_path_lowest_overhead(self, results):
        series = results["E04"].series("series")
        for work, cell in series["hw-thread"].items():
            assert cell["overhead_frac"] < series["sync"][work]["overhead_frac"]


class TestE05Shape:
    def test_slowdown_ordering_at_every_interval(self, results):
        series = results["E05"].series("series")
        for interval in series["in-thread"]:
            hw = series["hw-thread"][interval]["slowdown"]
            sx = series["splitx"][interval]["slowdown"]
            it = series["in-thread"][interval]["slowdown"]
            assert hw <= sx <= it

    def test_splitx_sharing_degrades(self, results):
        sharing = results["E05"].series("sharing")
        counts = sorted(sharing)
        assert sharing[counts[-1]]["splitx"] >= sharing[counts[0]]["splitx"]
        # hw design is flat in guest count
        assert sharing[counts[-1]]["hw"] == pytest.approx(
            sharing[counts[0]]["hw"], rel=0.01)


class TestE06Shape:
    def test_fp_penalty_only_on_sync(self, results):
        cells = results["E06"].series("cells")
        assert cells["sync"]["fp"] > cells["sync"]["base"]
        assert cells["hw-thread"]["fp"] == cells["hw-thread"]["base"]


class TestE07Shape:
    def test_direct_start_rtt_two_orders_smaller(self, results):
        rtt = results["E07"].series("rtt")
        assert rtt["scheduler"] / rtt["direct-start"] > 50


class TestE08Shape:
    def test_untrusted_hv_no_privilege(self, results):
        outcome = results["E08"].series("outcome")
        assert outcome.hv_ran_privileged is False

    def test_matrix_non_hierarchical(self, results):
        matrix = results["E08"].series("matrix")
        assert matrix["b_stopped_a"] and matrix["c_stopped_b"]
        assert not matrix["c_stopped_a"]


class TestE09Shape:
    def test_sw_threads_worst_at_high_load(self, results):
        series = results["E09"].series("load_series")
        top = max(series["hw-threads"])
        assert (series["sw-threads"][top]["p99"]
                >= series["hw-threads"][top]["p99"])


class TestE10Shape:
    def test_paper_constants(self, results):
        data = results["E10"].data
        assert data["rf_full"] == 83
        assert data["chip_bytes"] == 6400 * 1024

    def test_tiers_fill_in_order(self, results):
        occupancy = results["E10"].series("occupancy")
        assert occupancy["rf"] > 0
        assert occupancy["l3"] >= 0


class TestE11Shape:
    def test_tier_latencies_ordered(self, results):
        measured = results["E11"].series("measured")
        assert measured["rf"] < measured["l2"] < measured["l3"]

    def test_sw_switch_dwarfs_hw_start(self, results):
        data = results["E11"].data
        assert data["sw_switch"] > 10 * data["measured"]["rf"]

    def test_pinning_helps(self, results):
        pinning = results["E11"].series("pinning")
        assert pinning["pinned"] < pinning["unpinned"]


class TestE12Shape:
    def test_ps_wins_at_high_scv(self, results):
        series = results["E12"].series("series")
        high = max(series["ps"])
        assert series["ps"][high]["p99"] < series["fifo"][high]["p99"]

    def test_sw_rr_pays_for_fine_quanta(self, results):
        ablation = results["E12"].series("ablation")
        fine = min(ablation)
        assert ablation[fine]["sw"]["p99"] > ablation[fine]["hw"]["p99"]
        assert ablation[fine]["sw"]["overhead"] > 0


class TestE14Shape:
    def test_ratio_grows_with_node_count(self, results):
        tail = results["E14"].series("tail")
        ratios = [tail[n]["ratio"]
                  for n in results["E14"].series("node_counts")]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))

    def test_deep_fanout_amplifies_past_2x(self, results):
        tail = results["E14"].series("tail")
        for cell in tail.values():
            if cell["fanout"] >= 8:
                assert cell["ratio"] > 2.0

    def test_every_cell_conserved(self, results):
        tail = results["E14"].series("tail")
        assert all(cell["conserved"] for cell in tail.values())

    def test_fan_in_tax_hits_only_sw(self, results):
        tax = results["E14"].series("tax")
        counts = results["E14"].series("node_counts")
        sw = [tax[n]["sw_util"] for n in counts]
        assert all(b > a for a, b in zip(sw, sw[1:]))
        hw = {tax[n]["hw_util"] for n in counts}
        assert len(hw) == 1  # flat: no crowd term

    def test_no_policy_recovers_hw(self, results):
        policies = results["E14"].series("policies")
        for cell in policies.values():
            assert cell["sw-threads"] > cell["hw-threads"]

    def test_hedging_masks_drops(self, results):
        hedge = results["E14"].series("hedge")
        assert hedge["on"]["dropped"] < hedge["off"]["dropped"]
        assert hedge["on"]["hedges"] > 0


class TestE15Shape:
    def test_backends_agree_within_2x(self, results):
        assert results["E15"].series("worst_p99_deviation") <= 2.0

    def test_every_cell_ran_both_backends(self, results):
        cells = results["E15"].series("cells")
        for nodes in results["E15"].series("node_counts"):
            for design in results["E15"].series("designs"):
                for backend in ("model", "isa"):
                    cell = cells[nodes][design][backend]
                    assert cell["completed"] > 0
                    assert cell["conserved"]

    def test_sw_tax_ordering_survives_the_jump(self, results):
        ratios = results["E15"].series("sw_hw_ratios")
        assert all(r > 1.0 for r in ratios["model"])
        assert all(r > 1.0 for r in ratios["isa"])

    def test_all_claims_supported(self, results):
        assert results["E15"].all_supported()


class TestE16Shape:
    def test_conservation_exact_everywhere(self, results):
        conservation = results["E16"].series("conservation")
        assert conservation["checked"] > 0
        assert conservation["violations"] == 0

    def test_ratio_ordering_reproduces_e14(self, results):
        scale = results["E16"].series("scale")
        ratios = [scale[n]["ratio"]
                  for n in results["E16"].series("node_counts")]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))

    def test_tax_plus_queue_dominates_sw_tail(self, results):
        scale = results["E16"].series("scale")
        for nodes, cell in scale.items():
            assert cell["sw_taxq_p99"] > cell["hw_taxq_p99"]
            if nodes >= 8:
                assert cell["sw_taxq_p99"] > cell["sw_taxq_p50"]

    def test_sharded_spans_byte_identical(self, results):
        assert results["E16"].series("sharding_identical") is True

    def test_publishes_span_exemplars_per_design(self, results):
        exemplars = results["E16"].series("span_exemplars")
        assert set(exemplars) == {"hw-threads", "sw-threads",
                                  "event-loop"}
        from repro.obs.spans import critical_path
        for trees in exemplars.values():
            assert trees
            for tree in trees:
                path = critical_path(tree)
                assert sum(path.values()) == tree["latency"]

    def test_isa_tax_lands_on_sw_only(self, results):
        isa = results["E16"].series("isa")
        assert isa["sw-threads"]["p99"]["tax_share"] \
            > isa["hw-threads"]["p99"]["tax_share"]


class TestE17Shape:
    def test_last_wake_monotone_in_sharers(self, results):
        sweep = results["E17"].series("sharer_sweep")
        last = [row["last_wake"] for row in sweep]
        assert all(a < b for a, b in zip(last, last[1:]))

    def test_first_wake_flat_in_sharers(self, results):
        # the first forward leaves the directory at index 0 regardless
        # of how many sharers queue behind it
        sweep = results["E17"].series("sharer_sweep")
        first = [row["first_wake"] for row in sweep]
        assert len(set(first)) == 1

    def test_writer_pays_per_sharer(self, results):
        from repro.arch.costs import CostModel
        costs = CostModel()
        for row in results["E17"].series("sharer_sweep"):
            assert row["writer_cycles"] == (
                costs.dir_inval_base_cycles
                + costs.dir_inval_per_sharer_cycles * row["sharers"])

    def test_remote_mwait_beats_callback(self, results):
        for row in results["E17"].series("remote_mwait"):
            assert row["rdma_p50"] < row["callback_p50"]
            assert row["rdma_p99"] < row["callback_p99"]
            assert row["callback_tax_p50"] / row["rdma_tax_p50"] >= 10

    def test_p50_gap_is_the_transition_tax(self, results):
        overhead = results["E17"].series("sw_transition_overhead")
        for row in results["E17"].series("remote_mwait"):
            gap = row["callback_p50"] - row["rdma_p50"]
            assert 0.8 * overhead <= gap <= 1.1 * overhead

    def test_tdt_amplification_grows_with_fanout(self, results):
        rows = results["E17"].series("tdt_amplification")
        amps = [row["amplification"] for row in rows]
        assert all(a < b for a, b in zip(amps, amps[1:]))
        assert amps[-1] > 10 * amps[0] / rows[-1]["fanout"]

    def test_flat_tdt_bill_is_one_rewalk(self, results):
        from repro.arch.costs import CostModel
        costs = CostModel()
        rewalk = costs.tdt_miss_cycles - costs.tdt_lookup_cycles
        for row in results["E17"].series("tdt_amplification"):
            assert row["flat_cycles_per_invtid"] == rewalk

    def test_all_claims_supported(self, results):
        assert results["E17"].all_supported()


class TestEngineQueueIdentity:
    """The two engine backing stores must be observationally equivalent:
    the queueing-heavy experiment tables (single server, cluster, ISA
    backend pair) have to come out byte-identical whichever store the
    REPRO_ENGINE_QUEUE switch selects."""

    @pytest.mark.parametrize("eid", ["E09", "E14", "E15"])
    def test_tables_identical_across_queue_modes(self, eid, monkeypatch):
        renders = {}
        for mode in ("heap", "wheel"):
            monkeypatch.setenv("REPRO_ENGINE_QUEUE", mode)
            renders[mode] = get_experiment(eid).run(quick=True).render()
        assert renders["heap"] == renders["wheel"]
