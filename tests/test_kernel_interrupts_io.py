"""Tests for interrupt delivery paths and the three I/O server designs."""

import pytest

from repro.arch.costs import CostModel
from repro.devices import Nic
from repro.errors import ConfigError
from repro.kernel import (
    HwThreadDispatch,
    IdtInterruptPath,
    InterruptIoServer,
    MwaitIoServer,
    PollingIoServer,
)
from repro.machine import build_machine
from repro.mem.memory import Memory
from repro.sim.engine import Engine
from repro.workloads import DeterministicArrivals


class TestIdtInterruptPath:
    def test_delivery_latency_matches_chain(self):
        engine = Engine()
        costs = CostModel()
        path = IdtInterruptPath(engine, costs)
        path.raise_irq(0)
        engine.run()
        expected = costs.baseline_io_wakeup_cycles()
        assert path.recorder.samples == [expected]

    def test_cross_core_adds_ipi(self):
        engine = Engine()
        costs = CostModel()
        path = IdtInterruptPath(engine, costs, cross_core=True)
        path.raise_irq(0)
        engine.run()
        assert path.recorder.samples[0] \
            == costs.baseline_io_wakeup_cycles(cross_core=True)

    def test_no_thread_wakeup_variant(self):
        engine = Engine()
        costs = CostModel()
        path = IdtInterruptPath(engine, costs, wakes_blocked_thread=False)
        path.raise_irq(0)
        engine.run()
        assert path.recorder.samples[0] \
            == costs.irq_entry_cycles + costs.irq_exit_cycles

    def test_handler_invoked_with_event_id(self):
        engine = Engine()
        events = []
        path = IdtInterruptPath(engine, handler=events.append)
        path.raise_irq(42)
        engine.run()
        assert events == [42]

    def test_accounting_tracks_charges(self):
        engine = Engine()
        path = IdtInterruptPath(engine)
        path.raise_irq(0)
        path.raise_irq(1)
        engine.run()
        assert path.accounting.irq_entries == 2
        assert path.accounting.scheduler_invocations == 2


class TestHwThreadDispatch:
    def test_wakeup_latency_matches_model(self):
        engine = Engine()
        memory = Memory()
        word = memory.alloc("evt", 8)
        costs = CostModel()
        path = HwThreadDispatch(engine, memory, word.base, costs)
        engine.at(10, memory.store, word.base, 1, "dev")
        engine.run()
        assert path.recorder.samples == [costs.hw_wakeup_cycles("rf")]

    def test_tier_changes_latency(self):
        costs = CostModel()
        latencies = {}
        for tier in ("rf", "l2", "l3"):
            engine = Engine()
            memory = Memory()
            word = memory.alloc("evt", 8)
            path = HwThreadDispatch(engine, memory, word.base, costs,
                                    tier=tier)
            engine.at(5, memory.store, word.base, 1, "dev")
            engine.run()
            latencies[tier] = path.recorder.samples[0]
        assert latencies["rf"] < latencies["l2"] < latencies["l3"]

    def test_busy_handler_coalesces_wakeups(self):
        engine = Engine()
        memory = Memory()
        word = memory.alloc("evt", 8)
        path = HwThreadDispatch(engine, memory, word.base,
                                handler_cycles=5_000)
        engine.at(10, memory.store, word.base, 1, "dev")
        engine.at(20, memory.store, word.base, 2, "dev")
        engine.run()
        assert path.events_delivered == 2
        # the second event waits for the handler, not a second wakeup
        assert path.recorder.samples[1] >= 4_000

    def test_rejects_bad_tier(self):
        with pytest.raises(ConfigError):
            HwThreadDispatch(Engine(), Memory(), 0x1000, tier="dram")

    def test_vs_idt_speedup_order_of_magnitude(self):
        costs = CostModel()
        assert (costs.baseline_io_wakeup_cycles()
                / costs.hw_wakeup_cycles("rf")) > 50


def drive_server(server_cls, period=2000, packets=20, service=400, **kwargs):
    machine = build_machine()
    nic = Nic(machine.engine, machine.memory, machine.dma)
    server = server_cls(machine.engine, machine.costs, **kwargs)

    def on_tail(info):
        while True:
            pkt = nic.rx.consume()
            if pkt is None:
                return
            server.deliver(pkt["seq"], service)

    machine.memory.watch_bus.subscribe(nic.rx.tail_addr, on_tail)
    nic.start_rx(DeterministicArrivals(period),
                 machine.rngs.stream("rx"), max_packets=packets)
    machine.run(until=packets * period * 10 + 1_000_000)
    return machine, server


class TestIoServers:
    def test_all_designs_serve_every_packet(self):
        for cls in (InterruptIoServer, PollingIoServer, MwaitIoServer):
            _machine, server = drive_server(cls)
            assert server.completed == 20, cls.__name__

    def test_interrupt_latency_includes_wakeup_chain(self):
        # period far above the wakeup+service cost: every packet finds
        # the server idle and pays the full chain
        costs = CostModel()
        _machine, server = drive_server(InterruptIoServer, period=10_000)
        stats = server.stats()
        assert stats.p50_latency >= costs.baseline_io_wakeup_cycles()

    def test_mwait_latency_close_to_polling(self):
        _machine, mwait = drive_server(MwaitIoServer)
        _machine, polling = drive_server(PollingIoServer)
        assert mwait.stats().p50_latency \
            <= polling.stats().p50_latency + CostModel().hw_wakeup_cycles("rf")

    def test_polling_wastes_idle_cycles(self):
        machine, server = drive_server(PollingIoServer)
        server.finalize()
        stats = server.stats()
        # nearly all non-service time was burned spinning
        assert stats.wasted_cycles > 0.8 * (machine.engine.now
                                            - stats.busy_cycles)

    def test_polling_finalize_idempotent(self):
        machine, server = drive_server(PollingIoServer)
        server.finalize()
        once = server.stats().wasted_cycles
        server.finalize()
        assert server.stats().wasted_cycles == once

    def test_mwait_waste_is_tiny(self):
        machine, server = drive_server(MwaitIoServer)
        assert server.stats().wasted_cycles < 0.01 * machine.engine.now

    def test_queued_packets_skip_wakeup_cost(self):
        # burst of simultaneous packets: one wakeup, N services
        engine = Engine()
        server = MwaitIoServer(engine)
        for i in range(5):
            engine.at(100, server.deliver, i, 300)
        engine.run()
        assert server.wakeups == 1
        assert server.completed == 5

    def test_deliver_rejects_zero_service(self):
        server = MwaitIoServer(Engine())
        with pytest.raises(ConfigError):
            server.deliver(0, 0)

    def test_polling_rejects_zero_iteration(self):
        with pytest.raises(ConfigError):
            PollingIoServer(Engine(), poll_iteration_cycles=0)

    def test_mwait_rejects_bad_tier(self):
        with pytest.raises(ConfigError):
            MwaitIoServer(Engine(), tier="tape")
