"""Tests for machine-level statistics reporting."""

from repro.machine import build_machine


def run_small_machine(cores=1):
    machine = build_machine(cores=cores)
    flag = machine.alloc("flag", 64)
    machine.load_asm(0, """
        movi r1, FLAG
        monitor r1
        mwait
        halt
    """, symbols={"FLAG": flag.base}, supervisor=True)
    machine.boot(0)
    machine.engine.at(500, machine.memory.store, flag.base, 1, "dev")
    machine.run(until=10_000)
    return machine


class TestStats:
    def test_structure(self):
        machine = run_small_machine()
        stats = machine.stats()
        assert set(stats) == {"time", "events", "cores", "memory",
                              "watch_bus", "migrations", "metrics"}
        assert len(stats["cores"]) == 1
        assert stats["metrics"] is None  # not instrumented

    def test_counts_reflect_activity(self):
        machine = run_small_machine()
        core = machine.stats()["cores"][0]
        assert core["instructions"] >= 4
        assert core["wakeups"] == 1
        assert core["exceptions"] == 0
        assert not core["halted"]

    def test_idle_cycles_accumulate_while_waiting(self):
        machine = run_small_machine()
        core = machine.stats()["cores"][0]
        assert core["idle_cycles"] > 0  # the mwait window

    def test_memory_and_watch_counters(self):
        machine = run_small_machine()
        stats = machine.stats()
        assert stats["memory"]["stores"] >= 1
        assert stats["watch_bus"]["triggers"] >= 1

    def test_multi_core_one_entry_each(self):
        machine = build_machine(cores=3)
        assert len(machine.stats()["cores"]) == 3

    def test_storage_occupancy_included(self):
        machine = run_small_machine()
        storage = machine.stats()["cores"][0]["storage"]
        assert set(storage) == {"rf", "l2", "l3"}

    def test_report_renders(self):
        machine = run_small_machine()
        text = machine.report()
        assert "instructions" in text
        assert "machine @" in text
