"""Unit and integration tests for the repro.cluster subsystem."""

import random

import pytest

from repro.arch.costs import CostModel
from repro.cluster import (
    DESIGNS,
    ClusterConfig,
    ClusterNode,
    ClusterService,
    Fabric,
    LinkSpec,
    LoadBalancer,
    build_cluster,
    run_cluster,
    scaled,
)
from repro.cluster.balancer import POLICIES
from repro.distributed.rpc import EVENT_LOOP, HW_THREADS, SW_THREADS
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


# ----------------------------------------------------------------------
class TestLinkSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LinkSpec(base_cycles=0)
        with pytest.raises(ConfigError):
            LinkSpec(jitter_mean_cycles=-1.0)
        with pytest.raises(ConfigError):
            LinkSpec(drop_prob=1.0)

    def test_sample_delay_at_least_one_cycle(self):
        spec = LinkSpec(base_cycles=1, jitter_mean_cycles=0.0)
        assert spec.sample_delay(random.Random(0)) == 1

    def test_jitter_adds_to_base(self):
        spec = LinkSpec(base_cycles=1_000, jitter_mean_cycles=500.0)
        rng = random.Random(7)
        draws = [spec.sample_delay(rng) for _ in range(200)]
        assert all(d >= 1_000 for d in draws)
        assert len(set(draws)) > 1


class TestFabric:
    def _fabric(self, **link):
        engine = Engine()
        return engine, Fabric(engine, random.Random(1),
                              default_link=LinkSpec(**link))

    def test_delivers_after_sampled_delay(self):
        engine, fabric = self._fabric(jitter_mean_cycles=0.0)
        seen = []
        assert fabric.send("client", "node0", seen.append, 42) is True
        assert fabric.in_flight == 1
        engine.run_until_idle()
        assert seen == [42]
        assert fabric.in_flight == 0
        assert (fabric.sent, fabric.delivered, fabric.dropped) == (1, 1, 0)

    def test_drop_returns_false_synchronously(self):
        engine, fabric = self._fabric(drop_prob=0.999999)
        seen = []
        assert fabric.send("a", "b", seen.append, 1) is False
        engine.run_until_idle()
        assert seen == []
        assert fabric.dropped == 1

    def test_per_link_override(self):
        engine, fabric = self._fabric(jitter_mean_cycles=0.0)
        fabric.set_link("a", "b", LinkSpec(base_cycles=9_999,
                                           jitter_mean_cycles=0.0))
        fabric.send("a", "b", lambda: None)
        assert engine.next_event_time() == 9_999
        assert fabric.link_for("b", "a") == fabric.default_link

    def test_mean_delay_counts_carried_only(self):
        _, fabric = self._fabric(jitter_mean_cycles=0.0)
        fabric.send("a", "b", lambda: None)
        assert fabric.mean_delay_cycles() == fabric.default_link.base_cycles


# ----------------------------------------------------------------------
def _nodes(engine, count, design=HW_THREADS, **kwargs):
    return [ClusterNode(engine, i, design, CostModel(), **kwargs)
            for i in range(count)]


class TestLoadBalancer:
    def test_unknown_policy_rejected(self):
        nodes = _nodes(Engine(), 2)
        with pytest.raises(ConfigError):
            LoadBalancer(nodes, "least-conns")

    def test_random_policies_need_rng(self):
        nodes = _nodes(Engine(), 2)
        for policy in ("random", "p2c"):
            with pytest.raises(ConfigError):
                LoadBalancer(nodes, policy)
        LoadBalancer(nodes, "jsq")  # stateless policies do not

    def test_round_robin_cycles(self):
        nodes = _nodes(Engine(), 3)
        balancer = LoadBalancer(nodes, "round-robin")
        picked = [balancer.pick().node_id for _ in range(6)]
        assert picked == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_excluded_without_desync(self):
        nodes = _nodes(Engine(), 3)
        balancer = LoadBalancer(nodes, "round-robin")
        assert balancer.pick(exclude=(nodes[0],)).node_id == 1
        assert balancer.pick().node_id == 2
        assert balancer.pick().node_id == 0

    def test_jsq_prefers_least_loaded_then_lowest_id(self):
        engine = Engine()
        nodes = _nodes(engine, 3)
        balancer = LoadBalancer(nodes, "jsq")
        nodes[0].offer(1, [100.0], 10)
        nodes[1].offer(2, [100.0], 10)
        assert balancer.pick().node_id == 2
        assert balancer.pick(exclude=(nodes[2],)).node_id == 0

    def test_p2c_picks_less_loaded_probe(self):
        engine = Engine()
        nodes = _nodes(engine, 2)
        balancer = LoadBalancer(nodes, "p2c", rng=random.Random(0))
        nodes[0].offer(1, [100.0], 10)
        # both nodes are always probed on a 2-node cluster
        assert balancer.pick().node_id == 1

    def test_exhausted_exclusion_falls_back_to_all(self):
        nodes = _nodes(Engine(), 2)
        balancer = LoadBalancer(nodes, "jsq")
        node = balancer.pick(exclude=tuple(nodes))
        assert node in nodes


# ----------------------------------------------------------------------
class TestClusterNode:
    def test_offer_runs_to_completion(self):
        engine = Engine()
        node = ClusterNode(engine, 0, HW_THREADS)
        done = []
        assert node.offer(1, [500.0, 500.0], 100,
                          on_done=lambda: done.append(engine.now))
        engine.run_until_idle()
        assert done and node.completed == 1
        assert node.conserved() and node.in_flight() == 0

    def test_queue_limit_sheds(self):
        engine = Engine()
        node = ClusterNode(engine, 0, HW_THREADS, queue_limit=1)
        assert node.offer(1, [10_000.0], 10)
        assert not node.offer(2, [10_000.0], 10)
        assert node.rejected == 1
        assert node.conserved()

    def test_conserved_mid_flight(self):
        engine = Engine()
        node = ClusterNode(engine, 0, SW_THREADS)
        for i in range(5):
            node.offer(i, [50_000.0], 10)
        engine.run(until=10_000)  # nothing has finished yet
        assert node.in_flight() == 5
        assert node.conserved()

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterNode(Engine(), -1, HW_THREADS)
        with pytest.raises(ConfigError):
            ClusterNode(Engine(), 0, HW_THREADS, queue_limit=0)


# ----------------------------------------------------------------------
def _service(config: ClusterConfig, seed: int = 1) -> ClusterService:
    return build_cluster(config, RngStreams(seed))


class TestClusterService:
    def test_fanout_cannot_exceed_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(nodes=2, fanout=3)

    def test_response_is_max_over_shards(self):
        config = ClusterConfig(nodes=4, fanout=4, requests=1,
                               segments=1, threads_per_peer=0,
                               link=LinkSpec(base_cycles=100,
                                             jitter_mean_cycles=0.0))
        service = _service(config)
        service.submit(1, [100.0, 100.0, 100.0, 50_000.0])
        service.engine.run_until_idle()
        assert service.completed == 1
        # latency dominated by the slow shard, not the fast three
        assert service.recorder.samples[0] > 50_000

    def test_wrong_shard_count_rejected(self):
        config = ClusterConfig(nodes=2, fanout=2)
        service = _service(config)
        with pytest.raises(ConfigError):
            service.submit(1, [100.0])

    def test_conservation_exact_after_lossy_run(self):
        config = ClusterConfig(nodes=4, fanout=4, requests=60,
                               load=0.4, queue_limit=4,
                               link=LinkSpec(drop_prob=0.05))
        result = run_cluster(config, seed=3)
        audit = result.service.conservation()
        assert audit["ok"], audit
        assert result.summary["dropped"] > 0  # loss actually exercised

    def test_hedging_revives_wire_dropped_shards(self):
        base = ClusterConfig(nodes=4, fanout=4, requests=80,
                             link=LinkSpec(drop_prob=0.05))
        plain = run_cluster(base, seed=5).summary
        hedged = run_cluster(scaled(base, hedge_after=16 * base.rtt_cycles),
                             seed=5).summary
        assert plain["dropped"] > 0
        assert hedged["dropped"] < plain["dropped"]
        assert hedged["hedges"] > 0
        assert hedged["conserved"]

    def test_merged_tracer_folds_all_nodes(self):
        config = ClusterConfig(nodes=3, fanout=2, requests=20)
        result = run_cluster(config, seed=2)
        counters = result.service.merged_tracer().counters
        admitted = sum(n.admitted for n in result.service.nodes)
        assert counters["cluster node admitted"] == admitted
        assert counters["cluster issued"] == 20


# ----------------------------------------------------------------------
class TestClusterConfig:
    def test_workload_label_is_design_independent(self):
        hw = ClusterConfig(nodes=4, design=DESIGNS["hw-threads"])
        sw = ClusterConfig(nodes=4, design=DESIGNS["sw-threads"])
        assert hw.workload_label() == sw.workload_label()
        assert hw.label() != sw.label()

    def test_mean_gap_offers_configured_load(self):
        config = ClusterConfig(nodes=4, fanout=2, load=0.5,
                               mean_service_cycles=10_000)
        gap = config.mean_gap_cycles()
        offered = config.fanout * config.mean_service_cycles / gap
        assert offered / config.nodes == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(nodes=0)
        with pytest.raises(ConfigError):
            ClusterConfig(load=0.0)
        with pytest.raises(ConfigError):
            ClusterConfig(requests=0)
        with pytest.raises(ConfigError):
            ClusterConfig(threads_per_peer=-1)


class TestDeterminism:
    CONFIG = ClusterConfig(nodes=4, fanout=2, requests=40, load=0.3,
                           link=LinkSpec(drop_prob=0.02))

    def test_same_seed_same_summary(self):
        first = run_cluster(self.CONFIG, seed=11).summary
        second = run_cluster(self.CONFIG, seed=11).summary
        assert first == second

    def test_different_seed_differs(self):
        first = run_cluster(self.CONFIG, seed=11).summary
        second = run_cluster(self.CONFIG, seed=12).summary
        assert first["p99"] != second["p99"]

    def test_global_rng_state_is_irrelevant(self):
        random.seed(1234)
        first = run_cluster(self.CONFIG, seed=11).summary
        random.seed(9999)
        for _ in range(100):
            random.random()
        second = run_cluster(self.CONFIG, seed=11).summary
        assert first == second

    def test_common_random_numbers_across_designs(self):
        """hw and sw clusters must face the identical offered workload:
        same arrivals, same placements, same per-shard service draws
        (the engine-time fingerprint of the *fabric* traffic differs
        only via completion times, so compare admission totals)."""
        per_design = {}
        for name in ("hw-threads", "sw-threads"):
            config = scaled(self.CONFIG, design=DESIGNS[name],
                            link=LinkSpec(jitter_mean_cycles=0.0))
            result = run_cluster(config, seed=7)
            per_design[name] = result.summary["issued"]
        assert per_design["hw-threads"] == per_design["sw-threads"]


# ----------------------------------------------------------------------
class TestCrowding:
    def test_sw_overhead_monotone_in_crowd(self):
        costs = CostModel()
        series = [SW_THREADS.transition_overhead_cycles(costs, crowd=c)
                  for c in (0, 8, 32, 64, 256)]
        assert all(b >= a for a, b in zip(series, series[1:]))
        assert series[-1] > series[0]

    def test_crowd_zero_matches_legacy_base(self):
        costs = CostModel()
        base = (costs.sw_switch_cycles + costs.scheduler_cycles
                + costs.sw_switch_cycles + costs.cache_pollution_cycles)
        assert SW_THREADS.transition_overhead_cycles(costs) == base
        assert SW_THREADS.transition_overhead_cycles(costs, crowd=0) == base

    def test_hw_and_event_loop_ignore_crowd(self):
        costs = CostModel()
        for design in (HW_THREADS, EVENT_LOOP):
            assert (design.transition_overhead_cycles(costs, crowd=0)
                    == design.transition_overhead_cycles(costs, crowd=512))

    def test_cache_pollution_term_caps(self):
        costs = CostModel()
        at_cap = SW_THREADS.transition_overhead_cycles(costs, crowd=64)
        past_cap = SW_THREADS.transition_overhead_cycles(costs, crowd=128)
        # only the log term still grows past the cap
        import math
        log_growth = (int(costs.scheduler_cycles * math.log2(1 + 128 / 8))
                      - int(costs.scheduler_cycles * math.log2(1 + 64 / 8)))
        assert past_cap - at_cap == log_growth

    def test_resident_pool_feeds_segment_overhead(self):
        from repro.distributed.rpc import RpcServerModel
        engine = Engine()
        costs = CostModel()
        quiet = RpcServerModel(engine, SW_THREADS, costs)
        crowded = RpcServerModel(engine, SW_THREADS, costs,
                                 resident_threads=64)
        assert quiet.segment_overhead_cycles() \
            == SW_THREADS.transition_overhead_cycles(costs)
        assert crowded.segment_overhead_cycles() \
            == SW_THREADS.transition_overhead_cycles(costs, crowd=64)

    def test_cluster_nodes_pay_more_at_scale(self):
        """The end-to-end mechanism E14 relies on: the same per-node
        load costs sw-threads more in a bigger cluster."""
        small = ClusterConfig(nodes=2, fanout=2, requests=60, load=0.1,
                              design=DESIGNS["sw-threads"],
                              mean_service_cycles=5_000, segments=4)
        big = scaled(small, nodes=16, fanout=8, requests=200)
        p99 = {config.nodes: run_cluster(config, seed=1).summary["p99"]
               for config in (small, big)}
        assert p99[16] > 2 * p99[2]
