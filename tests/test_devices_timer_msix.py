"""Tests for the APIC timer and MSI-X translation."""

import pytest

from repro.devices import ApicTimer, MsixTranslator
from repro.errors import ConfigError
from repro.mem.memory import Memory
from repro.sim.engine import Engine


def make_env():
    engine = Engine()
    memory = Memory()
    return engine, memory


class TestApicTimer:
    def test_counter_increments_per_tick(self):
        engine, memory = make_env()
        word = memory.alloc("ctr", 8)
        timer = ApicTimer(engine, memory, word.base, period_cycles=100,
                          max_ticks=5)
        timer.start()
        engine.run()
        assert memory.load(word.base) == 5
        assert timer.ticks == 5

    def test_tick_times_are_periodic(self):
        engine, memory = make_env()
        word = memory.alloc("ctr", 8)
        times = []
        memory.watch_bus.subscribe(word.base,
                                   lambda info: times.append(engine.now))
        ApicTimer(engine, memory, word.base, 250, max_ticks=4).start()
        engine.run()
        assert times == [250, 500, 750, 1000]

    def test_counter_write_wakes_monitor(self):
        # the paper's exact mechanism: a thread monitors the tick counter
        engine, memory = make_env()
        word = memory.alloc("ctr", 8)
        watch = memory.watch_bus.watch(word.base)
        fired = []
        watch.signal.add_waiter(lambda info: fired.append(info))
        ApicTimer(engine, memory, word.base, 10, max_ticks=1).start()
        engine.run()
        assert fired and fired[0]["source"].startswith("apic:")

    def test_stop_halts_ticking(self):
        engine, memory = make_env()
        word = memory.alloc("ctr", 8)
        timer = ApicTimer(engine, memory, word.base, 100)
        timer.start()
        engine.at(350, timer.stop)
        engine.run(until=2000)
        assert timer.ticks == 3

    def test_legacy_irq_called_alongside_write(self):
        engine, memory = make_env()
        word = memory.alloc("ctr", 8)
        irqs = []
        timer = ApicTimer(engine, memory, word.base, 100,
                          legacy_irq=irqs.append, max_ticks=3)
        timer.start()
        engine.run()
        assert irqs == [1, 2, 3]

    def test_double_start_rejected(self):
        engine, memory = make_env()
        word = memory.alloc("ctr", 8)
        timer = ApicTimer(engine, memory, word.base, 100)
        timer.start()
        with pytest.raises(ConfigError):
            timer.start()

    def test_bad_period_rejected(self):
        engine, memory = make_env()
        with pytest.raises(ConfigError):
            ApicTimer(engine, memory, 0, period_cycles=0)


class TestMsixTranslator:
    def test_translated_vector_writes_memory(self):
        _engine, memory = make_env()
        word = memory.alloc("vec9", 8)
        msix = MsixTranslator(memory)
        msix.map_vector(9, word.base)
        assert msix.raise_irq(9) is True
        assert msix.raise_irq(9) is True
        assert memory.load(word.base) == 2  # fetch-add: events counted

    def test_translation_wakes_watcher(self):
        _engine, memory = make_env()
        word = memory.alloc("vec1", 8)
        msix = MsixTranslator(memory)
        msix.map_vector(1, word.base)
        hits = []
        memory.watch_bus.watch(word.base).signal.add_waiter(hits.append)
        msix.raise_irq(1)
        assert hits and hits[0]["source"].startswith("msix:")

    def test_unmapped_falls_back_to_legacy(self):
        _engine, memory = make_env()
        legacy = []
        msix = MsixTranslator(memory, legacy_fallback=legacy.append)
        assert msix.raise_irq(5) is False
        assert legacy == [5]
        assert msix.fell_back == 1

    def test_unmapped_without_fallback_rejected(self):
        _engine, memory = make_env()
        msix = MsixTranslator(memory)
        with pytest.raises(ConfigError):
            msix.raise_irq(3)

    def test_unmap_restores_fallback(self):
        _engine, memory = make_env()
        word = memory.alloc("v", 8)
        legacy = []
        msix = MsixTranslator(memory, legacy_fallback=legacy.append)
        msix.map_vector(2, word.base)
        msix.raise_irq(2)
        msix.unmap_vector(2)
        msix.raise_irq(2)
        assert memory.load(word.base) == 1
        assert legacy == [2]

    def test_negative_vector_rejected(self):
        _engine, memory = make_env()
        with pytest.raises(ConfigError):
            MsixTranslator(memory).map_vector(-1, 0x1000)
