"""Tests for the instrumented evaluation runner and the obs CLI verbs.

The determinism contract: an instrumented evaluation produces
byte-identical metrics snapshots whether it runs serially or fanned
across worker processes (each experiment gets its own fresh obs session
either way).
"""

import json

import pytest

from repro.cli import main
from repro.experiments.parallel import run_instrumented

EXPERIMENTS = ["E03", "E10", "E14"]  # machine-based, analytic, cluster


class TestRunInstrumented:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_instrumented(EXPERIMENTS, quick=True, workers=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_instrumented(EXPERIMENTS, quick=True, workers=2)

    def test_results_match_serial(self, serial, parallel):
        serial_text = [r.render_markdown() for r in serial.results]
        parallel_text = [r.render_markdown() for r in parallel.results]
        assert serial_text == parallel_text

    def test_snapshots_byte_identical(self, serial, parallel):
        assert list(serial.snapshots) == EXPERIMENTS
        for experiment_id in EXPERIMENTS:
            assert (json.dumps(serial.snapshots[experiment_id],
                               sort_keys=True)
                    == json.dumps(parallel.snapshots[experiment_id],
                                  sort_keys=True))

    def test_tracers_merge_worker_counters(self, serial, parallel):
        assert serial.tracer.counters == parallel.tracer.counters

    def test_cluster_sources_land_in_snapshot(self, serial):
        counters = serial.snapshots["E14"]["metrics"]["counters"]
        for prefix in ("cluster.service", "cluster.node",
                       "cluster.fabric"):
            assert any(name.startswith(prefix) for name in counters), prefix

    def test_snapshot_content_sane(self, serial):
        snapshot = serial.snapshots["E03"]
        counters = snapshot["metrics"]["counters"]
        assert counters["engine.cycles"] > 0
        assert snapshot["machines"] > 0
        assert snapshot["timeline"]["spans"] > 0


class TestCliObsVerbs:
    def test_run_with_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs.export import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["run", "E10", "--quick",
                     "--trace", str(trace_path),
                     "--metrics", str(metrics_path)]) == 0
        validate_chrome_trace(json.loads(trace_path.read_text()))
        snapshot = json.loads(metrics_path.read_text())
        assert "metrics" in snapshot
        err = capsys.readouterr().err
        assert "trace written" in err
        assert "metrics snapshot written" in err

    def test_profile_verb_prints_buckets(self, capsys):
        assert main(["profile", "E10", "--quick"]) == 0
        out = capsys.readouterr().out
        for bucket in ("issue", "stall", "mwait", "fastforward",
                       "idle", "total"):
            assert bucket in out
        assert "attribution exact" in out

    def test_profile_unknown_id_fails(self, capsys):
        assert main(["profile", "E99"]) == 2

    def test_evaluate_metrics_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "metrics"
        assert main(["evaluate", "--quick", "--metrics",
                     str(out_dir)]) in (0, 1)
        written = sorted(p.name for p in out_dir.iterdir())
        assert written == [f"E{n:02d}-metrics.json"
                           for n in range(1, 19)]
        for path in out_dir.iterdir():
            snapshot = json.loads(path.read_text())
            assert "metrics" in snapshot
