"""Unit tests for processes, signals, and combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Engine, Signal, Timeout


def test_process_timeout_advances_clock():
    engine = Engine()
    times = []

    def body():
        yield 10
        times.append(engine.now)
        yield Timeout(5)
        times.append(engine.now)

    engine.spawn(body())
    engine.run()
    assert times == [10, 15]


def test_process_return_value_exposed_as_result():
    engine = Engine()

    def body():
        yield 1
        return 99

    proc = engine.spawn(body())
    engine.run()
    assert proc.result == 99
    assert not proc.alive


def test_join_returns_child_result():
    engine = Engine()
    got = []

    def child():
        yield 10
        return "done"

    def parent():
        value = yield engine.spawn(child())
        got.append((engine.now, value))

    engine.spawn(parent())
    engine.run()
    assert got == [(10, "done")]


def test_join_on_finished_process_resumes_immediately():
    engine = Engine()
    got = []

    def child():
        yield 1
        return 7

    child_proc = engine.spawn(child())

    def parent():
        yield 100  # child long done by now
        value = yield child_proc
        got.append(value)

    engine.spawn(parent())
    engine.run()
    assert got == [7]


def test_signal_wakes_waiter_with_value():
    engine = Engine()
    sig = Signal("s")
    got = []

    def waiter():
        value = yield sig
        got.append((engine.now, value))

    engine.spawn(waiter())
    engine.after(25, sig.fire, "payload")
    engine.run()
    assert got == [(25, "payload")]


def test_signal_broadcast_wakes_all_waiters():
    engine = Engine()
    sig = Signal()
    got = []

    def waiter(tag):
        yield sig
        got.append(tag)

    for tag in range(3):
        engine.spawn(waiter(tag))
    engine.after(5, sig.fire)
    engine.run()
    assert sorted(got) == [0, 1, 2]


def test_signal_is_edge_triggered():
    engine = Engine()
    sig = Signal()
    got = []

    def late_waiter():
        yield 50  # signal fires at t=10, we start waiting at t=50
        yield sig
        got.append(engine.now)

    engine.spawn(late_waiter())
    engine.after(10, sig.fire)
    engine.after(80, sig.fire)
    engine.run()
    assert got == [80]


def test_anyof_returns_first_completion():
    engine = Engine()
    sig = Signal()
    got = []

    def body():
        index, value = yield AnyOf([sig, Timeout(100)])
        got.append((engine.now, index, value))

    engine.spawn(body())
    engine.after(30, sig.fire, "fast")
    engine.run()
    assert got == [(30, 0, "fast")]
    # the losing timeout must not leave a stray wakeup
    assert engine.pending_events == 0


def test_anyof_timeout_wins():
    engine = Engine()
    sig = Signal()
    got = []

    def body():
        index, _ = yield AnyOf([sig, Timeout(100)])
        got.append((engine.now, index))

    engine.spawn(body())
    engine.run()
    assert got == [(100, 1)]


def test_allof_waits_for_everything():
    engine = Engine()
    got = []

    def body():
        values = yield AllOf([Timeout(10), Timeout(30), Timeout(20)])
        got.append((engine.now, values))

    engine.spawn(body())
    engine.run()
    assert got == [(30, [None, None, None])]


def test_kill_stops_process():
    engine = Engine()
    got = []

    def body():
        yield 10
        got.append("should not happen")

    proc = engine.spawn(body())
    engine.after(5, proc.kill)
    engine.run()
    assert got == []
    assert not proc.alive


def test_killed_waiter_does_not_consume_signal():
    engine = Engine()
    sig = Signal()
    got = []

    def victim():
        yield sig
        got.append("victim")

    def survivor():
        yield sig
        got.append("survivor")

    victim_proc = engine.spawn(victim())
    engine.spawn(survivor())
    engine.after(5, victim_proc.kill)
    engine.after(10, sig.fire)
    engine.run()
    assert got == ["survivor"]


def test_process_exception_propagates_and_marks_error():
    engine = Engine()

    def body():
        yield 1
        raise ValueError("boom")

    proc = engine.spawn(body())
    with pytest.raises(ValueError):
        engine.run()
    assert isinstance(proc.error, ValueError)
    assert not proc.alive


def test_yielding_garbage_raises_simulation_error():
    engine = Engine()

    def body():
        yield "not a waitable"

    engine.spawn(body())
    with pytest.raises(SimulationError):
        engine.run()


def test_spawn_order_decides_same_time_interleaving():
    engine = Engine()
    seen = []

    def body(tag):
        seen.append(tag)
        yield 0
        seen.append(tag * 10)

    engine.spawn(body(1))
    engine.spawn(body(2))
    engine.run()
    assert seen == [1, 2, 10, 20]


def test_nested_subgenerators_via_yield_from():
    engine = Engine()
    got = []

    def inner():
        yield 10
        return 5

    def outer():
        value = yield from inner()
        got.append((engine.now, value))

    engine.spawn(outer())
    engine.run()
    assert got == [(10, 5)]
