"""Tests for repro.obs.spans: per-request distributed tracing.

The two load-bearing contracts:

1. **Conservation** -- every completed request's critical path
   decomposes its end-to-end latency *exactly*: the seven components
   are non-negative and sum to ``settled - arrived``, cycle for cycle,
   on both server backends (hypothesis sweeps configs for the model
   backend).
2. **Byte identity** -- the span payload of a sharded (PDES) run
   equals the single-engine run's byte for byte, because node-side
   fragments ship home and finalization orders by settle sequence.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs.spans as spans
from repro.cluster import ClusterConfig, get_design, run_cluster, scaled
from repro.errors import ConfigError
from repro.obs.export import span_trace, validate_chrome_trace
from repro.obs.spans import (
    COMPONENTS,
    SpanStore,
    critical_path,
    render_tree,
)


def _config(**overrides) -> ClusterConfig:
    defaults = dict(nodes=4, design=get_design("sw-threads"),
                    policy="round-robin", fanout=2, load=0.3, requests=40,
                    mean_service_cycles=4_000, segments=2,
                    rtt_cycles=5_000)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _traced(config: ClusterConfig, seed: int = 13, top_k: int = 8,
            sample_every: int = 0, **run_kwargs) -> SpanStore:
    with spans.tracing(top_k=top_k, sample_every=sample_every) as store:
        run_cluster(config, seed=seed, **run_kwargs)
    store.finalize()
    return store


def _assert_conserved(store: SpanStore) -> None:
    paths = store.paths()
    assert paths, "no completed requests traced"
    for latency, _seq, _request_id, components in paths:
        assert set(components) == set(COMPONENTS)
        assert all(value >= 0 for value in components.values()), components
        assert sum(components.values()) == latency, components


class TestConservation:
    """Components sum to the end-to-end latency, exactly."""

    @given(design=st.sampled_from(["hw-threads", "sw-threads",
                                   "event-loop"]),
           nodes=st.integers(min_value=2, max_value=6),
           fanout=st.integers(min_value=1, max_value=2),
           load=st.floats(min_value=0.1, max_value=0.6),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_model_backend(self, design, nodes, fanout, load, seed):
        store = _traced(_config(nodes=nodes, design=get_design(design),
                                fanout=min(fanout, nodes), load=load,
                                requests=25), seed=seed)
        _assert_conserved(store)

    @pytest.mark.parametrize("design", ["hw-threads", "sw-threads"])
    def test_isa_backend(self, design):
        store = _traced(_config(design=get_design(design), backend="isa",
                                fanout=1, requests=20))
        _assert_conserved(store)

    def test_hedged_and_queue_limited(self):
        store = _traced(_config(policy="jsq", hedge_after=30_000,
                                queue_limit=16, load=0.6))
        _assert_conserved(store)


class TestCriticalPath:
    def test_tree_decomposition_matches_latency(self):
        store = _traced(_config())
        for tree in store.exemplars():
            path = critical_path(tree)
            assert sum(path.values()) == tree["latency"]
            assert tuple(path) == COMPONENTS

    def test_requires_completed_outcome(self):
        with pytest.raises(ConfigError):
            critical_path({"outcome": "dropped", "request_id": 1})

    def test_exactly_one_critical_attempt_per_tree(self):
        store = _traced(_config(fanout=2))
        for tree in store.exemplars():
            critical = [attempt
                        for shard in tree["shards"]
                        for attempt in shard["attempts"]
                        if attempt["critical"]]
            assert len(critical) == 1
            assert critical[0]["status"] == "won"


class TestSampling:
    def test_top_k_keeps_the_slowest(self):
        store = _traced(_config(), top_k=3)
        exemplars = store.exemplars()
        assert len(exemplars) == 3
        slowest = sorted((latency for latency, *_ in store.paths()),
                         reverse=True)[:3]
        assert sorted((tree["latency"] for tree in exemplars),
                      reverse=True) == slowest

    def test_sample_every_is_deterministic_by_request_id(self):
        store = _traced(_config(), top_k=0, sample_every=4)
        exemplars = store.exemplars()
        assert exemplars
        assert all(tree["request_id"] % 4 == 0 for tree in exemplars)

    def test_all_requests_counted_regardless_of_sampling(self):
        store = _traced(_config(), top_k=1)
        payload = store.payload()
        assert payload["counters"]["completed"] == len(store.paths())
        assert payload["latency"]["count"] == len(store.paths())

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigError):
            SpanStore(top_k=-1)
        with pytest.raises(ConfigError):
            SpanStore(sample_every=-2)


class TestPercentileRequest:
    def test_p100_is_the_slowest(self):
        store = _traced(_config())
        worst = max(latency for latency, *_ in store.paths())
        assert store.percentile_request(100.0)["latency"] == worst

    def test_empty_store_raises(self):
        with pytest.raises(ConfigError):
            SpanStore().percentile_request(50.0)

    def test_out_of_range_raises(self):
        store = _traced(_config(requests=5))
        with pytest.raises(ConfigError):
            store.percentile_request(101.0)


class TestByteIdentity:
    """Sharded tracing ships fragments home and reproduces the
    single-engine payload byte for byte."""

    def _payload(self, config, **run_kwargs) -> str:
        store = _traced(config, **run_kwargs)
        return json.dumps(store.payload(), sort_keys=True)

    def test_model_shards_1_vs_4(self):
        config = _config(nodes=8, requests=30)
        assert (self._payload(config)
                == self._payload(scaled(config, shards=4),
                                 transport="inline"))

    def test_isa_shards_1_vs_2(self):
        config = _config(nodes=2, backend="isa", fanout=1, requests=15)
        assert (self._payload(config)
                == self._payload(scaled(config, shards=2),
                                 transport="inline"))

    def test_process_transport_matches_inline(self):
        config = scaled(_config(nodes=4, requests=20), shards=2)
        assert (self._payload(config, transport="process")
                == self._payload(config, transport="inline"))


class TestZeroCostWhenOff:
    def test_no_ambient_store_outside_tracing(self):
        assert spans.active() is None
        with spans.tracing() as store:
            assert spans.active() is store
        assert spans.active() is None

    def test_untraced_cluster_attaches_no_sink(self):
        result = run_cluster(_config(requests=5), seed=1)
        assert result.service._spans is None
        for node in result.service.nodes:
            assert node.server.span_sink is None

    def test_redirected_isolates_the_stack(self):
        with spans.tracing() as outer:
            inner = SpanStore()
            with spans._redirected(inner):
                assert spans.active() is inner
            with spans._redirected(None):
                assert spans.active() is None
            assert spans.active() is outer


class TestRenderTree:
    def test_shows_critical_path_with_percentages(self):
        store = _traced(_config())
        text = render_tree(store.exemplars()[0])
        assert "critical path:" in text
        assert "*critical*" in text
        for name in COMPONENTS:
            assert name in text
        assert "%" in text


class TestPerfettoExport:
    def test_span_trace_validates(self):
        store = _traced(_config())
        trees = [("sw-threads", tree) for tree in store.exemplars()]
        trace = span_trace(trees)
        validate_chrome_trace(trace)

    def test_critical_lane_closes_at_settle(self):
        """The critical-path lane's components tile [start, end]."""
        store = _traced(_config())
        tree = store.exemplars()[0]
        events = [event for event in span_trace([("x", tree)])["traceEvents"]
                  if event.get("cat") == "critical-path"]
        assert len(events) == len(COMPONENTS)
        total = sum(event["args"]["cycles"] for event in events)
        assert total == tree["latency"]

    def test_one_pid_per_tree_with_labels(self):
        store = _traced(_config())
        trees = [("a", store.exemplars()[0]), ("b", store.exemplars()[1])]
        trace = span_trace(trees)
        names = [event["args"]["name"]
                 for event in trace["traceEvents"]
                 if event["name"] == "process_name"]
        assert len(names) == 2
        assert names[0].startswith("a request ")
        assert names[1].startswith("b request ")
