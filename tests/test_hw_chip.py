"""Tests for the multi-core chip: shared memory, migration, accounting."""

import pytest

from repro.errors import ConfigError, TripleFault
from repro.hw.ptid import PtidState
from repro.machine import build_machine


class TestMultiCore:
    def test_cores_share_memory_and_watch_bus(self):
        machine = build_machine(cores=2)
        word = machine.alloc("shared", 64)
        # ptid on core 1 waits; ptid on core 0 writes
        machine.load_asm(0, """
            movi r1, WORD
            monitor r1
            mwait
            ld r2, r1, 0
            halt
        """, symbols={"WORD": word.base}, core_id=1, supervisor=True)
        machine.load_asm(0, """
            work 200
            movi r1, WORD
            movi r2, 99
            st r1, 0, r2
            halt
        """, symbols={"WORD": word.base}, core_id=0, supervisor=True)
        machine.boot(0, core_id=0)
        machine.boot(0, core_id=1)
        machine.run(until=100_000)
        machine.check()
        assert machine.thread(0, core_id=1).arch.read("r2") == 99

    def test_core_out_of_range(self):
        machine = build_machine(cores=2)
        with pytest.raises(ConfigError):
            machine.core(2)

    def test_total_instructions_aggregates(self):
        machine = build_machine(cores=2)
        for core_id in (0, 1):
            machine.load_asm(0, "movi r1, 1\nhalt", core_id=core_id,
                             supervisor=True)
            machine.boot(0, core_id=core_id)
        machine.run(until=10_000)
        assert machine.chip.total_instructions >= 4

    def test_one_core_halting_does_not_halt_the_other(self):
        machine = build_machine(cores=2)
        # core 0: fault with no handler (triple fault); core 1: fine
        machine.load_asm(0, "movi r1, 1\nmovi r2, 0\ndiv r3, r1, r2\nhalt",
                         core_id=0, supervisor=True)
        machine.load_asm(0, "movi r1, 7\nhalt", core_id=1, supervisor=True)
        machine.boot(0, core_id=0)
        machine.boot(0, core_id=1)
        machine.run(until=10_000)
        assert machine.core(0).halted
        assert not machine.core(1).halted
        assert machine.thread(0, core_id=1).arch.read("r1") == 7
        with pytest.raises(TripleFault):
            machine.check()


class TestMigration:
    def _machine_with_paused_worker(self):
        machine = build_machine(cores=2)
        machine.load_asm(0, """
            movi r1, 41
            stop 0
            addi r1, r1, 1
            halt
        """, core_id=0, supervisor=True)
        machine.boot(0, core_id=0)
        machine.run(until=10_000)
        source = machine.thread(0, core_id=0)
        assert source.state is PtidState.DISABLED
        assert source.arch.read("r1") == 41
        return machine

    def test_migrate_moves_state_and_resumes(self):
        machine = self._machine_with_paused_worker()
        latency = machine.chip.migrate(0, 0, 1, 5)
        assert latency == machine.costs.hw_start_l3_cycles
        machine.core(1).boot(5)
        machine.run(until=50_000)
        machine.check()
        dest = machine.thread(5, core_id=1)
        assert dest.finished
        assert dest.arch.read("r1") == 42  # resumed mid-program

    def test_migration_counted(self):
        machine = self._machine_with_paused_worker()
        machine.chip.migrate(0, 0, 1, 5)
        assert machine.chip.migrations == 1

    def test_priority_travels_with_the_thread(self):
        machine = self._machine_with_paused_worker()
        machine.core(0).set_priority(0, 7)
        machine.chip.migrate(0, 0, 1, 5)
        assert machine.thread(5, core_id=1).priority == 7

    def test_source_must_be_disabled(self):
        machine = build_machine(cores=2)
        machine.load_asm(0, "spin:\n    jmp spin", core_id=0,
                         supervisor=True)
        machine.boot(0, core_id=0)
        machine.run(max_events=50)
        with pytest.raises(ConfigError):
            machine.chip.migrate(0, 0, 1, 5)

    def test_target_must_be_disabled(self):
        machine = self._machine_with_paused_worker()
        machine.load_asm(5, "spin:\n    jmp spin", core_id=1,
                         supervisor=True)
        machine.core(1).boot(5)
        with pytest.raises(ConfigError):
            machine.chip.migrate(0, 0, 1, 5)

    def test_self_migration_rejected(self):
        machine = self._machine_with_paused_worker()
        with pytest.raises(ConfigError):
            machine.chip.migrate(0, 0, 0, 0)

    def test_vector_state_travels(self):
        machine = build_machine(cores=2)
        machine.load_asm(0, """
            vmovi v0, 13
            stop 0
            halt
        """, core_id=0, supervisor=True)
        machine.boot(0, core_id=0)
        machine.run(until=10_000)
        machine.chip.migrate(0, 0, 1, 3)
        dest = machine.thread(3, core_id=1)
        assert dest.arch.read("v0") == 13
        assert dest.arch.vector_dirty
