"""Tests for the cache hierarchy and DMA engine."""

import pytest

from repro.arch import CostModel
from repro.errors import ConfigError
from repro.mem import Cache, CacheHierarchy, DmaEngine, Memory
from repro.sim import Engine


class TestCache:
    def test_first_access_misses_then_hits(self):
        cache = Cache("L1", 4096, ways=4, hit_cycles=4, miss_cycles=100)
        assert cache.access(0x1000) == 104
        assert cache.access(0x1000) == 4
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_shares_entry(self):
        cache = Cache("L1", 4096, ways=4, hit_cycles=4, miss_cycles=100)
        cache.access(0x1000)
        assert cache.access(0x1038) == 4  # same 64B line

    def test_lru_eviction(self):
        # 2-way, tiny cache: 2 lines per set
        cache = Cache("tiny", 256, ways=2, line_bytes=64, hit_cycles=1,
                      miss_cycles=10)
        # all map to set 0 when addresses differ by sets*line
        stride = cache.sets * 64
        cache.access(0)
        cache.access(stride)
        cache.access(0)              # refresh 0's recency
        cache.access(2 * stride)     # evicts `stride`
        assert cache.contains(0)
        assert not cache.contains(stride)
        assert cache.evictions == 1

    def test_warm_installs_without_charging(self):
        cache = Cache("L1", 4096, ways=4, hit_cycles=4, miss_cycles=100)
        cache.warm(0x1000, 256)
        assert cache.access(0x1000) == 4
        assert cache.access(0x10C0) == 4

    def test_flush(self):
        cache = Cache("L1", 4096, ways=4, hit_cycles=4, miss_cycles=100)
        cache.access(0x1000)
        cache.flush()
        assert not cache.contains(0x1000)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            Cache("bad", 0)
        with pytest.raises(ConfigError):
            Cache("bad", 100, ways=3, line_bytes=64)  # 1 line, 3 ways


class TestHierarchy:
    def test_miss_costs_stack(self):
        costs = CostModel()
        hier = CacheHierarchy(costs)
        cold = hier.access(0x1000)
        assert cold == (costs.l1_hit_cycles + costs.l2_hit_cycles
                        + costs.l3_hit_cycles + costs.dram_cycles)
        assert hier.access(0x1000) == costs.l1_hit_cycles

    def test_l1_eviction_falls_back_to_l2(self):
        costs = CostModel()
        hier = CacheHierarchy(costs, l1_kib=4, l2_kib=64, l3_kib=256)
        hier.access(0x0)
        # blow out L1 (4KiB) but stay within L2
        hier.walk_working_set(0x10000, 32 * 1024)
        cycles = hier.access(0x0)
        assert cycles == costs.l1_hit_cycles + costs.l2_hit_cycles

    def test_working_set_walk_and_stats(self):
        hier = CacheHierarchy()
        hier.walk_working_set(0, 64 * 64)
        stats = hier.stats()
        assert stats["L1"]["misses"] == 64
        hier.walk_working_set(0, 64 * 64)
        assert hier.l1.hits == 64

    def test_pollution_shape_switch_hurts_rewalk(self):
        """The Section 1 claim in miniature: after a competing thread
        trashes the cache, re-walking the original set costs more."""
        hier = CacheHierarchy(l1_kib=4, l2_kib=32, l3_kib=128)
        hier.walk_working_set(0, 4096)
        warm = hier.walk_working_set(0, 4096)
        hier.walk_working_set(0x100000, 256 * 1024)  # competing thread
        polluted = hier.walk_working_set(0, 4096)
        assert polluted > 2 * warm

    def test_flush_resets_presence_not_stats(self):
        hier = CacheHierarchy()
        hier.access(0x1000)
        hier.flush()
        assert hier.l1.misses == 1
        hier.access(0x1000)
        assert hier.l1.misses == 2


class TestDma:
    def test_transfer_lands_after_latency_and_bandwidth(self):
        engine = Engine()
        mem = Memory()
        dma = DmaEngine(engine, mem, latency_cycles=100, bytes_per_cycle=8)
        done_at = dma.write(0x1000, [1, 2, 3, 4])  # 32 bytes -> 4 cycles
        assert done_at == 104
        assert mem.load(0x1000) == 0  # not yet
        engine.run()
        assert engine.now == 104
        assert mem.load_words(0x1000, 4) == [1, 2, 3, 4]

    def test_dma_write_triggers_watch_at_landing_time(self):
        engine = Engine()
        mem = Memory()
        dma = DmaEngine(engine, mem, latency_cycles=50, bytes_per_cycle=64)
        watch = mem.watch_bus.watch(0x2000)
        times = []
        watch.signal.add_waiter(lambda _info: times.append(engine.now))
        dma.write_word(0x2000, 7)
        engine.run()
        assert times == [51]

    def test_completion_callback(self):
        engine = Engine()
        mem = Memory()
        dma = DmaEngine(engine, mem)
        done = []
        dma.write(0x1000, [1], on_complete=lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1

    def test_stats(self):
        engine = Engine()
        mem = Memory()
        dma = DmaEngine(engine, mem)
        dma.write(0x1000, [1, 2])
        engine.run()
        assert dma.transfers == 1
        assert dma.bytes_moved == 16

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            DmaEngine(Engine(), Memory(), bytes_per_cycle=0)
