"""Tests for the cost model and its derived path costs."""

import pytest

from repro.arch import CostModel
from repro.errors import ConfigError


@pytest.fixture
def costs():
    return CostModel()


def test_paper_rf_start_is_about_20_cycles(costs):
    # Section 4: "roughly 20 clock cycles in modern processors"
    assert costs.hw_start_rf_cycles == 20


def test_paper_l2_l3_transfer_within_10_to_50_extra(costs):
    # Section 4: bulk transfer from L2/L3 adds 10-50 cycles over RF start
    assert 10 <= costs.hw_start_l2_cycles - costs.hw_start_rf_cycles <= 50
    assert 10 <= costs.hw_start_l3_cycles - costs.hw_start_rf_cycles <= 50


def test_sw_switch_is_hundreds_of_cycles(costs):
    # Section 1: "hundreds of cycles of overhead"
    assert 100 <= costs.sw_switch_cycles <= 1000


def test_mode_switch_is_hundreds_of_cycles(costs):
    # Section 2: "can take hundreds of cycles [46, 69]"
    assert 100 <= costs.mode_switch_cycles <= 1000


def test_vm_exit_is_hundreds_of_ns(costs):
    # Section 2: "hundreds of nanoseconds" -> >= 300 cycles at 3GHz
    assert costs.vm_exit_cycles >= 300


def test_hw_wakeup_beats_baseline_wakeup_by_an_order_of_magnitude(costs):
    # The central claim: mwait wakeup vs IRQ+scheduler+switch chain.
    for tier in ("rf", "l2", "l3"):
        assert costs.baseline_io_wakeup_cycles() > 10 * costs.hw_wakeup_cycles(tier)


def test_baseline_wakeup_chain_components(costs):
    base = costs.baseline_io_wakeup_cycles(cross_core=False, include_pollution=False)
    assert base == (costs.irq_entry_cycles + costs.irq_exit_cycles
                    + costs.scheduler_cycles + costs.sw_switch_cycles)
    assert (costs.baseline_io_wakeup_cycles(cross_core=True, include_pollution=False)
            == base + costs.ipi_cycles)
    assert (costs.baseline_io_wakeup_cycles(cross_core=False, include_pollution=True)
            == base + costs.cache_pollution_cycles)


def test_tier_ordering(costs):
    assert (costs.hw_start_cycles("rf") < costs.hw_start_cycles("l2")
            < costs.hw_start_cycles("l3"))


def test_unknown_tier_raises(costs):
    with pytest.raises(ConfigError):
        costs.hw_start_cycles("dram")


def test_fp_state_makes_switches_dearer(costs):
    assert (costs.sw_switch_total_cycles(fp_state=True)
            > costs.sw_switch_total_cycles(fp_state=False))
    assert (costs.syscall_sync_cycles(fp_save=True)
            > costs.syscall_sync_cycles(fp_save=False))


def test_hw_syscall_beats_sync_syscall(costs):
    for tier in ("rf", "l2", "l3"):
        assert costs.syscall_hw_thread_cycles(tier) < costs.syscall_sync_cycles()


def test_hw_vm_exit_beats_hw_mode_switch(costs):
    for tier in ("rf", "l2"):
        assert costs.vm_exit_hw_thread_cycles(tier) < costs.vm_exit_cycles


def test_scaled_overrides_single_field(costs):
    tweaked = costs.scaled(sw_switch_cycles=999)
    assert tweaked.sw_switch_cycles == 999
    assert tweaked.scheduler_cycles == costs.scheduler_cycles
    assert costs.sw_switch_cycles == 500  # original untouched


def test_negative_cost_rejected():
    with pytest.raises(ConfigError):
        CostModel(sw_switch_cycles=-1)


def test_memory_hierarchy_ordering(costs):
    assert (costs.l1_hit_cycles < costs.l2_hit_cycles
            < costs.l3_hit_cycles < costs.dram_cycles)
