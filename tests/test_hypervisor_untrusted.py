"""Tests for the ISA-level untrusted hypervisor demo."""

import pytest

from repro.errors import ConfigError
from repro.hw.ptid import PtidState
from repro.hypervisor import UntrustedHypervisorDemo
from repro.hypervisor.untrusted import GUEST_PTID, HV_PTID, run_permission_matrix


class TestUntrustedHypervisorDemo:
    def test_all_exits_handled(self):
        demo = UntrustedHypervisorDemo(iterations=8)
        outcome = demo.run()
        assert outcome.exits_handled == 8
        assert outcome.guest_iterations == 8

    def test_hypervisor_is_unprivileged(self):
        demo = UntrustedHypervisorDemo(iterations=3)
        outcome = demo.run()
        assert outcome.hv_ran_privileged is False
        assert demo.machine.thread(HV_PTID).supervisor is False

    def test_guest_finishes_disabled(self):
        demo = UntrustedHypervisorDemo(iterations=3)
        demo.run()
        guest = demo.machine.thread(GUEST_PTID)
        assert guest.finished
        assert guest.state is PtidState.DISABLED

    def test_slowdown_is_modest(self):
        demo = UntrustedHypervisorDemo(iterations=10,
                                       guest_work_cycles=5_000,
                                       handler_work_cycles=400)
        outcome = demo.run()
        # exits cost handler work + wakeup machinery, well under 2x
        assert 1.0 < outcome.slowdown < 1.5

    def test_deterministic(self):
        walls = [UntrustedHypervisorDemo(iterations=5).run().wall_cycles
                 for _ in range(2)]
        assert walls[0] == walls[1]

    def test_exception_count_matches_exits(self):
        demo = UntrustedHypervisorDemo(iterations=6)
        demo.run()
        assert demo.machine.thread(GUEST_PTID).exceptions_raised == 6

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            UntrustedHypervisorDemo(iterations=0)

    def test_timeout_reported(self):
        demo = UntrustedHypervisorDemo(iterations=50,
                                       guest_work_cycles=10_000)
        with pytest.raises(ConfigError):
            demo.run(until=1_000)


class TestPermissionMatrix:
    def test_non_hierarchical_privilege(self):
        matrix = run_permission_matrix()
        assert matrix["b_stopped_a"] is True
        assert matrix["c_stopped_b"] is True
        assert matrix["c_stopped_a"] is False

    def test_c_faults_with_permission_fault(self):
        matrix = run_permission_matrix()
        assert matrix["c_faulted"] is True
        assert matrix["c_fault_kind"] == "PERMISSION_FAULT"
