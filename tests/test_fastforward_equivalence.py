"""Fast-forward vs naive stepping must be indistinguishable.

The busy-cycle fast-forward in ``HWCore._plan_fast_forward`` claims to
replay exactly the accounting naive cycle-by-cycle stepping would have
produced -- retired instructions, per-thread busy cycles, final clock,
wakeup/exception counts, and the trace event stream. These tests run
the same workload twice (``fast_forward=True`` vs ``False``) and diff
everything except ``events`` (the one counter that legitimately drops:
skipping cycles is the whole point).
"""

import os

import pytest

from repro import build_machine


def _strip_events(stats):
    return {key: value for key, value in stats.items() if key != "events"}


def _thread_fingerprint(machine, ptids):
    return [
        {
            "ptid": thread.ptid,
            "state": thread.state.name,
            "finished": thread.finished,
            "instructions": thread.instructions_executed,
            "cycles_busy": thread.cycles_busy,
            "wakeups": thread.wakeups,
            "exceptions": thread.exceptions_raised,
            "pc": thread.arch.pc,
        }
        for thread in (machine.thread(p) for p in ptids)
    ]


def _run_contended(fast_forward: bool):
    """Contended SMT: 5 work-burst threads on 2 slots, plus a DMA-woken
    monitor sleeper and an exception-raising thread."""
    machine = build_machine(cores=1, hw_threads_per_core=8, smt_width=2,
                            fast_forward=fast_forward, trace=True)
    box = machine.alloc("box", 64)
    edp = machine.alloc("edp", 256)
    for ptid in range(5):
        machine.load_asm(ptid, f"""
            movi r1, 0
            movi r2, 3
        loop:
            work {600 + 137 * ptid}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """, supervisor=True)
        machine.boot(ptid)
    machine.load_asm(5, """
        movi r1, BOX
        monitor r1
        mwait
        ld r2, r1, 0
        work 400
        halt
    """, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(5)
    machine.load_asm(6, """
        work 300
        movi r1, 7
        movi r2, 0
        div r3, r1, r2
        halt
    """, supervisor=True, edp=edp.base)
    machine.boot(6)
    machine.dma.write_word(box.base, 42)
    machine.run()
    machine.run(until=machine.engine.now + 100)  # horizon-capped tail
    return machine


def _run_uncontended_priority(fast_forward: bool):
    """Uncontended slots with the weighted-fair policy (the float
    virtual-time replay path of ``advance_rounds``)."""
    machine = build_machine(cores=1, hw_threads_per_core=4, smt_width=2,
                            fast_forward=fast_forward,
                            issue_policy="priority", trace=True)
    machine.core(0).set_priority(0, 4)
    machine.load_asm(0, "work 5000\nmovi r9, 1\nhalt", supervisor=True)
    machine.load_asm(1, "work 3000\nmovi r9, 2\nhalt", supervisor=True)
    machine.boot(0)
    machine.boot(1)
    machine.run()
    return machine


def _run_multicore(fast_forward: bool):
    """Two cores on one engine: each core's bursts must batch past the
    other core's per-cycle resumes (which live in the engine's step lane,
    outside the foreign-event horizon), and a cross-core store wakes a
    monitor sleeper mid-burst -- the interruptible (lazy) batch path."""
    machine = build_machine(cores=2, hw_threads_per_core=4, smt_width=2,
                            fast_forward=fast_forward, trace=True)
    box = machine.alloc("box", 64)
    for ptid in range(3):
        machine.load_asm(ptid, f"""
            movi r1, 0
            movi r2, 2
        loop:
            work {500 + 211 * ptid}
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        """, core_id=0, supervisor=True)
        machine.boot(ptid, core_id=0)
    machine.load_asm(3, """
        movi r1, BOX
        monitor r1
        mwait
        ld r2, r1, 0
        work 350
        halt
    """, core_id=0, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(3, core_id=0)
    # core 1: a long burst, then the cross-core store that wakes core
    # 0's sleeper while core 0 is (in fast mode) mid-batch
    machine.load_asm(0, """
        work 1200
        movi r1, BOX
        movi r2, 99
        st r1, 0, r2
        work 600
        halt
    """, core_id=1, symbols={"BOX": box.base}, supervisor=True)
    machine.boot(0, core_id=1)
    machine.load_asm(1, "work 2500\nhalt", core_id=1, supervisor=True)
    machine.boot(1, core_id=1)
    machine.run()
    return machine


@pytest.mark.parametrize("workload", [_run_contended,
                                      _run_uncontended_priority])
def test_fast_forward_matches_naive(workload):
    fast = workload(True)
    naive = workload(False)
    ptids = range(fast.config.hw_threads_per_core)
    assert fast.engine.now == naive.engine.now
    assert _strip_events(fast.stats()) == _strip_events(naive.stats())
    assert (_thread_fingerprint(fast, ptids)
            == _thread_fingerprint(naive, ptids))
    assert fast.tracer.events == naive.tracer.events


def test_multicore_fast_forward_matches_naive():
    fast = _run_multicore(True)
    naive = _run_multicore(False)
    assert fast.engine.now == naive.engine.now
    assert _strip_events(fast.stats()) == _strip_events(naive.stats())
    ptids = range(fast.config.hw_threads_per_core)
    for core_id in (0, 1):
        fast_threads = [fast.thread(p, core_id) for p in ptids]
        naive_threads = [naive.thread(p, core_id) for p in ptids]
        for f, n in zip(fast_threads, naive_threads):
            assert f.instructions_executed == n.instructions_executed
            assert f.cycles_busy == n.cycles_busy
            assert f.wakeups == n.wakeups
            assert f.state is n.state
    assert fast.tracer.events == naive.tracer.events
    # the whole point: neither core's per-cycle resumes pinned the
    # other's horizon at one cycle
    assert fast.engine.events_processed < naive.engine.events_processed / 5


def test_fast_forward_actually_skips_events():
    fast = _run_contended(True)
    naive = _run_contended(False)
    assert fast.engine.events_processed < naive.engine.events_processed / 5


def test_storage_recency_order_preserved():
    fast = _run_contended(True)
    naive = _run_contended(False)

    def recency(machine):
        last_use = machine.core(0).storage._last_use
        return sorted(last_use, key=lambda ptid: last_use[ptid])

    assert recency(fast) == recency(naive)


def test_env_var_forces_naive(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
    machine = build_machine(fast_forward=True)
    assert not machine.core(0).fast_forward_enabled


def test_config_disables_fast_forward():
    machine = build_machine(fast_forward=False)
    assert not machine.core(0).fast_forward_enabled
    assert build_machine().core(0).fast_forward_enabled
