"""Tests for repro.cluster.pdes: conservative parallel-in-time sharding.

The contract under test is strong: a sharded run must be *byte
identical* to the single-engine run -- same summary, same latency
quantiles, same obs snapshot -- because every shard replays exactly
the RNG draws its own nodes and links would have made on the shared
engine. The conservative protocol (lookahead = min client->node link
latency) guarantees no shard ever has to deliver a message into its
committed past; the causality tests pin that guarantee down.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.cluster import (
    CausalityError,
    ClusterConfig,
    node_link_spec,
    request_lookahead,
    run_cluster,
    scaled,
)
from repro.cluster.fabric import LinkSpec
from repro.cluster.pdes import ShardWorker, shard_node_ids
from repro.distributed.rpc import SW_THREADS
from repro.errors import ConfigError


def _config(**overrides) -> ClusterConfig:
    """Small but non-trivial: multiple nodes per shard, fanout > 1."""
    defaults = dict(nodes=8, design=SW_THREADS, fanout=4, requests=40,
                    mean_service_cycles=8_000, rtt_cycles=4_000,
                    link=LinkSpec(base_cycles=2_000, jitter_mean_cycles=250.0))
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _fingerprint(result) -> str:
    """Everything a run reports, as one canonical string."""
    stats = result.service.recorder.summary()
    return json.dumps({"summary": result.summary,
                       "p50": stats.p50, "p95": stats.p95,
                       "p99": stats.p99, "mean": stats.mean},
                      sort_keys=True)


# ----------------------------------------------------------------------
class TestShardNodeIds:
    def test_striped_partition(self):
        assert shard_node_ids(8, 3) == [[0, 3, 6], [1, 4, 7], [2, 5]]

    def test_one_shard_is_identity(self):
        assert shard_node_ids(4, 1) == [[0, 1, 2, 3]]

    def test_bounds_rejected(self):
        with pytest.raises(ConfigError):
            shard_node_ids(4, 5)
        with pytest.raises(ConfigError):
            shard_node_ids(4, 0)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigError):
            run_cluster(_config(shards=2), transport="carrier-pigeon")


class TestLabelsIgnoreShards:
    """Sharding must not perturb a single RNG stream: both label
    variants -- the stream prefix and the human label -- are the same
    for shards=1 and shards=N, so every named stream draws the same
    sequence on either side."""

    def test_workload_label_unchanged(self):
        base = _config()
        for shards in (2, 4, 8):
            assert (scaled(base, shards=shards).workload_label()
                    == base.workload_label())

    def test_label_unchanged(self):
        base = _config()
        assert scaled(base, shards=4).label() == base.label()


# ----------------------------------------------------------------------
class TestByteIdentity:
    """The headline acceptance: shards=N reproduces shards=1 exactly."""

    @pytest.mark.parametrize("policy,hedge", [
        ("round-robin", None),   # decoupled pipeline schedule
        ("random", None),        # decoupled, stochastic routing
        ("jsq", None),           # windowed: routing reads node state
        ("round-robin", 30_000)  # windowed: hedging reads responses
    ])
    def test_matches_single_engine(self, policy, hedge):
        config = _config(policy=policy, hedge_after=hedge)
        single = run_cluster(config, seed=11)
        sharded = run_cluster(scaled(config, shards=4), seed=11,
                              transport="inline")
        assert _fingerprint(sharded) == _fingerprint(single)
        assert sharded.service.pdes["shards"] == 4

    def test_schedule_selection(self):
        """State-free routing takes the decoupled pipeline; load-aware
        routing and hedging fall back to lockstep windows."""
        dec = run_cluster(_config(policy="round-robin", shards=2), seed=3,
                          transport="inline")
        win = run_cluster(_config(policy="jsq", shards=2), seed=3,
                          transport="inline")
        assert dec.service.pdes["mode"] == "decoupled"
        assert win.service.pdes["mode"] == "windowed"

    def test_partition_count_is_invisible(self):
        """2, 3, and 4 shards cut the node set differently yet report
        the same run: the partition is pure bookkeeping."""
        config = _config(policy="jsq")
        prints = {shards: _fingerprint(
                      run_cluster(scaled(config, shards=shards), seed=5,
                                  transport="inline"))
                  for shards in (1, 2, 3, 4)}
        assert len(set(prints.values())) == 1

    def test_process_transport_matches(self):
        """Real worker processes (the default transport) agree with
        both the inline debug mode and the single engine."""
        config = _config(policy="round-robin")
        single = run_cluster(config, seed=9)
        procs = run_cluster(scaled(config, shards=2), seed=9,
                            transport="process")
        assert _fingerprint(procs) == _fingerprint(single)
        assert procs.service.pdes["transport"] == "process"

    def test_cross_rack_topology_matches(self):
        """Lookahead honors per-link overrides: the min over the
        client->node specs, not the default link."""
        config = _config(racks=2,
                         cross_rack_link=LinkSpec(base_cycles=9_000,
                                                  jitter_mean_cycles=500.0))
        assert request_lookahead(config) == 2_000
        single = run_cluster(config, seed=21)
        sharded = run_cluster(scaled(config, shards=4), seed=21,
                              transport="inline")
        assert _fingerprint(sharded) == _fingerprint(single)


# ----------------------------------------------------------------------
class TestCausality:
    """The conservative protocol's safety net."""

    def _worker(self) -> ShardWorker:
        return ShardWorker(_config(), seed=1, node_ids=[0, 4])

    def test_inject_into_committed_past_raises(self):
        worker = self._worker()
        worker.advance(10_000)
        with pytest.raises(CausalityError):
            worker.inject([(9_000, 10_000, 1, 0, 5_000.0)])

    def test_advance_backwards_raises(self):
        worker = self._worker()
        worker.advance(10_000)
        with pytest.raises(CausalityError):
            worker.advance(9_999)

    def test_future_delivery_accepted(self):
        worker = self._worker()
        worker.advance(10_000)
        worker.inject([(9_000, 10_001, 1, 0, 5_000.0)])
        rejects, resps, drops, _events = worker.advance(200_000)
        assert rejects == [] and drops == []
        assert len(resps) == 1

    @given(nodes=st.integers(min_value=2, max_value=8),
           shards=st.integers(min_value=2, max_value=4),
           base=st.integers(min_value=1_000, max_value=20_000),
           seed=st.integers(min_value=0, max_value=2**16),
           policy=st.sampled_from(["round-robin", "random", "jsq"]))
    @settings(max_examples=12, deadline=None)
    def test_no_message_beats_the_lookahead(self, nodes, shards, base,
                                            seed, policy):
        """Property: across random topologies, every cross-shard
        request's slack (deliver - send) is at least the advertised
        lookahead -- no message is ever delivered earlier than its
        send time plus the minimum link latency, so no shard window
        can miss one."""
        if shards > nodes:
            shards = nodes
        config = _config(nodes=nodes, fanout=min(2, nodes),
                         requests=12, policy=policy, shards=shards,
                         link=LinkSpec(base_cycles=base,
                                       jitter_mean_cycles=base / 4))
        result = run_cluster(config, seed=seed, transport="inline")
        pdes = result.service.pdes
        assert pdes["lookahead"] == request_lookahead(config)
        assert pdes["lookahead"] == base
        if pdes["min_slack"] is not None:
            assert pdes["min_slack"] >= pdes["lookahead"]

    def test_min_slack_reported(self):
        """The audit trail actually observed traffic (not vacuous)."""
        result = run_cluster(_config(shards=2), seed=2,
                             transport="inline")
        assert result.service.pdes["min_slack"] is not None
        assert result.service.pdes["windows"] >= 1


# ----------------------------------------------------------------------
def _flatten(value, path=""):
    out = {}
    if isinstance(value, dict):
        for key in value:
            out.update(_flatten(value[key], f"{path}.{key}" if path
                                else str(key)))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            out.update(_flatten(item, f"{path}[{index}]"))
    else:
        out[path] = value
    return out


class TestObsMerge:
    """Sharded observability: worker-side sessions ship home and replay
    into the client session so the merged snapshot equals the
    single-engine one (see repro.obs.merge)."""

    def _snapshot(self, config, transport="inline"):
        with obs.session("pdes") as sess:
            run_cluster(config, seed=13, transport=transport)
        return sess.snapshot()

    def test_model_snapshot_byte_identical(self):
        config = _config(policy="jsq", requests=24)
        single = self._snapshot(config)
        sharded = self._snapshot(scaled(config, shards=4))
        assert single == sharded

    def test_process_transport_snapshot_matches_inline(self):
        config = _config(requests=24, shards=2)
        assert (self._snapshot(config, "process")
                == self._snapshot(config, "inline"))

    def test_isa_snapshot_byte_identical(self):
        """ISA machines run on the hosting engine, yet the snapshot
        must not betray which engine hosted them: ``engine.*`` counters
        are harvested only from engine-owning machines, and the
        profiler's issue/fastforward split is attributed from
        simulation state (all-issueable-threads-mid-work), never from
        whether a batch actually fired. With both host artifacts closed
        at the source, sharded ISA snapshots are fully byte-identical."""
        config = _config(nodes=4, fanout=2, requests=8, backend="isa",
                         mean_service_cycles=4_000)
        single = self._snapshot(config)
        sharded = self._snapshot(scaled(config, shards=2))
        assert single == sharded

    def test_isa_snapshot_has_no_host_engine_counters(self):
        """The closed carve-out, pinned from the other side: a cluster
        ISA machine lives on a shared engine it does not own, so the
        host's event totals must not appear in the snapshot at all."""
        snapshot = self._snapshot(
            _config(nodes=2, fanout=1, requests=4, backend="isa",
                    mean_service_cycles=4_000))
        assert not any(name.startswith("engine.")
                       for name in snapshot["metrics"]["counters"])


class TestObsMergeEdgeCases:
    """Degenerate merge inputs: nodes that serve nothing, whole shards
    that serve nothing, a one-node cluster, and sessions whose only
    content is a timeline (no registered metric sources)."""

    def _snapshot(self, config, transport="inline"):
        with obs.session("pdes") as sess:
            run_cluster(config, seed=13, transport=transport)
        return sess.snapshot()

    def test_zero_request_node_matches(self):
        # two round-robin requests over four nodes at fanout 1: nodes
        # 2 and 3 admit nothing, yet still ship their (empty) server
        # metrics home
        config = _config(nodes=4, fanout=1, requests=2)
        assert (self._snapshot(scaled(config, shards=2))
                == self._snapshot(config))

    def test_empty_shard_matches(self):
        # a single request lands on one node; every other shard's
        # session crosses the pipe with zero admitted requests
        config = _config(nodes=4, fanout=1, requests=1)
        assert (self._snapshot(scaled(config, shards=4))
                == self._snapshot(config))

    def test_single_node_cluster_matches(self):
        config = _config(nodes=1, fanout=1, requests=10)
        assert (self._snapshot(scaled(config, shards=1))
                == self._snapshot(config))

    def test_timeline_only_session_snapshots(self):
        # no machines, no metric sources: only a component track
        from repro.obs.timeline import ThreadState
        with obs.session("timeline-only") as sess:
            track = sess.register_track("queue0")
            sess.timeline.transition(track, 0, ThreadState.RUNNING, 0)
            sess.timeline.transition(track, 0, ThreadState.MWAIT, 50)
            sess.timeline.finish(80)
        snapshot = sess.snapshot()
        assert snapshot["machines"] == 0
        assert snapshot["metrics"]["counters"] == {}
        assert snapshot["timeline"]["spans"] == 2
        assert snapshot["timeline"]["open"] == 0

    def test_import_timeline_remaps_and_roundtrips(self):
        # the merge primitive itself: shipped rows replay under new
        # track ids, open spans stay open
        from repro.obs.merge import import_timeline
        from repro.obs.timeline import ThreadState, Timeline
        source = Timeline()
        source.transition(0, 1, ThreadState.RUNNING, 10)
        source.transition(0, 1, ThreadState.MWAIT, 30)
        source.instant(0, 1, "wakeup", 30)
        rows = [(s.core_id, s.ptid, s.state, s.begin, s.end)
                for s in source.spans]
        instants = [(i.core_id, i.ptid, i.name, i.at)
                    for i in source.instants]
        target = Timeline()
        import_timeline(target, rows, instants, source.open_spans(),
                        idmap={0: 7})
        assert [(s.core_id, s.ptid, s.begin, s.end)
                for s in target.spans] == [(7, 1, 10, 30)]
        assert target.instants[0].core_id == 7
        assert target.open_spans() == [(7, 1, ThreadState.MWAIT, 30)]

    def test_import_empty_timeline_is_a_noop(self):
        from repro.obs.merge import import_timeline
        from repro.obs.timeline import Timeline
        target = Timeline()
        import_timeline(target, [], [], [], idmap={})
        assert len(target.spans) == 0
        assert len(target.instants) == 0
        assert target.open_spans() == []


# ----------------------------------------------------------------------
class TestLookahead:
    def test_uniform_topology(self):
        config = _config(link=LinkSpec(base_cycles=3_333))
        assert request_lookahead(config) == 3_333
        assert node_link_spec(config, 3) is config.link

    def test_cross_rack_spec_applies_off_rack_zero(self):
        cross = LinkSpec(base_cycles=50_000)
        config = _config(racks=2, cross_rack_link=cross)
        assert node_link_spec(config, 0) is config.link
        assert node_link_spec(config, 1) is cross
