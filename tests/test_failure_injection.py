"""Failure-injection tests: the system's behavior when things go wrong.

The paper's design replaces trap-based control flow with memory-visible
state, so every failure must land somewhere inspectable: a descriptor, a
halted core, a drop counter -- never silent corruption.
"""

import pytest

from repro.devices import Nic, Ssd
from repro.devices.ssd import OP_READ
from repro.errors import TripleFault
from repro.hw.exceptions import ExceptionDescriptor, descriptor_present
from repro.hw.ptid import PtidState
from repro.hw.tdt import Permission
from repro.machine import build_machine
from repro.workloads import DeterministicArrivals


class TestUnhandledFaults:
    def test_fault_with_no_edp_triple_faults(self):
        machine = build_machine()
        machine.load_asm(0, "movi r1, 1\nmovi r2, 0\ndiv r3, r1, r2\nhalt",
                         supervisor=True)  # edp defaults to 0
        machine.boot(0)
        machine.run(until=10_000)
        assert machine.core(0).halted
        with pytest.raises(TripleFault) as err:
            machine.check()
        assert "DIV_ZERO" in str(err.value)

    def test_fault_in_handlerless_chain_is_contained_per_core(self):
        # core 0 dies; a two-core machine keeps core 1 alive
        machine = build_machine(cores=2)
        machine.load_asm(0, "trap 1\nhalt", core_id=0, supervisor=False)
        machine.load_asm(0, "work 500\nmovi r1, 1\nhalt", core_id=1,
                         supervisor=True)
        machine.boot(0, core_id=0)
        machine.boot(0, core_id=1)
        machine.run(until=10_000)
        assert machine.core(0).halted
        assert machine.thread(0, core_id=1).finished

    def test_faulted_thread_stays_disabled_until_restarted(self):
        machine = build_machine()
        edp = machine.alloc("edp", 64)
        machine.load_asm(0, "trap 9\nhalt", supervisor=False, edp=edp.base)
        machine.boot(0)
        machine.run(until=10_000)
        thread = machine.thread(0)
        assert thread.state is PtidState.DISABLED
        assert descriptor_present(machine.memory, edp.base)
        # nobody handles it; the descriptor just sits there, inspectable
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        assert descriptor.kind.name == "SYSCALL"
        assert descriptor.address == 9


class TestDescriptorOverwrite:
    def test_second_fault_overwrites_descriptor_with_new_seq(self):
        """A handler that reads too slowly can detect the overwrite via
        the sequence word -- two faults, two different seqs."""
        machine = build_machine()
        edp = machine.alloc("edp", 64)
        seqs = []
        machine.memory.watch_bus.subscribe(
            edp.base,
            lambda info: seqs.append(info["value"])
            if info["addr"] == edp.base else None)
        machine.load_asm(0, "trap 1\nhalt", supervisor=False, edp=edp.base)
        machine.boot(0)
        machine.run(until=5_000)
        # a (buggy) manager rewinds the pc to the trap and restarts
        machine.thread(0).arch.pc = 0
        machine.core(0).api_start(0)
        machine.run(until=10_000)
        nonzero = [s for s in seqs if s != 0]
        assert len(nonzero) >= 2
        assert nonzero[0] != nonzero[1]


class TestDeviceOverload:
    def test_nic_overflow_counts_drops_not_corruption(self):
        machine = build_machine()
        nic = Nic(machine.engine, machine.memory, machine.dma, rx_slots=2)
        nic.start_rx(DeterministicArrivals(100),
                     machine.rngs.stream("rx"), max_packets=20)
        machine.run(until=1_000_000)
        assert nic.packets_delivered == 2
        assert nic.packets_dropped == 18
        # delivered descriptors are intact
        assert machine.memory.load(nic.rx.slot_desc_addr(0)) > 0

    def test_ssd_queue_wraps_without_losing_commands(self):
        machine = build_machine()
        ssd = Ssd(machine.engine, machine.memory, machine.dma,
                  queue_slots=4, read_latency_cycles=10)
        dest = machine.alloc("dest", 4096)
        for i in range(10):
            machine.engine.at(i * 2_000, ssd.submit, OP_READ, i,
                              dest.base + i * 64, 1, "cpu")
        machine.run(until=1_000_000)
        assert ssd.commands_completed == 10


class TestMisconfiguration:
    def test_tdt_mapping_to_nonexistent_ptid_faults_cleanly(self):
        machine = build_machine(hw_threads_per_core=8)
        tdt = machine.build_tdt("bad", {0: (99, Permission.ALL)})
        edp = machine.alloc("edp", 64)
        machine.load_asm(0, "start 0\nhalt", supervisor=False,
                         tdtr=tdt.base, edp=edp.base)
        machine.boot(0)
        machine.run(until=10_000)
        machine.check()
        assert descriptor_present(machine.memory, edp.base)
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        assert descriptor.kind.name == "PERMISSION_FAULT"

    def test_user_thread_with_no_tdt_cannot_manage(self):
        machine = build_machine()
        edp = machine.alloc("edp", 64)
        machine.load_asm(0, "stop 1\nhalt", supervisor=False, edp=edp.base)
        machine.boot(0)
        machine.run(until=10_000)
        machine.check()
        assert descriptor_present(machine.memory, edp.base)

    def test_stale_tdt_cache_without_invtid(self):
        """DESIGN.md: a stale cache after an un-invalidated update is
        *correct* modeled behavior."""
        machine = build_machine()
        tdt = machine.build_tdt("t", {0: (1, Permission.ALL)})
        machine.load_asm(1, "spin:\n    jmp spin", supervisor=False)
        machine.boot(1)
        machine.load_asm(2, "spin:\n    jmp spin", supervisor=False)
        machine.boot(2)
        machine.load_asm(0, """
            stop 0
            work 50
            stop 0
            halt
        """, supervisor=False, tdtr=tdt.base)
        # after the first stop, retarget vtid 0 -> ptid 2 WITHOUT invtid
        def retarget(_info):
            tdt.set_entry(0, 2, Permission.ALL)
        hits = {"done": False}
        def once(info):
            if not hits["done"]:
                hits["done"] = True
                retarget(info)
        machine.memory.watch_bus.subscribe(tdt.entry_addr(0), lambda i: None)
        machine.boot(0)
        # retarget right after boot (the first stop will have been
        # translated and cached by then or soon after)
        machine.engine.at(20, retarget, None)
        machine.run(until=10_000)
        machine.check()
        # the stale cached translation means BOTH stops hit ptid 1
        assert machine.thread(1).stops == 2
        assert machine.thread(2).stops == 0

    def test_engine_max_events_bounds_runaway(self):
        machine = build_machine()
        machine.load_asm(0, "spin:\n    jmp spin", supervisor=True)
        machine.boot(0)
        machine.run(max_events=1_000)
        assert machine.engine.events_processed <= 1_001
        assert not machine.thread(0).finished  # still spinning, bounded
