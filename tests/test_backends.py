"""The server-backend protocol: registry, ISA backend, cluster knobs.

Covers the pluggable-backend refactor (model vs ISA behind one
protocol), the registry error paths, balancer probe staleness, the
rack-locality placement knob, and the conservation-audit metrics
round-trip.
"""

import pytest

from repro.arch.costs import CostModel
from repro.backends import (
    MachineBackend,
    ServerBackend,
    backend_names,
    create_backend,
)
from repro.cluster import (
    ClusterConfig,
    DESIGNS,
    LinkSpec,
    LoadBalancer,
    get_design,
    run_cluster,
    scaled,
)
from repro.distributed.rpc import (
    EVENT_LOOP,
    HW_THREADS,
    RpcServerModel,
    SW_THREADS,
)
from repro.errors import ConfigError
from repro.sim.engine import Engine


def _tiny_config(**overrides):
    base = ClusterConfig(nodes=2, design=HW_THREADS, policy="round-robin",
                         fanout=1, load=0.06, mean_service_cycles=4_000,
                         segments=2, rtt_cycles=20_000, requests=12,
                         threads_per_peer=4)
    return scaled(base, **overrides) if overrides else base


# ----------------------------------------------------------------------
# the registry and its error paths
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_known_backends(self):
        assert backend_names() == ("isa", "model")

    def test_model_backend_is_the_rpc_server(self):
        server = create_backend("model", Engine(), HW_THREADS)
        assert isinstance(server, RpcServerModel)
        assert isinstance(server, ServerBackend)

    def test_isa_backend_is_the_machine(self):
        server = create_backend("isa", Engine(), HW_THREADS)
        assert isinstance(server, MachineBackend)
        assert isinstance(server, ServerBackend)

    def test_unknown_backend_is_actionable(self):
        with pytest.raises(ConfigError, match="unknown server backend"):
            create_backend("fpga", Engine(), HW_THREADS)
        with pytest.raises(ConfigError, match="model"):
            create_backend("fpga", Engine(), HW_THREADS)

    def test_unknown_backend_rejected_by_config(self):
        with pytest.raises(ConfigError, match="unknown server backend"):
            _tiny_config(backend="fpga")

    def test_unknown_design_is_actionable(self):
        with pytest.raises(ConfigError, match="unknown server design"):
            get_design("green-threads")
        with pytest.raises(ConfigError, match="hw-threads"):
            get_design("green-threads")

    def test_isa_backend_rejects_multicore(self):
        with pytest.raises(ConfigError, match="single-core"):
            create_backend("isa", Engine(), HW_THREADS, cores=2)
        with pytest.raises(ConfigError, match="single-core"):
            run_cluster(_tiny_config(backend="isa", cores_per_node=2))


# ----------------------------------------------------------------------
# the ISA backend honors the request-in/latency-out contract
# ----------------------------------------------------------------------
class TestMachineBackend:
    @pytest.mark.parametrize("design", [HW_THREADS, SW_THREADS,
                                        EVENT_LOOP])
    def test_segmented_request_completes(self, design):
        engine = Engine()
        server = create_backend("isa", engine, design,
                                costs=CostModel(), resident_threads=4)
        done = []
        server.submit(1, [500.0, 700.0], rtt_cycles=3_000,
                      on_done=lambda: done.append(engine.now))
        engine.run(until=200_000)
        assert server.completed == 1
        assert done
        latency = server.recorder.samples[0]
        # two segments plus one remote call, executed for real
        assert latency >= 500 + 700 + 3_000
        assert server.cpu_busy_cycles() >= 500 + 700

    def test_latency_tracks_the_behavioral_model(self):
        results = {}
        for backend in ("model", "isa"):
            engine = Engine()
            server = create_backend(backend, engine, HW_THREADS)
            server.submit(1, [1_000.0, 2_000.0], rtt_cycles=5_000)
            engine.run(until=200_000)
            results[backend] = server.recorder.samples[0]
        # the model taxes every segment analytically; the machine pays
        # one real wakeup -- they straddle each other within a few
        # percent, far inside the E15 agreement band
        assert 0.9 * results["model"] <= results["isa"] \
            <= 2.0 * results["model"]

    def test_overflow_queues_fifo(self):
        engine = Engine()
        server = create_backend("isa", engine, HW_THREADS)
        finished = []
        for req in range(40):   # more than the 32 hardware slots
            server.submit(req, [200.0], rtt_cycles=1_000,
                          on_done=lambda req=req: finished.append(req))
        engine.run(until=2_000_000)
        assert server.completed == 40
        assert len(finished) == 40

    def test_event_loop_runs_one_segment_at_a_time(self):
        engine = Engine()
        server = create_backend("isa", engine, EVENT_LOOP)
        order = []
        server.submit(1, [10_000.0], rtt_cycles=1_000,
                      on_done=lambda: order.append("long"))
        server.submit(2, [100.0], rtt_cycles=1_000,
                      on_done=lambda: order.append("short"))
        engine.run(until=500_000)
        # head-of-line: the long request was dispatched first and runs
        # to completion before the short one gets the worker
        assert order == ["long", "short"]


# ----------------------------------------------------------------------
# cluster integration: labels, streams, summaries
# ----------------------------------------------------------------------
class TestClusterBackends:
    def test_default_label_is_unchanged(self):
        # byte-identity anchor: the default backend must reproduce the
        # exact historical stream labels
        config = _tiny_config()
        assert config.label() == \
            "cluster.n2.hw-threads.round-robin.f1.l0.06"
        assert "isa" not in config.label()

    def test_isa_label_is_distinct_but_workload_is_shared(self):
        model = _tiny_config()
        isa = _tiny_config(backend="isa")
        assert model.label() != isa.label()
        assert model.workload_label() == isa.workload_label()

    def test_isa_cluster_agrees_with_model(self):
        summaries = {
            backend: run_cluster(_tiny_config(backend=backend)).summary
            for backend in ("model", "isa")}
        model, isa = summaries["model"], summaries["isa"]
        assert model["completed"] == isa["completed"] > 0
        assert model["conserved"] and isa["conserved"]
        assert 0.5 * model["p99"] <= isa["p99"] <= 2.0 * model["p99"]


# ----------------------------------------------------------------------
# balancer probe staleness (satellite: stale in-flight reads)
# ----------------------------------------------------------------------
class TestProbeStaleness:
    def test_zero_delay_is_exact_back_compat(self):
        exact = run_cluster(_tiny_config(policy="jsq")).summary
        zero = run_cluster(_tiny_config(policy="jsq",
                                        probe_delay_cycles=0)).summary
        assert exact == zero

    def test_stale_probes_are_cached(self):
        result = run_cluster(_tiny_config(policy="jsq", requests=40,
                                          probe_delay_cycles=50_000))
        balancer = result.service.balancer
        assert balancer.probes >= 1
        # snapshots refresh at most once per probe window
        assert balancer.probes < balancer.picks
        assert result.summary["conserved"]
        assert result.summary["completed"] == 40

    def test_stale_balancer_needs_an_engine(self):
        engine = Engine()
        from repro.cluster import ClusterNode
        nodes = [ClusterNode(engine, 0, HW_THREADS)]
        with pytest.raises(ConfigError, match="engine"):
            LoadBalancer(nodes, "jsq", probe_delay_cycles=100)
        with pytest.raises(ConfigError, match=">= 0"):
            LoadBalancer(nodes, "jsq", probe_delay_cycles=-1,
                         engine=engine)

    def test_negative_delay_rejected_by_config(self):
        with pytest.raises(ConfigError, match="probe delay"):
            _tiny_config(probe_delay_cycles=-5)


# ----------------------------------------------------------------------
# rack locality (satellite: exercise Fabric.set_link)
# ----------------------------------------------------------------------
class TestRackLocality:
    CROSS = LinkSpec(base_cycles=40_000, jitter_mean_cycles=500.0)

    def _summary(self, placement):
        config = _tiny_config(nodes=4, racks=2, requests=25,
                              cross_rack_link=self.CROSS,
                              placement=placement)
        return run_cluster(config).summary

    def test_cross_rack_tail_exceeds_same_rack(self):
        same = self._summary("same-rack")
        anywhere = self._summary("any")
        assert same["completed"] == anywhere["completed"] > 0
        assert same["conserved"] and anywhere["conserved"]
        # half of "any" placements pay two 40k-cycle cross-rack hops
        assert anywhere["p99"] > same["p99"]

    def test_cross_rack_links_are_installed(self):
        config = _tiny_config(nodes=4, racks=2,
                              cross_rack_link=self.CROSS)
        result = run_cluster(config)
        fabric = result.service.fabric
        # odd node ids sit in rack 1: both directions overridden
        assert fabric.link_for("client", "node1") == self.CROSS
        assert fabric.link_for("node1", "client") == self.CROSS
        assert fabric.link_for("client", "node0") == config.link

    def test_placement_validation(self):
        with pytest.raises(ConfigError, match="unknown placement"):
            _tiny_config(placement="nearest")
        with pytest.raises(ConfigError, match="rack"):
            _tiny_config(racks=0)
        with pytest.raises(ConfigError, match="racks"):
            _tiny_config(nodes=2, racks=4)


# ----------------------------------------------------------------------
# conservation audit in the metrics snapshot (satellite: dashboards)
# ----------------------------------------------------------------------
class TestConservationMetrics:
    def test_snapshot_round_trips_the_audit(self):
        import repro.obs as obs

        with obs.session("conservation-test") as sess:
            result = run_cluster(_tiny_config())
        audit = result.service.conservation()
        gauges = sess.snapshot()["metrics"]["gauges"]
        base = "cluster.service0.conservation"
        for key in ("ok", "nodes_ok", "attempts_ok", "completions_ok",
                    "requests_ok"):
            assert gauges[f"{base}.{key}"] == int(audit[key])
        for key in ("attempts", "issued", "completed", "dropped",
                    "in_flight", "node_in_flight"):
            assert gauges[f"{base}.{key}"] == audit[key]
        for entry in audit["per_node"]:
            node_base = f"{base}.{entry['node']}"
            assert gauges[f"{node_base}.admitted"] == entry["admitted"]
            assert gauges[f"{node_base}.completed"] == entry["completed"]
            assert gauges[f"{node_base}.in_flight"] == entry["in_flight"]
            assert gauges[f"{node_base}.ok"] == int(entry["ok"])
        assert audit["ok"]
