"""ALU/branch semantics against a Python oracle, including randomized
operand property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import build_machine

OPERAND = st.integers(min_value=-2**31, max_value=2**31 - 1)
SMALL = st.integers(min_value=0, max_value=63)


def run_binop(op: str, a: int, b: int):
    machine = build_machine()
    machine.load_asm(0, f"""
        {op} r3, r1, r2
        halt
    """, supervisor=True)
    machine.thread(0).arch.write("r1", a)
    machine.thread(0).arch.write("r2", b)
    machine.boot(0)
    machine.run(until=1_000)
    machine.check()
    return machine.thread(0).arch.read("r3")


class TestBinopOracle:
    @pytest.mark.parametrize("op,oracle", [
        ("add", lambda a, b: a + b),
        ("sub", lambda a, b: a - b),
        ("mul", lambda a, b: a * b),
        ("and", lambda a, b: a & b),
        ("or", lambda a, b: a | b),
        ("xor", lambda a, b: a ^ b),
    ])
    def test_small_operands(self, op, oracle):
        for a, b in ((0, 0), (1, 2), (7, 7), (100, 3)):
            assert run_binop(op, a, b) == oracle(a, b)

    def test_div_floor(self):
        assert run_binop("div", 17, 5) == 3

    @given(a=OPERAND, b=OPERAND)
    @settings(max_examples=20, deadline=None)
    def test_add_property(self, a, b):
        assert run_binop("add", a, b) == a + b

    @given(a=OPERAND, b=OPERAND)
    @settings(max_examples=20, deadline=None)
    def test_xor_property(self, a, b):
        # the ISA stores values as Python ints in registers, so the
        # oracle is exact (memory stores mask to 64 bits; registers
        # do not -- an intentional simplification)
        assert run_binop("xor", a, b) == a ^ b


class TestShifts:
    @given(a=st.integers(min_value=0, max_value=2**40), sh=SMALL)
    @settings(max_examples=20, deadline=None)
    def test_shl_shr_roundtrip(self, a, sh):
        machine = build_machine()
        machine.load_asm(0, f"""
            shl r2, r1, {sh}
            shr r3, r2, {sh}
            halt
        """, supervisor=True)
        machine.thread(0).arch.write("r1", a)
        machine.boot(0)
        machine.run(until=1_000)
        assert machine.thread(0).arch.read("r3") == a


class TestBranchOracle:
    @pytest.mark.parametrize("op,taken", [
        ("beq", lambda a, b: a == b),
        ("bne", lambda a, b: a != b),
        ("blt", lambda a, b: a < b),
        ("bge", lambda a, b: a >= b),
    ])
    def test_branch_direction(self, op, taken):
        for a, b in ((1, 1), (1, 2), (2, 1), (-3, 3), (0, 0)):
            machine = build_machine()
            machine.load_asm(0, f"""
                {op} r1, r2, yes
                movi r5, 100
                halt
            yes:
                movi r5, 200
                halt
            """, supervisor=True)
            machine.thread(0).arch.write("r1", a)
            machine.thread(0).arch.write("r2", b)
            machine.boot(0)
            machine.run(until=1_000)
            expected = 200 if taken(a, b) else 100
            assert machine.thread(0).arch.read("r5") == expected, (op, a, b)


class TestJalJr:
    def test_call_and_return(self):
        machine = build_machine()
        machine.load_asm(0, """
            jal r7, func
            movi r2, 99
            halt
        func:
            movi r1, 11
            jr r7
        """, supervisor=True)
        machine.boot(0)
        machine.run(until=1_000)
        thread = machine.thread(0)
        assert thread.arch.read("r1") == 11
        assert thread.arch.read("r2") == 99
        assert thread.finished


class TestFetchAddOracle:
    @given(deltas=st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_accumulates(self, deltas):
        machine = build_machine()
        word = machine.alloc("w", 64)
        body = "\n".join(f"faa r2, r1, {d}" for d in deltas)
        machine.load_asm(0, f"""
            movi r1, W
            {body}
            halt
        """, symbols={"W": word.base}, supervisor=True)
        machine.boot(0)
        machine.run(until=10_000)
        expected = sum(deltas) & 0xFFFF_FFFF_FFFF_FFFF
        assert machine.memory.load(word.base) == expected
