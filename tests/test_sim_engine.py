"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine
from repro.sim.engine import HeapEngine, WheelEngine


def test_time_starts_at_zero():
    assert Engine().now == 0


def test_after_runs_callback_at_right_time():
    engine = Engine()
    seen = []
    engine.after(10, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [10]
    assert engine.now == 10


def test_at_absolute_time():
    engine = Engine()
    seen = []
    engine.at(42, seen.append, "x")
    engine.run()
    assert seen == ["x"]
    assert engine.now == 42


def test_events_fire_in_time_order():
    engine = Engine()
    seen = []
    engine.after(30, seen.append, "c")
    engine.after(10, seen.append, "a")
    engine.after(20, seen.append, "b")
    engine.run()
    assert seen == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    engine = Engine()
    seen = []
    for tag in "abcde":
        engine.after(5, seen.append, tag)
    engine.run()
    assert seen == list("abcde")


def test_scheduling_in_past_raises():
    engine = Engine()
    engine.after(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.at(5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Engine().after(-1, lambda: None)


def test_cancel_prevents_dispatch():
    engine = Engine()
    seen = []
    call = engine.after(10, seen.append, "x")
    call.cancel()
    engine.run()
    assert seen == []


def test_cancel_is_idempotent():
    engine = Engine()
    call = engine.after(10, lambda: None)
    call.cancel()
    call.cancel()
    engine.run()


def test_run_until_stops_before_later_events():
    engine = Engine()
    seen = []
    engine.after(10, seen.append, "early")
    engine.after(100, seen.append, "late")
    engine.run(until=50)
    assert seen == ["early"]
    assert engine.now == 50
    engine.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    engine = Engine()
    engine.run(until=1000)
    assert engine.now == 1000


def test_run_max_events():
    engine = Engine()
    seen = []
    for i in range(5):
        engine.after(i + 1, seen.append, i)
    engine.run(max_events=3)
    assert seen == [0, 1, 2]


def test_callbacks_can_schedule_more_events():
    engine = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            engine.after(10, chain, n + 1)

    engine.after(10, chain, 0)
    engine.run()
    assert seen == [0, 1, 2, 3, 4]
    assert engine.now == 50


def test_pending_events_excludes_cancelled():
    engine = Engine()
    engine.after(10, lambda: None)
    call = engine.after(20, lambda: None)
    call.cancel()
    assert engine.pending_events == 1


def test_events_processed_counter():
    engine = Engine()
    for i in range(7):
        engine.after(i, lambda: None)
    engine.run()
    assert engine.events_processed == 7


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_same_time_callback_from_callback_runs_same_run():
    engine = Engine()
    seen = []
    engine.after(10, lambda: engine.at(10, seen.append, "nested"))
    engine.run()
    assert seen == ["nested"]


def test_mass_cancel_mid_run_keeps_later_events():
    # regression: lazy heap compaction used to rebind self._queue while
    # run() held a local alias to the old list, stranding every event
    # scheduled after the compaction in a heap the dispatch loop never
    # looked at (seen in practice as cluster runs stalling with live
    # events pending)
    engine = Engine()
    seen = []
    cancellable = [engine.at(1_000 + i, seen.append, "dead")
                   for i in range(100)]

    def purge():
        for call in cancellable:
            call.cancel()   # crosses the compaction threshold mid-run
        engine.after(5, seen.append, "scheduled-after-compaction")

    engine.at(10, purge)
    engine.at(2_000, seen.append, "tail")
    engine.run()
    assert seen == ["scheduled-after-compaction", "tail"]
    assert engine.pending_events == 0


@pytest.mark.parametrize("engine_cls", [HeapEngine, WheelEngine])
def test_next_event_time_mid_run_keeps_later_events(engine_cls):
    # regression, same family as the stranded-event compaction bug
    # below: next_event_time used to pop cancelled heads straight off
    # self._queue while run() held a local alias to it, so peeking from
    # inside a callback after a mass cancel could strand every later
    # event in a list the dispatch loop never looked at again. The peek
    # must prune tombstones with the same in-place discipline as
    # _note_cancel.
    engine = engine_cls()
    seen = []
    doomed = [engine.at(1_000 + i, seen.append, "dead") for i in range(100)]

    def probe():
        for call in doomed:
            call.cancel()
        assert engine.next_event_time() == 2_000
        engine.after(5, seen.append, "scheduled-after-peek")

    engine.at(10, probe)
    engine.at(2_000, seen.append, "tail")
    engine.run()
    assert seen == ["scheduled-after-peek", "tail"]
    assert engine.pending_events == 0


def test_compaction_preserves_order_and_count():
    engine = Engine()
    seen = []
    doomed = [engine.at(500 + i, seen.append, f"dead{i}")
              for i in range(80)]
    survivors = [engine.at(10_000 + i, seen.append, i) for i in range(5)]

    def purge():
        for call in doomed:
            call.cancel()
        assert engine.pending_events == len(survivors)

    engine.at(100, purge)
    engine.run()
    assert seen == [0, 1, 2, 3, 4]
