"""Tests for service-time distributions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads import (
    Bimodal,
    BoundedPareto,
    Constant,
    Exponential,
    LogNormal,
)

ALL_DISTS = [
    Constant(1000),
    Exponential(1000),
    Bimodal(500, 50_000, p_long=0.01),
    BoundedPareto(100, 100_000, shape=1.2),
    LogNormal(1000, scv=4.0),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonProperties:
    def test_samples_positive(self, dist):
        rng = random.Random(1)
        assert all(dist.sample(rng) > 0 for _ in range(2000))

    def test_empirical_mean_matches(self, dist):
        rng = random.Random(2)
        n = 60_000
        mean = sum(dist.sample(rng) for _ in range(n)) / n
        assert mean == pytest.approx(dist.mean(), rel=0.15)

    def test_scv_consistent_with_variance(self, dist):
        assert dist.scv() == pytest.approx(
            dist.variance() / dist.mean() ** 2)


class TestConstant:
    def test_zero_variance(self):
        assert Constant(500).variance() == 0
        assert Constant(500).scv() == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            Constant(0)


class TestExponential:
    def test_scv_is_one(self):
        assert Exponential(777).scv() == pytest.approx(1.0)


class TestBimodal:
    def test_mean_formula(self):
        d = Bimodal(100, 10_000, p_long=0.1)
        assert d.mean() == pytest.approx(0.9 * 100 + 0.1 * 10_000)

    def test_high_scv(self):
        assert Bimodal(500, 500_000, p_long=0.001).scv() > 10

    def test_only_two_values_sampled(self):
        d = Bimodal(100, 200, p_long=0.5)
        rng = random.Random(3)
        assert {d.sample(rng) for _ in range(100)} <= {100.0, 200.0}

    def test_rejects_short_ge_long(self):
        with pytest.raises(ConfigError):
            Bimodal(100, 100)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            Bimodal(1, 2, p_long=1.0)


class TestBoundedPareto:
    def test_samples_within_bounds(self):
        d = BoundedPareto(100, 1000, shape=1.5)
        rng = random.Random(4)
        for _ in range(5000):
            s = d.sample(rng)
            assert 100 <= s <= 1000 + 1e-9

    def test_mean_at_shape_one_special_case(self):
        d = BoundedPareto(100, 10_000, shape=1.0)
        rng = random.Random(5)
        n = 80_000
        mean = sum(d.sample(rng) for _ in range(n)) / n
        assert mean == pytest.approx(d.mean(), rel=0.1)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            BoundedPareto(100, 50)


class TestLogNormal:
    def test_mean_parameterization_exact(self):
        d = LogNormal(2500, scv=9.0)
        assert d.mean() == 2500
        assert d.scv() == pytest.approx(9.0)

    def test_scv_sweep_preserves_mean(self):
        rng = random.Random(6)
        for scv in (0.25, 1.0, 4.0, 16.0):
            d = LogNormal(1000, scv=scv)
            n = 120_000
            mean = sum(d.sample(rng) for _ in range(n)) / n
            assert mean == pytest.approx(1000, rel=0.2)

    def test_rejects_nonpositive_scv(self):
        with pytest.raises(ConfigError):
            LogNormal(1000, scv=0)


@given(mean=st.floats(min_value=10, max_value=1e5),
       scv=st.floats(min_value=0.1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_lognormal_moment_parameterization_property(mean, scv):
    d = LogNormal(mean, scv=scv)
    assert d.mean() == pytest.approx(mean)
    assert d.variance() == pytest.approx(scv * mean * mean, rel=1e-9)
