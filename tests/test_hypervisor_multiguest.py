"""Tests for the multi-guest exception-queuing design (Section 3.2)."""

import pytest

from repro.errors import ConfigError
from repro.hypervisor.multiguest import MultiGuestHypervisor


class TestMultiGuestHypervisor:
    def test_single_guest_equivalent_to_demo(self):
        result = MultiGuestHypervisor(guests=1, iterations=4).run()
        assert result.exits_handled_per_guest == [4]

    def test_two_guests_all_exits_serviced(self):
        result = MultiGuestHypervisor(guests=2, iterations=5).run()
        assert result.exits_handled_per_guest == [5, 5]
        assert result.total_exits == 10

    def test_four_guests_all_exits_serviced(self):
        result = MultiGuestHypervisor(guests=4, iterations=3).run()
        assert result.exits_handled_per_guest == [3, 3, 3, 3]

    def test_bursts_coalesce_into_fewer_wakeups(self):
        # simultaneous faults from several guests are drained by one
        # hypervisor scan: wakeups grow sublinearly in total exits
        result = MultiGuestHypervisor(guests=4, iterations=4).run()
        assert result.hv_wakeups < result.total_exits
        assert result.coalescing_ratio > 1.0

    def test_coalescing_improves_with_guest_count(self):
        one = MultiGuestHypervisor(guests=1, iterations=4).run()
        four = MultiGuestHypervisor(guests=4, iterations=4).run()
        assert four.coalescing_ratio > one.coalescing_ratio

    def test_no_descriptor_lost_under_identical_work(self):
        # identical guest timing maximizes collision pressure on the
        # hypervisor's scan loop; nothing may be dropped
        result = MultiGuestHypervisor(guests=3, iterations=6,
                                      guest_work_cycles=1_000).run()
        assert result.total_exits == 18

    def test_wall_time_recorded(self):
        result = MultiGuestHypervisor(guests=2, iterations=3).run()
        assert 0 < result.wall_cycles < 10_000_000

    def test_deterministic(self):
        runs = [MultiGuestHypervisor(guests=2, iterations=3).run()
                for _ in range(2)]
        assert runs[0].wall_cycles == runs[1].wall_cycles
        assert runs[0].hv_wakeups == runs[1].hv_wakeups

    def test_rejects_zero_guests(self):
        with pytest.raises(ConfigError):
            MultiGuestHypervisor(guests=0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            MultiGuestHypervisor(guests=1, iterations=0)
