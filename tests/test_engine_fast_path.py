"""The engine fast path: O(1) pending count, lazy compaction,
run_until_idle, and the run_until horizon the core fast-forward reads."""

import pytest

from repro.sim.engine import (_COMPACT_MIN_QUEUE, Engine, HeapEngine,
                              WheelEngine)


@pytest.fixture(params=["heap", "wheel"])
def make_engine(request):
    return {"heap": HeapEngine, "wheel": WheelEngine}[request.param]


def test_pending_events_counter_tracks_cancel_and_dispatch(make_engine):
    engine = make_engine()
    calls = [engine.at(t, lambda: None) for t in (5, 10, 15)]
    assert engine.pending_events == 3
    calls[1].cancel()
    calls[1].cancel()  # idempotent: must not double-decrement
    assert engine.pending_events == 2
    engine.step()
    assert engine.pending_events == 1
    engine.run()
    assert engine.pending_events == 0


def test_lazy_compaction_prunes_cancelled_entries():
    # heap-specific internals: the wheel frees per-bucket instead
    engine = HeapEngine()
    calls = [engine.at(i + 1, lambda: None)
             for i in range(2 * _COMPACT_MIN_QUEUE)]
    for call in calls[: _COMPACT_MIN_QUEUE + 1]:
        call.cancel()
    # cancelled entries outnumber live ones -> heap was rebuilt
    assert len(engine._queue) == _COMPACT_MIN_QUEUE - 1
    assert engine.pending_events == _COMPACT_MIN_QUEUE - 1
    engine.run()
    assert engine.events_processed == _COMPACT_MIN_QUEUE - 1


def test_wheel_frees_fully_cancelled_buckets_immediately():
    engine = WheelEngine()
    calls = [engine.at(100, lambda: None) for _ in range(6)]
    engine.at(200, lambda: None)
    for call in calls:
        call.cancel()
    # the t=100 bucket went fully dead and was dropped on the spot
    assert 100 not in engine._buckets
    assert engine.pending_events == 1
    assert engine.next_event_time() == 200
    engine.run()
    assert engine.events_processed == 1


def test_run_until_idle_drains_and_returns_last_time(make_engine):
    engine = make_engine()
    seen = []
    engine.at(3, seen.append, "a")
    engine.at(9, seen.append, "b")
    assert engine.run_until_idle() == 9
    assert seen == ["a", "b"]
    assert engine.pending_events == 0


def test_next_event_time_skips_cancelled_heads(make_engine):
    engine = make_engine()
    first = engine.at(4, lambda: None)
    engine.at(7, lambda: None)
    assert engine.next_event_time() == 4
    first.cancel()
    assert engine.next_event_time() == 7


def test_run_until_exposed_only_inside_bounded_run(make_engine):
    engine = make_engine()
    seen = []
    engine.at(5, lambda: seen.append(engine.run_until))
    assert engine.run_until is None
    engine.run(until=50)
    assert seen == [50]
    assert engine.run_until is None
    engine.at(60, lambda: seen.append(engine.run_until))
    engine.run()  # unbounded: no horizon
    assert seen == [50, None]
