"""Tests for tables and experiment-result reports."""

import pytest

from repro.analysis import Claim, ExperimentResult, Table, Verdict
from repro.errors import ConfigError


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("a", 1)
        t.add_row("bb", 22)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row(1234.5)
        t.add_row(12.34)
        t.add_row(0.1234)
        t.add_row(0)
        col = t.column("v")
        assert col == ["1,234", "12.3", "0.123", "0"]

    def test_row_arity_enforced(self):
        t = Table(["a", "b"])
        with pytest.raises(ConfigError):
            t.add_row(1)

    def test_dict_row(self):
        t = Table(["x", "y"])
        t.add_dict_row({"y": 2, "x": 1})
        assert t.column("x") == ["1"]

    def test_markdown_render(self):
        t = Table(["a"], title="T")
        t.add_row("v")
        md = t.render_markdown()
        assert "| a |" in md
        assert "|---|" in md
        assert "| v |" in md

    def test_unknown_column_rejected(self):
        t = Table(["a"])
        with pytest.raises(ConfigError):
            t.column("missing")

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigError):
            Table([])

    def test_len(self):
        t = Table(["a"])
        assert len(t) == 0
        t.add_row(1)
        assert len(t) == 1


class TestExperimentResult:
    def test_claims_and_verdicts(self):
        r = ExperimentResult("EXX", "demo")
        r.add_claim("c1", "p", "m")
        r.add_claim("c2", "p", "m", Verdict.PARTIAL)
        assert r.all_supported()
        r.add_claim("c3", "p", "m", Verdict.REFUTED)
        assert not r.all_supported()

    def test_claim_table_rows(self):
        r = ExperimentResult("EXX", "demo")
        r.add_claim("the claim", "10", "11")
        table = r.claim_table()
        assert len(table) == 1
        assert "supported" in table.rows[0]

    def test_render_includes_tables_and_claims(self):
        r = ExperimentResult("EXX", "demo")
        t = Table(["col"])
        t.add_row("cell")
        r.add_table(t)
        r.add_claim("c", "p", "m")
        text = r.render()
        assert "EXX" in text and "cell" in text and "supported" in text

    def test_render_markdown(self):
        r = ExperimentResult("EXX", "demo")
        r.add_claim("c", "p", "m")
        md = r.render_markdown()
        assert md.startswith("### EXX")

    def test_series_lookup(self):
        r = ExperimentResult("EXX", "demo")
        r.data["a"] = [1, 2]
        assert r.series("a") == [1, 2]
        with pytest.raises(ConfigError) as err:
            r.series("b")
        assert "'a'" in str(err.value)

    def test_claim_as_row(self):
        c = Claim("x", "1", "2", Verdict.SUPPORTED)
        assert c.as_row() == ("x", "1", "2", "supported")
