"""Tests for exceptions-as-data: descriptors, handler chains, triple fault."""

import pytest

from repro import build_machine
from repro.errors import TripleFault
from repro.hw import ExceptionDescriptor, ExceptionKind, PtidState
from repro.hw.exceptions import acknowledge, descriptor_present
from repro.mem import Memory


class TestDescriptorEncoding:
    def test_write_read_roundtrip(self):
        mem = Memory()
        edp = mem.alloc("edp", 64).base
        descriptor = ExceptionDescriptor.build(
            ExceptionKind.PAGE_FAULT, ptid=3, pc=17, address=0xDEAD0, timestamp=42)
        descriptor.write(mem, edp)
        back = ExceptionDescriptor.read(mem, edp)
        assert back == descriptor

    def test_sequence_numbers_increase(self):
        d1 = ExceptionDescriptor.build(ExceptionKind.DIV_ZERO, 0, 0, 0, 0)
        d2 = ExceptionDescriptor.build(ExceptionKind.DIV_ZERO, 0, 0, 0, 0)
        assert d2.seq > d1.seq > 0

    def test_descriptor_present_and_acknowledge(self):
        mem = Memory()
        edp = mem.alloc("edp", 64).base
        assert not descriptor_present(mem, edp)
        ExceptionDescriptor.build(
            ExceptionKind.SYSCALL, 1, 2, 3, 4).write(mem, edp)
        assert descriptor_present(mem, edp)
        descriptor = acknowledge(mem, edp)
        assert descriptor.kind is ExceptionKind.SYSCALL
        assert not descriptor_present(mem, edp)

    def test_descriptor_write_triggers_watch_on_edp_line(self):
        # this is how handler ptids learn about exceptions
        mem = Memory()
        edp = mem.alloc("edp", 64).base
        watch = mem.watch_bus.watch(edp)
        ExceptionDescriptor.build(ExceptionKind.DIV_ZERO, 0, 0, 0, 0).write(mem, edp)
        assert watch.trigger_count >= 1


class TestFaultingGuests:
    def _machine_with_handler_area(self):
        machine = build_machine(hw_threads_per_core=16)
        edp = machine.alloc("edp0", 64)
        return machine, edp

    def _run_faulting(self, source, symbols=None):
        machine, edp = self._machine_with_handler_area()
        machine.load_asm(0, source, symbols=symbols, supervisor=True,
                         edp=edp.base)
        machine.boot(0)
        machine.run(until=100_000)
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        return machine, descriptor

    def test_div_zero_writes_descriptor_and_disables(self):
        machine, descriptor = self._run_faulting("""
            movi r1, 10
            movi r2, 0
            div r3, r1, r2
            halt
        """)
        assert descriptor.kind is ExceptionKind.DIV_ZERO
        assert descriptor.pc == 2  # the div
        thread = machine.thread(0)
        assert thread.state is PtidState.DISABLED
        assert not thread.finished
        assert thread.exceptions_raised == 1

    def test_misaligned_load_faults_with_address(self):
        machine, descriptor = self._run_faulting("""
            movi r1, 0x1001
            ld r2, r1, 0
            halt
        """)
        assert descriptor.kind is ExceptionKind.ALIGNMENT_FAULT
        assert descriptor.address == 0x1001

    def test_page_fault_in_strict_memory(self):
        machine = build_machine(hw_threads_per_core=16, strict_memory=True)
        edp = machine.alloc("edp0", 64)
        machine.load_asm(0, """
            movi r1, 0x900000
            ld r2, r1, 0
            halt
        """, supervisor=True, edp=edp.base)
        machine.boot(0)
        machine.run(until=100_000)
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        assert descriptor.kind is ExceptionKind.PAGE_FAULT
        assert descriptor.address == 0x900000

    def test_trap_writes_syscall_descriptor(self):
        machine, descriptor = self._run_faulting("trap 42\nhalt")
        assert descriptor.kind is ExceptionKind.SYSCALL
        assert descriptor.address == 42

    def test_privop_from_user_mode_faults(self):
        machine = build_machine(hw_threads_per_core=16)
        edp = machine.alloc("edp0", 64)
        machine.load_asm(0, "privop 7\nhalt", supervisor=False, edp=edp.base)
        machine.boot(0)
        machine.run(until=10_000)
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        assert descriptor.kind is ExceptionKind.PRIVILEGE_FAULT
        assert descriptor.address == 7

    def test_privop_in_supervisor_mode_continues(self):
        machine, _ = self._machine_with_handler_area()
        machine.load_asm(0, "privop 7\nmovi r1, 1\nhalt", supervisor=True)
        machine.boot(0)
        machine.run()
        assert machine.thread(0).finished
        assert machine.thread(0).arch.read("r1") == 1

    def test_csrw_tdtr_from_user_mode_faults(self):
        machine = build_machine(hw_threads_per_core=16)
        edp = machine.alloc("edp0", 64)
        machine.load_asm(0, """
            movi r1, 0x5000
            csrw tdtr, r1
            halt
        """, supervisor=False, edp=edp.base)
        machine.boot(0)
        machine.run(until=10_000)
        descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
        assert descriptor.kind is ExceptionKind.PRIVILEGE_FAULT

    def test_csrw_edp_from_user_mode_allowed(self):
        machine = build_machine(hw_threads_per_core=16)
        machine.load_asm(0, """
            movi r1, 0x5000
            csrw edp, r1
            csrr r2, edp
            halt
        """, supervisor=False)
        machine.boot(0)
        machine.run()
        assert machine.thread(0).finished
        assert machine.thread(0).arch.read("r2") == 0x5000


class TestHandlerChains:
    def test_handler_thread_wakes_on_guest_fault(self):
        """A handler ptid monitors the guest's edp line and restarts it."""
        machine = build_machine(hw_threads_per_core=16)
        edp = machine.alloc("guest-edp", 64)
        # guest: divides by zero, then (after handler fixes r2) succeeds
        machine.load_asm(0, """
            movi r1, 10
            div r3, r1, r2     ; r2 == 0 -> fault
            halt
        """, supervisor=False, edp=edp.base)
        # handler: wait for a descriptor, patch guest r2 := 2, rewind pc
        # to the div, restart the guest. Uses the canonical race-free
        # protocol: arm the monitor, THEN check the present flag, THEN
        # mwait -- a descriptor that landed before arming is not lost.
        machine.load_asm(1, """
            movi r1, EDP
            monitor r1
            ld r2, r1, 0       ; descriptor-present (seq) word
            bne r2, r0, ready  ; already there: skip the wait
            mwait
        ready:
            movi r4, 2
            rpush 0, r2, r4    ; guest r2 <- 2
            movi r5, 1
            rpush 0, pc, r5    ; guest pc <- 1 (retry the div)
            start 0
            halt
        """, symbols={"EDP": edp.base}, supervisor=True)
        machine.boot(0)
        machine.boot(1)
        machine.run()
        guest = machine.thread(0)
        assert guest.finished
        assert guest.arch.read("r3") == 5  # 10 // 2

    def test_consecutive_exceptions_chain(self):
        """B faults while handling A's fault; C handles B's. The chain
        works as long as every handler has its own handler (Section 3.2)."""
        machine = build_machine(hw_threads_per_core=16)
        edp_a = machine.alloc("edp-a", 64)
        edp_b = machine.alloc("edp-b", 64)
        # A: div by zero
        machine.load_asm(0, "movi r1, 1\nmovi r2, 0\ndiv r3, r1, r2\nhalt",
                         edp=edp_a.base)
        # B: handles A, but *itself* divides by zero mid-handler
        machine.load_asm(1, """
            movi r1, EDPA
            monitor r1
            mwait
            movi r4, 0
            div r5, r4, r4     ; B faults too
            halt
        """, symbols={"EDPA": edp_a.base}, supervisor=True, edp=edp_b.base)
        # C: handles B by patching its registers and restarting it past
        # the bad div (pc 6 = halt)
        machine.load_asm(2, """
            movi r1, EDPB
            monitor r1
            mwait
            movi r4, 6
            rpush 1, pc, r4
            start 1
            halt
        """, symbols={"EDPB": edp_b.base}, supervisor=True)
        for ptid in (0, 1, 2):
            machine.boot(ptid)
        machine.run()
        machine.check()  # no triple fault
        assert machine.thread(1).finished
        assert machine.thread(2).finished
        # A stays disabled: B never got to restart it, and that's fine
        assert machine.thread(0).state is PtidState.DISABLED

    def test_triple_fault_halts_core(self):
        """A fault with edp=0 is 'akin to a triple-fault'."""
        machine = build_machine(hw_threads_per_core=8)
        machine.load_asm(0, "movi r1, 1\nmovi r2, 0\ndiv r3, r1, r2\nhalt",
                         supervisor=True)  # no edp!
        machine.boot(0)
        machine.run(until=10_000)
        core = machine.core(0)
        assert core.halted
        assert "triple fault" in core.halt_reason
        with pytest.raises(TripleFault):
            machine.check()

    def test_core_stops_issuing_after_triple_fault(self):
        machine = build_machine(hw_threads_per_core=8)
        machine.load_asm(0, "movi r2, 0\ndiv r3, r2, r2\nhalt", supervisor=True)
        machine.load_asm(1, "work 100000\nhalt", supervisor=True)
        machine.boot(0)
        machine.boot(1)
        machine.run(until=50_000)
        assert machine.core(0).halted
        assert not machine.thread(1).finished  # work never completed
