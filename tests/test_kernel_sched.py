"""Tests for the queueing disciplines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.kernel import FifoServer, ProcessorSharingServer, RoundRobinServer
from repro.kernel.sched import feed_trace
from repro.sim.engine import Engine
from repro.sim.process import Signal
from repro.workloads import (
    Bimodal,
    PoissonArrivals,
    Request,
    RequestGenerator,
    gap_for_load,
)


def run_server(factory, trace):
    engine = Engine()
    server = factory(engine)
    feed_trace(engine, server, trace)
    engine.run()
    return server


def simple_trace(arrivals_and_services):
    return [Request(i, arrival_time=a, service_cycles=s)
            for i, (a, s) in enumerate(arrivals_and_services)]


class TestFifoServer:
    def test_back_to_back_service(self):
        trace = simple_trace([(10, 100), (20, 100)])
        server = run_server(FifoServer, trace)
        assert server.completed == 2
        # second request waits for the first: latency 100 + (110-20) = 190
        assert trace[0].finish_time == 110
        assert trace[1].finish_time == 210

    def test_idle_gap_no_carryover(self):
        trace = simple_trace([(10, 50), (1000, 50)])
        server = run_server(FifoServer, trace)
        assert trace[1].finish_time == 1050

    def test_busy_cycles_sum(self):
        trace = simple_trace([(1, 100), (2, 300)])
        server = run_server(FifoServer, trace)
        assert server.busy_cycles == 400

    def test_order_preserved(self):
        trace = simple_trace([(10, 500), (11, 10), (12, 10)])
        run_server(FifoServer, trace)
        assert trace[0].finish_time < trace[1].finish_time \
            < trace[2].finish_time


class TestRoundRobinServer:
    def test_quantum_slices_interleave(self):
        trace = simple_trace([(0, 200), (1, 200)])
        server = run_server(
            lambda e: RoundRobinServer(e, quantum=100, switch_cost=0), trace)
        # both make progress; completion within ~400 cycles of start
        assert server.completed == 2
        assert abs(trace[0].finish_time - trace[1].finish_time) <= 101

    def test_zero_switch_cost_no_overhead(self):
        trace = simple_trace([(0, 500), (0, 500)])
        server = run_server(
            lambda e: RoundRobinServer(e, quantum=50, switch_cost=0), trace)
        assert server.overhead_cycles == 0

    def test_switch_cost_accumulates(self):
        trace = simple_trace([(0, 500), (0, 500)])
        server = run_server(
            lambda e: RoundRobinServer(e, quantum=50, switch_cost=10), trace)
        assert server.overhead_cycles > 0

    def test_single_job_never_pays_switch(self):
        trace = simple_trace([(0, 1000)])
        server = run_server(
            lambda e: RoundRobinServer(e, quantum=10, switch_cost=100), trace)
        assert server.overhead_cycles == 0
        assert trace[0].finish_time == pytest.approx(1000, abs=2)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ConfigError):
            RoundRobinServer(Engine(), quantum=0)

    def test_rejects_negative_switch_cost(self):
        with pytest.raises(ConfigError):
            RoundRobinServer(Engine(), quantum=10, switch_cost=-1)


class TestProcessorSharingServer:
    def test_single_job_runs_at_full_rate(self):
        trace = simple_trace([(0, 1000)])
        run_server(ProcessorSharingServer, trace)
        assert trace[0].finish_time == pytest.approx(1000, abs=2)

    def test_two_jobs_share_equally(self):
        trace = simple_trace([(0, 1000), (0, 1000)])
        run_server(ProcessorSharingServer, trace)
        # each progresses at 1/2: both finish around t=2000
        assert trace[0].finish_time == pytest.approx(2000, abs=5)
        assert trace[1].finish_time == pytest.approx(2000, abs=5)

    def test_short_job_overtakes_long_one(self):
        trace = simple_trace([(0, 10_000), (100, 200)])
        run_server(ProcessorSharingServer, trace)
        assert trace[1].finish_time < trace[0].finish_time
        # short job: 100 alone? no -- long job running; shares at 1/2
        assert trace[1].finish_time == pytest.approx(100 + 400, abs=10)

    def test_busy_cycles_equal_total_demand(self):
        trace = simple_trace([(0, 300), (50, 500)])
        server = run_server(ProcessorSharingServer, trace)
        assert server.busy_cycles == pytest.approx(800, abs=10)

    def test_done_signal_fires(self):
        engine = Engine()
        server = ProcessorSharingServer(engine)
        done = Signal("d")
        hits = []
        done.add_waiter(hits.append)
        engine.at(0, server.offer,
                  Request(0, 0.0, 100, payload={"done": done}))
        engine.run()
        assert len(hits) == 1

    def test_multi_server_two_jobs_two_cores_full_rate(self):
        trace = simple_trace([(0, 1000), (0, 1000)])
        engine = Engine()
        server = ProcessorSharingServer(engine, servers=2)
        feed_trace(engine, server, trace)
        engine.run()
        assert trace[0].finish_time == pytest.approx(1000, abs=5)
        assert trace[1].finish_time == pytest.approx(1000, abs=5)

    def test_multi_server_oversubscription_shares(self):
        # 4 jobs on 2 cores: each runs at rate 1/2
        trace = simple_trace([(0, 1000)] * 4)
        engine = Engine()
        server = ProcessorSharingServer(engine, servers=2)
        feed_trace(engine, server, trace)
        engine.run()
        for request in trace:
            assert request.finish_time == pytest.approx(2000, abs=10)

    def test_multi_server_busy_counts_server_cycles(self):
        trace = simple_trace([(0, 600), (0, 600)])
        engine = Engine()
        server = ProcessorSharingServer(engine, servers=2)
        feed_trace(engine, server, trace)
        engine.run()
        assert server.busy_cycles == pytest.approx(1200, abs=20)

    def test_rejects_zero_servers(self):
        with pytest.raises(ConfigError):
            ProcessorSharingServer(Engine(), servers=0)

    def test_ps_beats_fifo_under_high_variability(self):
        # the paper's Section 4 claim, as a regression test
        svc = Bimodal(500, 50_000, p_long=0.01)
        gen = RequestGenerator(PoissonArrivals(gap_for_load(svc, 0.6)),
                               svc, random.Random(7))
        trace_a = gen.trace(3000)
        trace_b = [Request(r.req_id, r.arrival_time, r.service_cycles)
                   for r in trace_a]
        fifo = run_server(FifoServer, trace_a)
        ps = run_server(ProcessorSharingServer, trace_b)
        assert ps.recorder.pct(99) < fifo.recorder.pct(99)
        assert ps.recorder.mean() < fifo.recorder.mean()


@given(services=st.lists(st.integers(min_value=1, max_value=5000),
                         min_size=1, max_size=30))
@settings(max_examples=30, deadline=None)
def test_all_disciplines_conserve_requests_property(services):
    trace_template = [(i * 100, s) for i, s in enumerate(services)]
    for factory in (FifoServer,
                    ProcessorSharingServer,
                    lambda e: RoundRobinServer(e, quantum=97, switch_cost=3)):
        trace = simple_trace(trace_template)
        server = run_server(factory, trace)
        assert server.completed == len(services)
        assert all(r.finish_time is not None for r in trace)
        # no request finishes before its arrival + service
        for r in trace:
            assert r.finish_time >= r.arrival_time + 0.5 * r.service_cycles


class _ResidualRecordingPS(ProcessorSharingServer):
    """PS that records, for every finished job, how much virtual work
    its heap key still had outstanding at the moment it was popped."""

    def __init__(self, engine, **kwargs):
        super().__init__(engine, **kwargs)
        self._keys = {}
        self.residuals = []

    def offer(self, request):
        super().offer(request)
        # reconstruct the key offer() just pushed: progress has already
        # been advanced to the offer instant
        self._keys[request.req_id] = (
            max(1.0, float(request.service_cycles)) + self._progress)

    def _finish(self, request):
        self.residuals.append(self._keys.pop(request.req_id)
                              - self._progress)
        super()._finish(request)


@given(jobs=st.lists(st.tuples(st.integers(min_value=0, max_value=4000),
                               st.integers(min_value=1, max_value=9000)),
                     min_size=1, max_size=25),
       servers=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_ps_never_completes_with_residual_work_property(jobs, servers):
    """The epsilon-aware completion pop must never finish a job that
    still has more than COMPLETION_EPSILON virtual cycles of key left:
    integer deadline rounding may land the timer half a cycle early,
    but a genuinely unfinished job is re-armed, not force-popped."""
    arrival = 0
    trace = []
    for i, (gap, service) in enumerate(jobs):
        arrival += gap
        trace.append(Request(i, arrival_time=arrival,
                             service_cycles=service))
    engine = Engine()
    server = _ResidualRecordingPS(engine, servers=servers)
    feed_trace(engine, server, trace)
    engine.run()
    assert server.completed == len(jobs)
    eps = ProcessorSharingServer.COMPLETION_EPSILON
    assert all(residual <= eps + 1e-9 for residual in server.residuals)
