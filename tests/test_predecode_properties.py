"""Property tests for the decoded-dispatch and WRR-issue contracts.

Two randomized equivalences back the E18 claims:

- *decode transparency*: for random programs over the ALU / memory /
  branch / work subset, a machine running the pre-decoded handler
  chains finishes with exactly the architectural state, retirement
  counts, busy-cycle totals, and final clock of the naive interpreter;
- *WRR degenerates to RR*: at uniform weights the credit walk of
  :class:`~repro.hw.issue.WeightedRoundRobinIssue` must reproduce
  :class:`~repro.hw.issue.RoundRobinIssue`'s pick stream exactly --
  pointer arithmetic and all -- over arbitrary issueable subsets and
  widths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_machine
from repro.hw.issue import RoundRobinIssue, WeightedRoundRobinIssue

# ----------------------------------------------------------------------
# random straight-line-with-forward-branches programs
# ----------------------------------------------------------------------

_ALU = st.sampled_from(["addi {d}, {a}, {imm}", "add {d}, {a}, {b}",
                        "sub {d}, {a}, {b}", "xor {d}, {a}, {b}",
                        "shl {d}, {a}, {shift}", "shr {d}, {a}, {shift}",
                        "movi {d}, {imm}", "mov {d}, {a}",
                        "mul {d}, {a}, {b}"])
_REG = st.integers(min_value=1, max_value=7)


@st.composite
def _programs(draw):
    """A terminating program: random ALU/work/load/store body with only
    forward skips, ending in halt. Termination is structural (pc is
    strictly increasing except for bounded skips forward)."""
    body = []
    length = draw(st.integers(min_value=1, max_value=14))
    for index in range(length):
        kind = draw(st.integers(min_value=0, max_value=9))
        if kind <= 5:
            tmpl = draw(_ALU)
            body.append(tmpl.format(
                d=f"r{draw(_REG)}", a=f"r{draw(_REG)}", b=f"r{draw(_REG)}",
                imm=draw(st.integers(min_value=-64, max_value=64)),
                shift=draw(st.integers(min_value=0, max_value=8))))
        elif kind == 6:
            body.append(f"work {draw(st.integers(min_value=1, max_value=50))}")
        elif kind == 7:
            body.append(f"ld r{draw(_REG)}, r0, BUF")
        elif kind == 8:
            body.append(f"st r0, BUF, r{draw(_REG)}")
        else:
            # forward skip: branch to the label at the end of the body
            body.append(f"bne r{draw(_REG)}, r0, end")
    body.append("end:")
    body.append("halt")
    return "\n".join(body)


@given(sources=st.lists(_programs(), min_size=1, max_size=3),
       smt_width=st.integers(min_value=1, max_value=2))
@settings(max_examples=40, deadline=None)
def test_predecoded_runs_match_naive(sources, smt_width):
    def run(predecode):
        machine = build_machine(cores=1, hw_threads_per_core=4,
                                smt_width=smt_width, predecode=predecode)
        buf = machine.alloc("buf", 64)
        for ptid, source in enumerate(sources):
            machine.load_asm(ptid, source, supervisor=True,
                             symbols={"BUF": buf.base})
            machine.boot(ptid)
        machine.run()
        threads = [machine.thread(p) for p in range(len(sources))]
        return {
            "now": machine.engine.now,
            "snapshots": [t.arch.snapshot() for t in threads],
            "instructions": [t.instructions_executed for t in threads],
            "cycles_busy": [t.cycles_busy for t in threads],
            "finished": [t.finished for t in threads],
        }

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# WRR == RR at uniform weights
# ----------------------------------------------------------------------

class _Thread:
    __slots__ = ("ptid", "priority")

    def __init__(self, ptid, priority=1):
        self.ptid = ptid
        self.priority = priority


@given(rounds=st.lists(
    st.tuples(st.sets(st.integers(min_value=0, max_value=7),
                      min_size=1, max_size=8),
              st.integers(min_value=1, max_value=4)),
    min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_wrr_equals_rr_at_uniform_weights(rounds):
    pool = {ptid: _Thread(ptid) for ptid in range(8)}
    rr, wrr = RoundRobinIssue(), WeightedRoundRobinIssue()
    seen = set()
    for members, width in rounds:
        issueable = [pool[p] for p in sorted(members)]
        for thread in issueable:
            if thread.ptid not in seen:       # a ptid joining the pool
                seen.add(thread.ptid)
                rr.note_enqueue(thread)
                wrr.note_enqueue(thread)
        rr_picks = [t.ptid for t in rr.select(issueable, width)]
        wrr_picks = [t.ptid for t in wrr.select(issueable, width)]
        assert rr_picks == wrr_picks
        assert rr._next % len(issueable) == wrr._next % len(issueable)
