"""Tests for microkernel IPC and services."""

import pytest

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.microkernel import DirectStartIpc, SchedulerIpc, ServiceClient
from repro.microkernel.services import (
    MicrokernelService,
    container_proxy_service,
    filesystem_service,
    netstack_service,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads import Constant, DeterministicArrivals


def single_call(ipc, work=1_000):
    engine = ipc.engine
    finished = []

    def caller():
        started = engine.now
        yield from ipc.call(work)
        finished.append(engine.now - started)

    engine.spawn(caller())
    engine.run()
    return finished[0]


class TestSchedulerIpc:
    def test_rtt_closed_form(self):
        costs = CostModel()
        ipc = SchedulerIpc(Engine(), costs)
        one_way = (costs.mode_switch_cycles + costs.scheduler_cycles
                   + costs.sw_switch_cycles + costs.cache_pollution_cycles)
        assert ipc.one_way_cycles() == one_way
        assert ipc.rtt_cycles(500) == 2 * one_way + 500

    def test_measured_call_at_least_rtt(self):
        ipc = SchedulerIpc(Engine(), CostModel())
        latency = single_call(ipc, work=1_000)
        assert latency >= ipc.rtt_cycles(1_000)

    def test_accounting_charged(self):
        ipc = SchedulerIpc(Engine(), CostModel())
        single_call(ipc)
        assert ipc.accounting.mode_switches == 2
        assert ipc.accounting.scheduler_invocations == 2
        assert ipc.accounting.switches == 2


class TestDirectStartIpc:
    def test_rtt_tens_of_cycles(self):
        ipc = DirectStartIpc(Engine(), CostModel())
        assert ipc.rtt_cycles(0) < 100

    def test_measured_call_close_to_rtt(self):
        ipc = DirectStartIpc(Engine(), CostModel())
        latency = single_call(ipc, work=1_000)
        assert latency == pytest.approx(ipc.rtt_cycles(1_000), abs=5)

    def test_tier_affects_cost(self):
        rf = DirectStartIpc(Engine(), CostModel(), tier="rf")
        l3 = DirectStartIpc(Engine(), CostModel(), tier="l3")
        assert l3.rtt_cycles(0) > rf.rtt_cycles(0)

    def test_faster_than_scheduler_ipc(self):
        # null call: pure mechanism cost, no service work to hide it
        sched = single_call(SchedulerIpc(Engine(), CostModel()), work=1)
        direct = single_call(DirectStartIpc(Engine(), CostModel()), work=1)
        assert direct * 10 < sched

    def test_rejects_bad_tier(self):
        with pytest.raises(ConfigError):
            DirectStartIpc(Engine(), tier="floppy")


class TestServiceQueueing:
    def test_concurrent_calls_serialize_at_service(self):
        # two simultaneous 1000-cycle calls: second finishes ~1000 later
        engine = Engine()
        ipc = DirectStartIpc(engine, CostModel())
        finish = []

        def caller():
            yield from ipc.call(1_000)
            finish.append(engine.now)

        engine.spawn(caller())
        engine.spawn(caller())
        engine.run()
        assert finish[1] - finish[0] >= 900


class TestServices:
    def test_named_operations(self):
        fs = filesystem_service()
        assert fs.operation("read").mean() > 0
        assert fs.operation("write").mean() > fs.operation("read").mean()
        net = netstack_service()
        assert set(net.operations) == {"rx", "tx"}
        proxy = container_proxy_service()
        assert set(proxy.operations) == {"filter", "route"}

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigError) as err:
            filesystem_service().operation("fsync")
        assert "read" in str(err.value)

    def test_client_records_all_calls(self):
        engine = Engine()
        ipc = DirectStartIpc(engine, CostModel())
        service = MicrokernelService("t", {"op": Constant(500)})
        client = ServiceClient(engine, ipc, service, "op",
                               DeterministicArrivals(5_000),
                               RngStreams(3).stream("c"), max_calls=10)
        engine.run()
        assert client.completed == 10
        assert client.finished_at is not None
        assert client.throughput_per_kcycle() > 0

    def test_client_latency_matches_rtt_at_low_load(self):
        engine = Engine()
        ipc = DirectStartIpc(engine, CostModel())
        service = MicrokernelService("t", {"op": Constant(500)})
        client = ServiceClient(engine, ipc, service, "op",
                               DeterministicArrivals(50_000),
                               RngStreams(3).stream("c"), max_calls=5)
        engine.run()
        assert client.recorder.pct(50) == pytest.approx(
            ipc.rtt_cycles(500), abs=5)

    def test_client_rejects_zero_calls(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            ServiceClient(engine, DirectStartIpc(engine),
                          filesystem_service(), "read",
                          DeterministicArrivals(100),
                          RngStreams(1).stream("x"), max_calls=0)

    def test_closed_loop_population_completes(self):
        from repro.microkernel import ClosedLoopClients
        engine = Engine()
        ipc = DirectStartIpc(engine, CostModel())
        service = MicrokernelService("t", {"op": Constant(500)})
        population = ClosedLoopClients(
            engine, ipc, service, "op", clients=4, think_cycles=2_000,
            rng=RngStreams(5).stream("cl"), calls_per_client=10)
        engine.run()
        assert population.completed == 40
        assert population.finished_at is not None
        assert population.throughput_per_kcycle() > 0

    def test_closed_loop_self_regulates(self):
        # closed loop never diverges: slower IPC -> lower throughput,
        # but every call still completes
        from repro.microkernel import ClosedLoopClients
        throughputs = {}
        for name, ipc_cls in (("direct", DirectStartIpc),
                              ("sched", SchedulerIpc)):
            engine = Engine()
            population = ClosedLoopClients(
                engine, ipc_cls(engine, CostModel()),
                MicrokernelService("t", {"op": Constant(800)}), "op",
                clients=8, think_cycles=1_000,
                rng=RngStreams(6).stream(name), calls_per_client=15)
            engine.run()
            assert population.completed == 120
            throughputs[name] = population.throughput_per_kcycle()
        assert throughputs["direct"] > throughputs["sched"]

    def test_closed_loop_validates(self):
        from repro.microkernel import ClosedLoopClients
        engine = Engine()
        with pytest.raises(ConfigError):
            ClosedLoopClients(engine, DirectStartIpc(engine),
                              filesystem_service(), "read", clients=0,
                              think_cycles=1, rng=RngStreams(1).stream("x"),
                              calls_per_client=1)

    def test_throughput_requires_finish(self):
        engine = Engine()
        client = ServiceClient(engine, DirectStartIpc(engine),
                               filesystem_service(), "read",
                               DeterministicArrivals(100),
                               RngStreams(1).stream("x"), max_calls=5)
        with pytest.raises(ConfigError):
            client.throughput_per_kcycle()
