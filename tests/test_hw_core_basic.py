"""Tests for basic program execution on the hardware core."""

import pytest

from repro import build_machine
from repro.errors import ConfigError
from repro.hw import PtidState


def run_program(source, until=100_000, **kwargs):
    machine = build_machine(**kwargs)
    machine.load_asm(0, source, supervisor=True)
    machine.boot(0)
    machine.run(until=until)
    return machine


def test_arithmetic_loop():
    # sum 1..10 into r2
    machine = run_program("""
        movi r1, 10
        movi r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    """)
    thread = machine.thread(0)
    assert thread.arch.read("r2") == 55
    assert thread.finished
    assert thread.state is PtidState.DISABLED


def test_memory_load_store():
    machine = build_machine()
    buf = machine.alloc("buf", 64)
    machine.load_asm(0, """
        movi r1, BUF
        movi r2, 77
        st r1, 0, r2
        ld r3, r1, 0
        halt
    """, symbols={"BUF": buf.base}, supervisor=True)
    machine.boot(0)
    machine.run()
    assert machine.memory.load(buf.base) == 77
    assert machine.thread(0).arch.read("r3") == 77


def test_fetch_add_instruction():
    machine = build_machine()
    counter = machine.alloc("counter", 8)
    machine.load_asm(0, """
        movi r1, CTR
        faa r2, r1, 5
        faa r3, r1, 2
        halt
    """, symbols={"CTR": counter.base}, supervisor=True)
    machine.boot(0)
    machine.run()
    assert machine.thread(0).arch.read("r2") == 5
    assert machine.thread(0).arch.read("r3") == 7


def test_work_consumes_cycles():
    machine = run_program("work 500\nhalt")
    thread = machine.thread(0)
    assert thread.cycles_busy >= 500


def test_fwork_dirties_vector_state():
    machine = run_program("fwork 10\nhalt")
    assert machine.thread(0).arch.vector_dirty
    assert machine.thread(0).arch.footprint_bytes() == 784


def test_jal_jr_subroutine():
    machine = run_program("""
        jal r14, sub
        movi r2, 1
        halt
    sub:
        movi r3, 42
        jr r14
    """)
    thread = machine.thread(0)
    assert thread.arch.read("r3") == 42
    assert thread.arch.read("r2") == 1


def test_running_off_program_end_halts():
    machine = run_program("nop\nnop")
    assert machine.thread(0).finished


def test_two_ptids_interleave():
    machine = build_machine(smt_width=1)
    machine.load_asm(0, "work 50\nmovi r1, 1\nhalt", supervisor=True)
    machine.load_asm(1, "work 50\nmovi r1, 2\nhalt", supervisor=True)
    machine.boot(0)
    machine.boot(1)
    machine.run()
    assert machine.thread(0).arch.read("r1") == 1
    assert machine.thread(1).arch.read("r1") == 2
    # with smt_width=1 and both busy, total time covers both works
    assert machine.engine.now >= 100


def test_smt_width_2_overlaps_work():
    machine = build_machine(smt_width=2)
    machine.load_asm(0, "work 1000\nhalt", supervisor=True)
    machine.load_asm(1, "work 1000\nhalt", supervisor=True)
    machine.boot(0)
    machine.boot(1)
    machine.run()
    # both works overlap on two SMT slots: finish well before 2000
    assert machine.engine.now < 1500


def test_engine_idles_when_all_threads_halt():
    machine = run_program("halt")
    assert machine.engine.pending_events == 0
    assert machine.core(0).idle()


def test_instruction_and_issue_stats():
    machine = run_program("nop\nnop\nnop\nhalt")
    assert machine.thread(0).instructions_executed == 4
    assert machine.core(0).instructions_retired == 4
    assert machine.core(0).issue_rounds >= 4


def test_invalid_config_rejected():
    with pytest.raises(ConfigError):
        build_machine(cores=0)
    with pytest.raises(ConfigError):
        build_machine(hw_threads_per_core=0)
    with pytest.raises(ConfigError):
        build_machine(security_model="voodoo")


def test_thread_priority_validation():
    machine = build_machine()
    with pytest.raises(ConfigError):
        machine.core(0).set_priority(0, 0)


def test_shift_instructions():
    machine = run_program("""
        movi r1, 3
        shl r2, r1, 4
        shr r3, r2, 2
        halt
    """)
    assert machine.thread(0).arch.read("r2") == 48
    assert machine.thread(0).arch.read("r3") == 12


def test_logic_instructions():
    machine = run_program("""
        movi r1, 12
        movi r2, 10
        and r3, r1, r2
        or r4, r1, r2
        xor r5, r1, r2
        halt
    """)
    thread = machine.thread(0)
    assert thread.arch.read("r3") == 8
    assert thread.arch.read("r4") == 14
    assert thread.arch.read("r5") == 6
