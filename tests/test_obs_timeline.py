"""Tests for span-based per-ptid timelines."""

from repro.machine import build_machine
from repro.obs.timeline import Instant, Span, ThreadState, Timeline


class TestSpans:
    def test_transition_closes_previous_span(self):
        timeline = Timeline()
        timeline.transition(0, 0, ThreadState.RUNNING, 10)
        timeline.transition(0, 0, ThreadState.MWAIT, 50)
        assert timeline.spans == [
            Span(0, 0, ThreadState.RUNNING, 10, 50)]
        assert timeline.open_spans() == [(0, 0, ThreadState.MWAIT, 50)]

    def test_same_state_transitions_coalesce(self):
        timeline = Timeline()
        timeline.transition(0, 3, ThreadState.RUNNING, 0)
        timeline.transition(0, 3, ThreadState.RUNNING, 40)
        timeline.transition(0, 3, ThreadState.STOPPED, 100)
        assert timeline.spans == [
            Span(0, 3, ThreadState.RUNNING, 0, 100)]

    def test_zero_length_spans_are_skipped(self):
        timeline = Timeline()
        timeline.transition(0, 0, ThreadState.RUNNING, 5)
        timeline.transition(0, 0, ThreadState.MWAIT, 5)  # same cycle
        timeline.transition(0, 0, ThreadState.RUNNING, 9)
        assert [s.state for s in timeline.spans] == [ThreadState.MWAIT]

    def test_ptids_and_cores_tracked_independently(self):
        timeline = Timeline()
        timeline.transition(0, 0, ThreadState.RUNNING, 0)
        timeline.transition(1, 0, ThreadState.MWAIT, 0)
        timeline.transition(0, 1, ThreadState.STOPPED, 0)
        timeline.transition(0, 0, ThreadState.MWAIT, 10)
        assert len(timeline.spans) == 1
        assert timeline.spans_for(0, 0)[0].duration == 10
        assert len(timeline.open_spans()) == 3

    def test_finish_closes_open_spans_at_run_end(self):
        timeline = Timeline()
        timeline.transition(0, 0, ThreadState.RUNNING, 0)
        timeline.transition(0, 1, ThreadState.MWAIT, 25)
        timeline.finish(100)
        assert timeline.open_spans() == []
        assert timeline.finished_at == 100
        ends = {(s.ptid, s.end) for s in timeline.spans}
        assert ends == {(0, 100), (1, 100)}

    def test_finish_is_idempotent(self):
        timeline = Timeline()
        timeline.transition(0, 0, ThreadState.RUNNING, 0)
        timeline.finish(50)
        timeline.finish(60)
        assert len(timeline.spans) == 1

    def test_state_totals(self):
        timeline = Timeline()
        timeline.transition(0, 0, ThreadState.RUNNING, 0)
        timeline.transition(0, 0, ThreadState.MWAIT, 30)
        timeline.transition(0, 0, ThreadState.RUNNING, 70)
        timeline.finish(100)
        assert timeline.state_totals() == {
            "running": 60, "mwait-blocked": 40}


class TestInstantsAndLimit:
    def test_instants_recorded(self):
        timeline = Timeline()
        timeline.instant(0, 2, "promote-rf", 42)
        assert timeline.instants == [Instant(0, 2, "promote-rf", 42)]

    def test_limit_degrades_to_drop_counting(self):
        timeline = Timeline(limit=2)
        timeline.transition(0, 0, ThreadState.RUNNING, 0)
        timeline.transition(0, 0, ThreadState.MWAIT, 10)
        timeline.instant(0, 0, "a", 11)
        timeline.instant(0, 0, "b", 12)  # over the limit
        timeline.transition(0, 0, ThreadState.RUNNING, 20)  # over too
        assert len(timeline.spans) + len(timeline.instants) == 2
        assert timeline.dropped == 2


class TestMachineIntegration:
    def run_instrumented_machine(self):
        machine = build_machine(instrument=True)
        flag = machine.alloc("flag", 64)
        machine.load_asm(0, """
            movi r1, FLAG
            monitor r1
            mwait
            halt
        """, symbols={"FLAG": flag.base}, supervisor=True)
        machine.boot(0)
        machine.engine.at(500, machine.memory.store, flag.base, 1, "dev")
        machine.run(until=10_000)
        return machine

    def test_mwait_window_appears_as_blocked_span(self):
        machine = self.run_instrumented_machine()
        timeline = machine.obs.timeline
        timeline.finish(machine.engine.now)
        states = [s.state for s in timeline.spans_for(0, 0)]
        assert ThreadState.MWAIT in states
        blocked = next(s for s in timeline.spans_for(0, 0)
                       if s.state is ThreadState.MWAIT)
        # parked before the cycle-500 store, woken by it
        assert blocked.begin < 500 <= blocked.end

    def test_run_ends_with_stopped_span(self):
        machine = self.run_instrumented_machine()
        timeline = machine.obs.timeline
        timeline.finish(machine.engine.now)
        assert timeline.spans_for(0, 0)[-1].state is ThreadState.STOPPED

    def test_uninstrumented_machine_has_no_timeline(self):
        machine = build_machine()
        assert machine.obs is None
        assert machine.chip.cores[0].timeline is None
