"""Tests for the typed metrics registry (counters/gauges/histograms)."""

import random

import pytest

from repro.analysis.stats import percentile as brute_percentile
from repro.errors import ConfigError
from repro.obs.metrics import (
    HISTOGRAM_SUBBUCKET_BITS,
    Histogram,
    MetricsRegistry,
    _bucket_bounds,
    _bucket_index,
)


class TestCountersAndGauges:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 3)
        reg.inc("a.b")
        assert reg.counter("a.b").value == 4

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set("g", 1)
        reg.set("g", 7.5)
        assert reg.gauge("g").value == 7.5

    def test_name_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")
        with pytest.raises(ConfigError):
            reg.histogram("x")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("")
        with pytest.raises(ConfigError):
            reg.counter("has space")

    def test_clear_empties_registry(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set("b", 1)
        reg.observe("c", 5)
        assert len(reg) == 3
        reg.clear()
        assert len(reg) == 0
        assert list(reg.names()) == []

    def test_merge_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 5)
        b.inc("only_b", 1)
        a.set("g", 1)
        b.set("g", 9)
        a.merge(b)
        assert a.counter("n").value == 7
        assert a.counter("only_b").value == 1
        assert a.gauge("g").value == 9


class TestHistogramBuckets:
    def test_small_values_exact(self):
        for value in range(16):
            low, high = _bucket_bounds(_bucket_index(value))
            assert low == high == value

    def test_bounds_cover_value(self):
        for value in [16, 17, 100, 1023, 1024, 123456, 10**9]:
            low, high = _bucket_bounds(_bucket_index(value))
            assert low <= value <= high

    def test_bucket_relative_error_bounded(self):
        max_rel = 2 ** -HISTOGRAM_SUBBUCKET_BITS
        for value in [20, 33, 999, 4097, 10**6 + 7]:
            low, high = _bucket_bounds(_bucket_index(value))
            assert (high - low) <= max(1, int(low * max_rel))

    def test_indices_are_contiguous_and_monotonic(self):
        previous = -1
        for value in range(0, 5000):
            index = _bucket_index(value)
            assert index in (previous, previous + 1)
            previous = index


class TestHistogramStats:
    def test_empty_raises(self):
        hist = Histogram("h")
        with pytest.raises(ConfigError):
            hist.percentile(50)
        with pytest.raises(ConfigError):
            _ = hist.mean
        assert hist.snapshot() == {"count": 0}

    def test_bad_percentile_rejected(self):
        hist = Histogram("h")
        hist.record(1)
        with pytest.raises(ConfigError):
            hist.percentile(101)

    def test_min_max_mean_exact(self):
        hist = Histogram("h")
        for value in [5, 100, 17, 3, 250]:
            hist.record(value)
        assert hist.minimum == 3
        assert hist.maximum == 250
        assert hist.mean == (5 + 100 + 17 + 3 + 250) / 5

    def test_negative_clamped_floats_truncated(self):
        hist = Histogram("h")
        hist.record(-5)
        hist.record(3.9)
        assert hist.minimum == 0
        assert hist.maximum == 3

    def test_percentiles_match_brute_force_within_bucket_error(self):
        rng = random.Random(7)
        samples = [rng.randrange(0, 200_000) for _ in range(5000)]
        samples += [rng.randrange(0, 15) for _ in range(500)]
        hist = Histogram("h")
        for sample in samples:
            hist.record(sample)
        max_rel = 2 ** -HISTOGRAM_SUBBUCKET_BITS
        for pct in (1, 10, 25, 50, 75, 90, 99, 99.9):
            exact = brute_percentile(samples, pct)
            approx = hist.percentile(pct)
            # one sub-bucket of log-linear error plus the interpolation
            # difference between nearest-rank and linear interpolation
            tolerance = max(2.0, exact * 2 * max_rel)
            assert abs(approx - exact) <= tolerance, (pct, exact, approx)

    def test_extreme_percentiles_are_exact(self):
        hist = Histogram("h")
        for value in [9, 1_000_000, 77]:
            hist.record(value)
        assert hist.percentile(0) == 9
        assert hist.percentile(100) == 1_000_000

    def test_merge_equals_recording_everything(self):
        rng = random.Random(11)
        first = [rng.randrange(0, 10_000) for _ in range(300)]
        second = [rng.randrange(0, 10_000) for _ in range(400)]
        merged, reference = Histogram("m"), Histogram("r")
        other = Histogram("o")
        for value in first:
            merged.record(value)
            reference.record(value)
        for value in second:
            other.record(value)
            reference.record(value)
        merged.merge(other)
        assert merged.snapshot() == reference.snapshot()

    def test_min_max_sum_exact_through_merge(self):
        """Extremes and the sum survive a merge exactly even where the
        log-linear bucket midpoints would distort them (wide buckets at
        large values)."""
        low, high = Histogram("low"), Histogram("high")
        low.record(3)
        low.record(999_983)           # bucket width >> 1 up here
        high.record(1_000_000_007)
        low.merge(high)
        snap = low.snapshot()
        assert snap["min"] == 3
        assert snap["max"] == 1_000_000_007
        assert snap["sum"] == 3 + 999_983 + 1_000_000_007
        assert low.percentile(0) == 3
        assert low.percentile(100) == 1_000_000_007

    def test_merge_empty_is_noop(self):
        hist = Histogram("h")
        hist.record(5)
        before = hist.snapshot()
        hist.merge(Histogram("empty"))
        assert hist.snapshot() == before

    def test_snapshot_shape(self):
        hist = Histogram("h")
        hist.record(10, count=3)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 30
        assert set(snap) == {"count", "sum", "mean", "min", "p50",
                             "p90", "p99", "max"}


class TestRegistrySnapshot:
    def test_snapshot_sorted_and_json_ready(self):
        import json
        reg = MetricsRegistry()
        reg.inc("z.last")
        reg.inc("a.first")
        reg.set("m.gauge", 2.5)
        reg.observe("h.hist", 12)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        json.dumps(snap)  # must not raise

    def test_histogram_merge_via_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 10)
        b.observe("lat", 30)
        a.merge(b)
        assert a.histogram("lat").count == 2
        assert a.histogram("lat").total == 40
