"""Tests for arrival processes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads import (
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
)


def take(gen, n):
    return [next(gen) for _ in range(n)]


class TestDeterministicArrivals:
    def test_constant_gaps(self):
        arr = DeterministicArrivals(500)
        gaps = take(arr.gaps(random.Random(1)), 10)
        assert gaps == [500.0] * 10

    def test_mean_gap(self):
        assert DeterministicArrivals(123).mean_gap_cycles() == 123

    def test_rate(self):
        assert DeterministicArrivals(100).rate_per_cycle() == pytest.approx(0.01)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ConfigError):
            DeterministicArrivals(0)


class TestPoissonArrivals:
    def test_mean_converges(self):
        arr = PoissonArrivals(1000)
        gaps = take(arr.gaps(random.Random(42)), 20_000)
        assert sum(gaps) / len(gaps) == pytest.approx(1000, rel=0.05)

    def test_gaps_positive(self):
        arr = PoissonArrivals(50)
        assert all(g > 0 for g in take(arr.gaps(random.Random(7)), 1000))

    def test_deterministic_under_same_seed(self):
        arr = PoissonArrivals(100)
        a = take(arr.gaps(random.Random(3)), 50)
        b = take(arr.gaps(random.Random(3)), 50)
        assert a == b

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(-1)


class TestBurstyArrivals:
    def test_mean_gap_weighted(self):
        arr = BurstyArrivals(100, 1000, mean_burst_events=10,
                             mean_idle_events=10)
        # 10 events at 100 + 10 events at 1000 over 20 events
        assert arr.mean_gap_cycles() == pytest.approx(550)

    def test_empirical_mean_close(self):
        arr = BurstyArrivals(100, 2000, mean_burst_events=20,
                             mean_idle_events=5)
        gaps = take(arr.gaps(random.Random(11)), 50_000)
        assert sum(gaps) / len(gaps) == pytest.approx(
            arr.mean_gap_cycles(), rel=0.1)

    def test_burstier_than_poisson(self):
        # squared CV of gaps must exceed 1 (Poisson's value)
        arr = BurstyArrivals(100, 5000, mean_burst_events=30,
                             mean_idle_events=3)
        gaps = take(arr.gaps(random.Random(5)), 30_000)
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean ** 2 > 1.5

    def test_rejects_burst_slower_than_idle(self):
        with pytest.raises(ConfigError):
            BurstyArrivals(1000, 100)

    def test_rejects_bad_state_lengths(self):
        with pytest.raises(ConfigError):
            BurstyArrivals(100, 1000, mean_burst_events=0.5)


@given(mean=st.floats(min_value=1.0, max_value=1e6),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_poisson_gaps_always_positive_property(mean, seed):
    arr = PoissonArrivals(mean)
    gaps = take(arr.gaps(random.Random(seed)), 100)
    assert all(g >= 0 for g in gaps)
