"""Tests for the thread-state storage hierarchy and SMT issue policies."""

import pytest

from repro.arch import CostModel
from repro.errors import ConfigError
from repro.hw import (
    PriorityWeightedIssue,
    RoundRobinIssue,
    StorageTier,
    ThreadStateStore,
)
from repro.hw.ptid import HardwareThread


def make_store(rf_slots=4, l2_slots=4, **kwargs):
    # rf_bytes sized so exactly rf_slots contexts (784B each) fit
    return ThreadStateStore(CostModel(), rf_bytes=rf_slots * 784,
                            l2_slots=l2_slots, **kwargs)


class TestStorageTiers:
    def test_fill_order_rf_then_l2_then_l3(self):
        store = make_store(rf_slots=2, l2_slots=2)
        for ptid in range(6):
            store.register(ptid)
        assert store.occupancy() == {"rf": 2, "l2": 2, "l3": 2}

    def test_start_latency_by_tier_matches_cost_model(self):
        costs = CostModel()
        store = make_store(rf_slots=1, l2_slots=1)
        for ptid in range(3):
            store.register(ptid)
        assert store.tier_of(0) is StorageTier.RF
        assert store.tier_of(1) is StorageTier.L2
        assert store.tier_of(2) is StorageTier.L3
        # starting ptid 2 (L3-resident) costs the L3 latency, then promotes
        latency = store.start_latency(2, evictable=[0, 1])
        assert latency == costs.hw_start_l3_cycles
        assert store.tier_of(2) is StorageTier.RF

    def test_promotion_evicts_lru_idle_context(self):
        store = make_store(rf_slots=2, l2_slots=4)
        for ptid in range(3):
            store.register(ptid)
        store.touch(1)  # 0 is now least recently used
        store.start_latency(2, evictable=[0, 1])
        assert store.tier_of(2) is StorageTier.RF
        assert store.tier_of(0) is not StorageTier.RF  # victim
        assert store.tier_of(1) is StorageTier.RF
        assert store.demotions == 1

    def test_pinned_context_never_evicted(self):
        store = make_store(rf_slots=2, l2_slots=4)
        for ptid in range(3):
            store.register(ptid)
        store.pin(0)
        store.start_latency(2, evictable=[0, 1])
        assert store.tier_of(0) is StorageTier.RF

    def test_no_evictable_context_is_config_error(self):
        store = make_store(rf_slots=1, l2_slots=1)
        store.register(0)
        store.register(1)
        with pytest.raises(ConfigError):
            store.start_latency(1, evictable=[])  # nothing may be demoted

    def test_rf_start_does_not_promote_or_demote(self):
        store = make_store(rf_slots=2)
        store.register(0)
        latency = store.start_latency(0, evictable=[])
        assert latency == CostModel().hw_start_rf_cycles
        assert store.promotions == 0

    def test_footprint_bytes(self):
        store = make_store(rf_slots=2)
        store.register(0)
        store.register(1)
        assert store.footprint_bytes() == 2 * 784

    def test_duplicate_registration_rejected(self):
        store = make_store()
        store.register(0)
        with pytest.raises(ConfigError):
            store.register(0)

    def test_unknown_ptid_rejected(self):
        with pytest.raises(ConfigError):
            make_store().tier_of(99)

    def test_starts_by_tier_statistics(self):
        store = make_store(rf_slots=1, l2_slots=2)
        store.register(0)
        store.register(1)
        store.start_latency(0, [1])
        store.start_latency(1, [0])
        assert store.starts_by_tier[StorageTier.RF] == 1
        assert store.starts_by_tier[StorageTier.L2] == 1


def _threads(n, priorities=None):
    threads = [HardwareThread(i, core=None) for i in range(n)]
    if priorities:
        for thread, priority in zip(threads, priorities):
            thread.priority = priority
    return threads


class TestRoundRobinIssue:
    def test_rotates_fairly(self):
        policy = RoundRobinIssue()
        threads = _threads(4)
        counts = {t.ptid: 0 for t in threads}
        for _ in range(100):
            for picked in policy.select(threads, width=2):
                counts[picked.ptid] += 1
        assert all(count == 50 for count in counts.values())

    def test_width_larger_than_pool(self):
        policy = RoundRobinIssue()
        threads = _threads(2)
        assert len(policy.select(threads, width=8)) == 2

    def test_empty_pool(self):
        assert RoundRobinIssue().select([], 2) == []

    def test_single_thread_always_picked(self):
        policy = RoundRobinIssue()
        threads = _threads(1)
        for _ in range(5):
            assert policy.select(threads, 2) == threads


class TestPriorityWeightedIssue:
    def test_priority_4_gets_about_4x_the_slots(self):
        policy = PriorityWeightedIssue()
        threads = _threads(2, priorities=[4, 1])
        counts = {0: 0, 1: 0}
        for _ in range(1000):
            for picked in policy.select(threads, width=1):
                counts[picked.ptid] += 1
        ratio = counts[0] / counts[1]
        assert 3.0 <= ratio <= 5.0

    def test_no_starvation(self):
        policy = PriorityWeightedIssue()
        threads = _threads(3, priorities=[10, 1, 1])
        counts = {0: 0, 1: 0, 2: 0}
        for _ in range(600):
            for picked in policy.select(threads, width=1):
                counts[picked.ptid] += 1
        assert counts[1] > 0 and counts[2] > 0

    def test_equal_priorities_fair(self):
        policy = PriorityWeightedIssue()
        threads = _threads(2, priorities=[1, 1])
        counts = {0: 0, 1: 0}
        for _ in range(100):
            for picked in policy.select(threads, width=1):
                counts[picked.ptid] += 1
        assert abs(counts[0] - counts[1]) <= 2

    def test_forget_clears_bookkeeping(self):
        policy = PriorityWeightedIssue()
        threads = _threads(2, priorities=[4, 1])
        policy.select(threads, 1)
        policy.forget(0)
        assert 0 not in policy._vtime

    def test_empty_pool(self):
        assert PriorityWeightedIssue().select([], 2) == []


class TestPriorityOnCore:
    def test_high_priority_interrupt_thread_preempts_sooner(self):
        """Section 4: 'threads used for serving time-sensitive interrupts
        receive more cycles'. With a priority-weighted policy a
        high-priority thread finishes its burst much earlier than a
        same-length low-priority burst under contention."""
        from repro import build_machine
        from repro.hw import PriorityWeightedIssue as PWI
        from repro.machine import MachineConfig, Machine

        def finish_times(priority):
            config = MachineConfig(hw_threads_per_core=8, smt_width=1)
            machine = Machine(config)
            machine.core(0).issue_policy = PWI()
            machine.load_asm(0, "work 2000\nhalt", supervisor=True)
            machine.load_asm(1, "work 2000\nhalt", supervisor=True)
            machine.core(0).set_priority(0, priority)
            machine.boot(0)
            machine.boot(1)
            finish = {}

            def watch():
                while len(finish) < 2:
                    for ptid in (0, 1):
                        if machine.thread(ptid).finished and ptid not in finish:
                            finish[ptid] = machine.engine.now
                    yield 50
            machine.engine.spawn(watch())
            machine.run(until=50_000)
            return finish

        boosted = finish_times(priority=8)
        # with an 8:1 share the boosted thread finishes its 2000-cycle
        # burst in ~2250 cycles; the loser needs ~4000 (50-cycle watcher
        # granularity adds noise)
        assert boosted[0] < boosted[1] * 0.65
