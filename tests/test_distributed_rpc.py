"""Tests for the RPC server designs."""

import pytest

from repro.arch.costs import CostModel
from repro.distributed import (
    EVENT_LOOP,
    HW_THREADS,
    SW_THREADS,
    RpcServerModel,
    RpcWorkload,
    ServerDesign,
)
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads import Constant, Exponential, PoissonArrivals


def run_workload(design, mean_gap=10_000, service=Constant(3_000),
                 requests=100, segments=3, rtt=5_000, seed=1):
    engine = Engine()
    server = RpcServerModel(engine, design, CostModel())
    RpcWorkload(engine, server, PoissonArrivals(mean_gap), service,
                RngStreams(seed).stream("w"), segments=segments,
                rtt_cycles=rtt, max_requests=requests)
    engine.run()
    return engine, server


class TestTransitionOverheads:
    def test_hw_cheapest_sw_most_expensive(self):
        costs = CostModel()
        hw = HW_THREADS.transition_overhead_cycles(costs)
        sw = SW_THREADS.transition_overhead_cycles(costs)
        el = EVENT_LOOP.transition_overhead_cycles(costs)
        assert hw < el < sw
        assert sw > 100 * hw / 10  # sw pays the full scheduler chain

    def test_unknown_design_rejected(self):
        bogus = ServerDesign("green-threads", "ps")
        with pytest.raises(ConfigError):
            bogus.transition_overhead_cycles(CostModel())

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ConfigError):
            RpcServerModel(Engine(), ServerDesign("hw-threads", "lifo"))


class TestRpcServerModel:
    def test_all_requests_complete(self):
        for design in (HW_THREADS, SW_THREADS, EVENT_LOOP):
            _engine, server = run_workload(design, requests=50)
            assert server.completed == 50, design.name

    def test_latency_includes_rtts(self):
        _engine, server = run_workload(HW_THREADS, requests=20,
                                       segments=3, rtt=5_000)
        # 2 remote calls between 3 segments: at least 10k of RTT + service
        assert server.recorder.pct(50) >= 2 * 5_000 + 3_000

    def test_single_segment_skips_rtt(self):
        _engine, server = run_workload(HW_THREADS, requests=20,
                                       segments=1, rtt=50_000)
        assert server.recorder.pct(50) < 50_000

    def test_sw_threads_burn_more_cpu(self):
        _e, hw = run_workload(HW_THREADS, requests=60)
        _e, sw = run_workload(SW_THREADS, requests=60)
        assert sw.cpu_busy_cycles() > hw.cpu_busy_cycles()

    def test_concurrency_tracked(self):
        _engine, server = run_workload(HW_THREADS, mean_gap=2_000,
                                       requests=50, rtt=20_000)
        assert server.peak_concurrency > 1
        assert server.active == 0

    def test_empty_segments_rejected(self):
        server = RpcServerModel(Engine(), HW_THREADS)
        with pytest.raises(ConfigError):
            server.submit(0, [], 100)


class TestShapes:
    def test_sw_threads_saturate_before_hw(self):
        # offered load ~0.85 of base service: sw overhead pushes it over
        service = Exponential(4_000)
        mean_gap = 4_000 / 0.85
        _e, hw = run_workload(HW_THREADS, mean_gap=mean_gap,
                              service=service, requests=300)
        _e, sw = run_workload(SW_THREADS, mean_gap=mean_gap,
                              service=service, requests=300)
        assert sw.recorder.pct(99) > hw.recorder.pct(99)

    def test_event_loop_matches_hw_on_throughput(self):
        service = Exponential(4_000)
        _e, hw = run_workload(HW_THREADS, service=service, requests=200)
        _e, el = run_workload(EVENT_LOOP, service=service, requests=200)
        assert el.completed == hw.completed


class TestRpcWorkload:
    def test_cpu_demand_accounts_overhead(self):
        engine = Engine()
        server = RpcServerModel(engine, SW_THREADS, CostModel())
        workload = RpcWorkload(engine, server, PoissonArrivals(10_000),
                               Constant(3_000), RngStreams(1).stream("w"),
                               segments=2, max_requests=1)
        overhead = SW_THREADS.transition_overhead_cycles(CostModel())
        assert workload.cpu_demand_per_request() == 3_000 + 2 * overhead

    def test_rejects_zero_requests(self):
        engine = Engine()
        server = RpcServerModel(engine, HW_THREADS)
        with pytest.raises(ConfigError):
            RpcWorkload(engine, server, PoissonArrivals(100), Constant(10),
                        RngStreams(1).stream("w"), max_requests=0)

    def test_rejects_zero_segments(self):
        engine = Engine()
        server = RpcServerModel(engine, HW_THREADS)
        with pytest.raises(ConfigError):
            RpcWorkload(engine, server, PoissonArrivals(100), Constant(10),
                        RngStreams(1).stream("w"), segments=0)


class TestSeedStability:
    """The determinism audit: nothing in the RPC layer may touch the
    global random module, so poisoning its state between runs must not
    change a single sample."""

    def _fingerprint(self):
        _engine, server = run_workload(SW_THREADS,
                                       service=Exponential(3_000),
                                       requests=80, seed=42)
        return (server.completed, tuple(server.recorder.samples))

    def test_global_rng_poisoning_is_irrelevant(self):
        import random
        random.seed(0)
        first = self._fingerprint()
        random.seed(31337)
        for _ in range(1_000):
            random.random()
        second = self._fingerprint()
        assert first == second

    def test_module_has_no_runtime_random_import(self):
        # the `import random` in rpc.py is TYPE_CHECKING-gated; at
        # runtime the module must not even expose the global-RNG module
        import repro.distributed.rpc as rpc
        assert not hasattr(rpc, "random")


class TestResidentCrowding:
    def test_overhead_reread_per_segment_tracks_active(self):
        """The crowd term must follow the live concurrency, not the
        arrival-time snapshot: a burst of simultaneous requests makes
        every later segment dearer."""
        engine = Engine()
        costs = CostModel()
        server = RpcServerModel(engine, SW_THREADS, costs,
                                resident_threads=8)
        for i in range(4):
            server.submit(i, [1_000.0, 1_000.0], 100)
        engine.run()
        assert server.completed == 4
        solo = SW_THREADS.transition_overhead_cycles(costs, crowd=8)
        crowded = SW_THREADS.transition_overhead_cycles(costs, crowd=11)
        # 4 concurrent requests x 2 segments, each charged between the
        # solo floor and the full-burst ceiling
        per_request = server.cpu_busy_cycles() / 4
        assert 2 * (1_000 + solo) <= per_request <= 2 * (1_000 + crowded)
