"""Tests for the generalized write-watch bus (monitor/mwait substrate)."""

from repro.mem import Memory, WatchBus
from repro.sim import Engine


def test_watch_fires_on_store():
    mem = Memory()
    watch = mem.watch_bus.watch(0x1000)
    mem.store(0x1000, 7)
    assert watch.trigger_count == 1
    assert watch.last_trigger["value"] == 7
    assert watch.last_trigger["source"] == "cpu"


def test_watch_is_line_granular():
    # like real MONITOR: a write anywhere in the 64B line triggers
    mem = Memory()
    watch = mem.watch_bus.watch(0x1000)
    mem.store(0x1038, 1)  # same line (0x1000..0x103f)
    assert watch.trigger_count == 1
    mem.store(0x1040, 1)  # next line
    assert watch.trigger_count == 1


def test_watch_multiple_addresses():
    # paper: "A hardware thread can monitor multiple memory locations"
    mem = Memory()
    watch = mem.watch_bus.watch([0x1000, 0x9000])
    mem.store(0x9000, 1)
    assert watch.trigger_count == 1
    mem.store(0x1000, 1)
    assert watch.trigger_count == 2


def test_multiple_watches_one_line_all_fire():
    mem = Memory()
    w1 = mem.watch_bus.watch(0x1000, owner="a")
    w2 = mem.watch_bus.watch(0x1008, owner="b")  # same line
    fired = mem.watch_bus.notify(0x1000, 5)
    assert fired == 2
    assert w1.trigger_count == w2.trigger_count == 1


def test_cancel_disarms():
    mem = Memory()
    watch = mem.watch_bus.watch(0x1000)
    watch.cancel()
    mem.store(0x1000, 1)
    assert watch.trigger_count == 0
    watch.cancel()  # idempotent


def test_dma_source_label_preserved():
    # the whole point: DMA writes wake waiters exactly like CPU stores
    mem = Memory()
    watch = mem.watch_bus.watch(0x2000)
    mem.store(0x2000, 42, source="dma:nic0")
    assert watch.last_trigger["source"] == "dma:nic0"


def test_watch_signal_wakes_process():
    engine = Engine()
    mem = Memory()
    watch = mem.watch_bus.watch(0x1000)
    got = []

    def waiter():
        info = yield watch.signal
        got.append((engine.now, info["value"]))

    engine.spawn(waiter())
    engine.after(30, mem.store, 0x1000, 99)
    engine.run()
    assert got == [(30, 99)]


def test_covers():
    bus = WatchBus()
    watch = bus.watch(0x1000)
    assert watch.covers(0x103F)
    assert not watch.covers(0x1040)


def test_watchers_on_counts_armed_only():
    bus = WatchBus()
    w1 = bus.watch(0x1000)
    bus.watch(0x1000)
    assert bus.watchers_on(0x1000) == 2
    w1.cancel()
    assert bus.watchers_on(0x1000) == 1


def test_bus_statistics():
    mem = Memory()
    mem.watch_bus.watch(0x1000)
    mem.store(0x1000, 1)
    mem.store(0x5000, 1)  # unwatched
    assert mem.watch_bus.total_notifications == 2
    assert mem.watch_bus.total_triggers == 1
