"""Whole-system integration: every device and mechanism on one machine.

One simulated system runs, simultaneously:

- an APIC timer ticking into a counter watched by a scheduler ptid;
- a NIC delivering packets consumed by an mwait-ing network ptid;
- an SSD whose completions wake a storage ptid;
- a user ptid making trap-based syscalls served by a supervisor ptid
  that monitors the exception-descriptor line.

Everything shares the engine, the memory, and the watch bus; the test
asserts every subsystem made progress and nothing interfered.
"""

import pytest

from repro.devices import ApicTimer, Nic, Ssd
from repro.devices.ssd import OP_READ
from repro.machine import build_machine
from repro.workloads import DeterministicArrivals

TICKS = 5
PACKETS = 6
SSD_READS = 3
SYSCALLS = 4


@pytest.fixture(scope="module")
def system():
    machine = build_machine(hw_threads_per_core=64, smt_width=2)

    # --- timer + scheduler ptid (ptid 0) ------------------------------
    tick_counter = machine.alloc("ticks", 64)
    tick_seen = machine.alloc("ticks-seen", 64)
    machine.load_asm(0, """
    sched_loop:
        movi r1, CTR
        monitor r1
        mwait
        ld r2, r1, 0
        movi r3, SEEN
        st r3, 0, r2
        movi r4, TICKS
        blt r2, r4, sched_loop
        halt
    """, symbols={"CTR": tick_counter.base, "SEEN": tick_seen.base,
                  "TICKS": TICKS}, supervisor=True, name="scheduler")
    timer = ApicTimer(machine.engine, machine.memory, tick_counter.base,
                      period_cycles=7_000, max_ticks=TICKS)

    # --- NIC + network ptid (ptid 1) -----------------------------------
    nic = Nic(machine.engine, machine.memory, machine.dma, name="nic0")
    rx_count = machine.alloc("rx-count", 64)
    machine.load_asm(1, """
    net_loop:
        movi r1, TAIL
        monitor r1
        mwait
    drain:
        movi r2, HEAD
        ld r3, r2, 0
        ld r4, r1, 0
        bge r3, r4, net_loop
        addi r3, r3, 1
        st r2, 0, r3
        movi r5, RXC
        faa r6, r5, 1
        movi r7, NPKT
        blt r6, r7, drain
        halt
    """, symbols={"TAIL": nic.rx.tail_addr, "HEAD": nic.rx.head_addr,
                  "RXC": rx_count.base, "NPKT": PACKETS},
        supervisor=True, name="netstack")

    # --- SSD + storage ptid (ptid 2) -----------------------------------
    ssd = Ssd(machine.engine, machine.memory, machine.dma, name="ssd0",
              read_latency_cycles=9_000)
    io_buffer = machine.alloc("io-buf", 4096)
    io_done = machine.alloc("io-done", 64)
    machine.load_asm(2, """
    storage_loop:
        movi r1, CQT
        monitor r1
        mwait
        ld r2, r1, 0
        movi r3, IOD
        st r3, 0, r2
        movi r4, NREADS
        blt r2, r4, storage_loop
        halt
    """, symbols={"CQT": ssd.cq_tail_addr, "IOD": io_done.base,
                  "NREADS": SSD_READS}, supervisor=True, name="storage")

    # --- app ptid (3) trapping to a kernel ptid (4) ---------------------
    app_edp = machine.alloc("app-edp", 64)
    syscalls_served = machine.alloc("syscalls-served", 64)
    machine.load_asm(3, """
    app_loop:
        work 500
        trap 7
        addi r1, r1, 1
        movi r2, NSYS
        blt r1, r2, app_loop
        halt
    """, symbols={"NSYS": SYSCALLS}, supervisor=False, edp=app_edp.base,
        name="app")
    from repro.hw.tdt import Permission
    kernel_tdt = machine.build_tdt("kernel-tdt", {0: (3, Permission.ALL)})
    machine.load_asm(4, """
    kern_loop:
        movi r1, EDP
        monitor r1
        mwait
        ld r2, r1, 0
        beq r2, r0, kern_loop
        work 200
        st r1, 0, r0
        movi r3, SRV
        faa r4, r3, 1
        start 0
        movi r5, NSYS
        blt r4, r5, kern_loop
        halt
    """, symbols={"EDP": app_edp.base, "SRV": syscalls_served.base,
                  "NSYS": SYSCALLS}, supervisor=True, tdtr=kernel_tdt.base,
        name="kernel")

    for ptid in range(5):
        machine.boot(ptid)
    timer.start()
    nic.start_rx(DeterministicArrivals(5_000), machine.rngs.stream("rx"),
                 max_packets=PACKETS)
    for i in range(SSD_READS):
        machine.engine.at(1_000 + i * 15_000, ssd.submit, OP_READ,
                          i * 100, io_buffer.base + i * 512, 4, "cpu")
    machine.run(until=2_000_000)
    machine.check()
    return {
        "machine": machine, "nic": nic, "ssd": ssd, "timer": timer,
        "tick_seen": tick_seen, "rx_count": rx_count, "io_done": io_done,
        "syscalls_served": syscalls_served, "io_buffer": io_buffer,
    }


class TestWholeSystem:
    def test_scheduler_saw_every_tick(self, system):
        machine = system["machine"]
        assert machine.memory.load(system["tick_seen"].base) == TICKS
        assert machine.thread(0).finished

    def test_netstack_consumed_every_packet(self, system):
        machine = system["machine"]
        assert machine.memory.load(system["rx_count"].base) == PACKETS
        assert system["nic"].packets_dropped == 0
        assert machine.thread(1).finished

    def test_storage_thread_saw_all_completions(self, system):
        machine = system["machine"]
        assert machine.memory.load(system["io_done"].base) == SSD_READS
        assert system["ssd"].commands_completed == SSD_READS
        assert machine.thread(2).finished

    def test_ssd_data_landed(self, system):
        machine = system["machine"]
        # read 1 was lba=100: word 0 of its buffer is 100
        assert machine.memory.load(system["io_buffer"].base + 512) == 100

    def test_all_syscalls_served_by_kernel_ptid(self, system):
        machine = system["machine"]
        assert machine.memory.load(system["syscalls_served"].base) \
            == SYSCALLS
        assert machine.thread(3).finished  # app
        assert machine.thread(4).finished  # kernel

    def test_app_restarted_per_syscall(self, system):
        machine = system["machine"]
        assert machine.thread(3).starts == SYSCALLS
        assert machine.thread(3).exceptions_raised == SYSCALLS

    def test_no_thread_ran_in_irq_context(self, system):
        # structural assertion: the whole run used zero interrupt
        # machinery -- every device spoke through memory writes
        machine = system["machine"]
        assert system["nic"].legacy_irq is None
        assert system["ssd"].legacy_irq is None
        assert system["timer"].legacy_irq is None

    def test_deterministic_event_count(self, system):
        # the shared-engine run is reproducible: rebuilding the fixture
        # scenario yields identical instruction counts
        machine = system["machine"]
        assert machine.chip.total_instructions > 0

    def test_wakeups_bounded_by_events(self, system):
        machine = system["machine"]
        # each consumer woke at most once per event it handled (+1 for
        # spurious line-sharing wakeups, which the loops tolerate)
        assert machine.thread(0).wakeups <= TICKS + 1
        assert machine.thread(2).wakeups <= SSD_READS + 1
