"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 16):
            assert f"E{i:02d}" in out

    def test_anchors_shown(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestRun:
    def test_run_quick_experiment(self, capsys):
        assert main(["run", "E10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_lowercase_id_accepted(self, capsys):
        assert main(["run", "e10", "--quick"]) == 0

    def test_unknown_id_fails_with_message(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "E01" in capsys.readouterr().err

    def test_seed_parses_hex(self, capsys):
        assert main(["run", "E10", "--quick", "--seed", "0xBEEF"]) == 0


class TestJsonOutput:
    def test_run_json_is_parseable(self, capsys):
        import json
        assert main(["run", "E10", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "E10"
        assert payload["claims"]
        assert all(c["verdict"] == "supported" for c in payload["claims"])
        assert payload["tables"][0]["columns"]


class TestCluster:
    def test_runs_and_prints_summary_table(self, capsys):
        assert main(["cluster", "--nodes", "4", "--fanout", "2",
                     "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "hw-threads" in out
        assert "conserved" in out

    def test_design_all_compares_three(self, capsys):
        assert main(["cluster", "--nodes", "4", "--design", "all",
                     "--requests", "30"]) == 0
        out = capsys.readouterr().out
        for name in ("hw-threads", "sw-threads", "event-loop"):
            assert name in out

    def test_unknown_design_fails(self, capsys):
        assert main(["cluster", "--design", "fibers"]) == 2
        assert "unknown server design" in capsys.readouterr().err

    def test_json_output_parseable(self, capsys):
        import json
        assert main(["cluster", "--nodes", "2", "--requests", "20",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hw-threads"]["conserved"] is True


class TestIsaReference:
    def test_lists_proposed_instructions(self, capsys):
        assert main(["isa"]) == 0
        out = capsys.readouterr().out
        for op in ("monitor", "mwait", "start", "stop", "rpull",
                   "rpush", "invtid"):
            assert op in out


class TestSensitivity:
    def test_prints_break_even_table(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "mode_switch_cycles" in out
        assert "safety margin" in out


class TestMisc:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "E01" in result.stdout
