"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 19):
            assert f"E{i:02d}" in out

    def test_anchors_shown(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "Table 1" in out


class TestRun:
    def test_run_quick_experiment(self, capsys):
        assert main(["run", "E10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_lowercase_id_accepted(self, capsys):
        assert main(["run", "e10", "--quick"]) == 0

    def test_unknown_id_fails_with_message(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "E01" in capsys.readouterr().err

    def test_seed_parses_hex(self, capsys):
        assert main(["run", "E10", "--quick", "--seed", "0xBEEF"]) == 0


class TestJsonOutput:
    def test_run_json_is_parseable(self, capsys):
        import json
        assert main(["run", "E10", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "E10"
        assert payload["claims"]
        assert all(c["verdict"] == "supported" for c in payload["claims"])
        assert payload["tables"][0]["columns"]


class TestCluster:
    def test_runs_and_prints_summary_table(self, capsys):
        assert main(["cluster", "--nodes", "4", "--fanout", "2",
                     "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "hw-threads" in out
        assert "conserved" in out

    def test_design_all_compares_three(self, capsys):
        assert main(["cluster", "--nodes", "4", "--design", "all",
                     "--requests", "30"]) == 0
        out = capsys.readouterr().out
        for name in ("hw-threads", "sw-threads", "event-loop"):
            assert name in out

    def test_unknown_design_fails(self, capsys):
        assert main(["cluster", "--design", "fibers"]) == 2
        assert "unknown server design" in capsys.readouterr().err

    def test_json_output_parseable(self, capsys):
        import json
        assert main(["cluster", "--nodes", "2", "--requests", "20",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hw-threads"]["conserved"] is True


class TestTrace:
    ARGS = ["--nodes", "4", "--fanout", "2", "--load", "0.3",
            "--requests", "30"]

    def test_renders_slowest_trees(self, capsys):
        assert main(["trace", "--top", "2", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert out.count("critical path:") == 2
        assert "*critical*" in out
        assert "switch_tax" in out
        assert "completed requests traced" in out

    def test_json_payload(self, capsys):
        import json
        assert main(["trace", "--json", *self.ARGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["completed"] == 30
        assert set(payload["components"]) == {
            "hedge_wait", "net_request", "queue", "service",
            "switch_tax", "blocked", "net_response"}

    def test_bad_top_rejected(self, capsys):
        assert main(["trace", "--top", "0", *self.ARGS]) == 2
        assert "--top" in capsys.readouterr().err

    def test_span_trace_file_validates(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace
        path = tmp_path / "spans.trace.json"
        assert main(["trace", "--top", "2", "--span-trace", str(path),
                     *self.ARGS]) == 0
        validate_chrome_trace(json.loads(path.read_text()))

    def test_sharded_trace_matches_single(self, capsys):
        import json
        args = ["trace", "--json", "--nodes", "4", "--fanout", "1",
                "--load", "0.3", "--requests", "20"]
        assert main(args) == 0
        single = capsys.readouterr().out
        assert main([*args, "--shards", "2",
                     "--shard-transport", "inline"]) == 0
        sharded = capsys.readouterr().out
        assert json.loads(single) == json.loads(sharded)


class TestClusterSpanTrace:
    def test_design_all_collects_every_design(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace
        path = tmp_path / "spans.trace.json"
        assert main(["cluster", "--nodes", "4", "--design", "all",
                     "--fanout", "2", "--load", "0.3",
                     "--requests", "20", "--span-trace", str(path)]) == 0
        trace = json.loads(path.read_text())
        validate_chrome_trace(trace)
        names = {event["args"]["name"]
                 for event in trace["traceEvents"]
                 if event["name"] == "process_name"}
        for design in ("hw-threads", "sw-threads", "event-loop"):
            assert any(name.startswith(design) for name in names)


class TestRunSpanFlags:
    def test_untraced_experiment_rejected(self, capsys):
        assert main(["run", "E10", "--quick",
                     "--span-trace", "/tmp/nope.json"]) == 2
        assert "publishes no span trees" in capsys.readouterr().err


class TestIsaReference:
    def test_lists_proposed_instructions(self, capsys):
        assert main(["isa"]) == 0
        out = capsys.readouterr().out
        for op in ("monitor", "mwait", "start", "stop", "rpull",
                   "rpush", "invtid"):
            assert op in out


class TestSensitivity:
    def test_prints_break_even_table(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "mode_switch_cycles" in out
        assert "safety margin" in out


class TestMisc:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "E01" in result.stdout
