"""Tests for the Thread Descriptor Table, including Table 1 of the paper."""

import pytest

from repro import build_machine
from repro.arch.registers import RegisterClass
from repro.errors import PermissionFault
from repro.hw import Permission, PtidState, TdtEntry, ThreadDescriptorTable
from repro.hw.tdt import TdtCache, read_entry
from repro.mem import Memory


def paper_table_1(machine):
    """Build exactly the example TDT of Table 1."""
    return machine.build_tdt("tdt", {
        0x0: (0x01, Permission(0b1000)),
        0x1: (0x00, Permission(0b0000)),
        0x2: (0x10, Permission(0b1111)),
        0x3: (0x11, Permission(0b1110)),
    })


class TestTable1:
    """E01: reproduce Table 1 row by row."""

    def setup_method(self):
        self.machine = build_machine(hw_threads_per_core=32)
        self.tdt = paper_table_1(self.machine)

    def test_row_0_start_only(self):
        entry = self.tdt.get_entry(0x0)
        assert entry == TdtEntry(0x0, 0x01, Permission(0b1000))
        assert entry.valid
        assert entry.allows(Permission.START)
        assert not entry.allows(Permission.STOP)
        assert not entry.allows(Permission.MODIFY_SOME)
        assert not entry.allows(Permission.MODIFY_MOST)

    def test_row_1_invalid(self):
        entry = self.tdt.get_entry(0x1)
        assert not entry.valid
        assert entry.permissions == Permission.NONE

    def test_row_2_all_permissions(self):
        entry = self.tdt.get_entry(0x2)
        assert entry.ptid == 0x10
        for bit in (Permission.START, Permission.STOP,
                    Permission.MODIFY_SOME, Permission.MODIFY_MOST):
            assert entry.allows(bit)

    def test_row_3_no_modify_most(self):
        entry = self.tdt.get_entry(0x3)
        assert entry.ptid == 0x11
        assert entry.allows(Permission.START)
        assert entry.allows(Permission.STOP)
        assert entry.allows(Permission.MODIFY_SOME)
        assert not entry.allows(Permission.MODIFY_MOST)

    def test_register_permission_mapping(self):
        some_only = self.tdt.get_entry(0x3)
        assert some_only.allows_register(RegisterClass.GENERAL)
        assert some_only.allows_register(RegisterClass.VECTOR)
        assert not some_only.allows_register(RegisterClass.PC)
        assert not some_only.allows_register(RegisterClass.CONTROL)
        full = self.tdt.get_entry(0x2)
        assert full.allows_register(RegisterClass.PC)
        assert full.allows_register(RegisterClass.CONTROL)
        # privileged registers are never grantable via the TDT
        assert not full.allows_register(RegisterClass.PRIVILEGED)


class TestTdtMemoryResidence:
    def test_entries_live_in_simulated_memory(self):
        mem = Memory()
        region = mem.alloc("tdt", 1024)
        tdt = ThreadDescriptorTable(mem, region.base)
        tdt.set_entry(2, 7, Permission.ALL)
        assert mem.load(region.base + 2 * 16) == 7
        assert mem.load(region.base + 2 * 16 + 8) == 0b1111

    def test_hardware_walk_matches_software_view(self):
        mem = Memory()
        region = mem.alloc("tdt", 1024)
        tdt = ThreadDescriptorTable(mem, region.base)
        tdt.set_entry(5, 9, Permission.START | Permission.STOP)
        entry = read_entry(mem, region.base, 5)
        assert entry == tdt.get_entry(5)

    def test_clear_entry_invalidates(self):
        mem = Memory()
        tdt = ThreadDescriptorTable(mem, mem.alloc("tdt", 1024).base)
        tdt.set_entry(1, 3, Permission.ALL)
        tdt.clear_entry(1)
        assert not tdt.get_entry(1).valid

    def test_vtid_bounds(self):
        mem = Memory()
        tdt = ThreadDescriptorTable(mem, mem.alloc("tdt", 1024).base, capacity=4)
        with pytest.raises(PermissionFault):
            tdt.set_entry(4, 0, Permission.ALL)
        with pytest.raises(PermissionFault):
            read_entry(mem, tdt.base, -1)


class TestTdtCache:
    def test_miss_then_hit_latencies(self):
        mem = Memory()
        tdt = ThreadDescriptorTable(mem, mem.alloc("tdt", 1024).base)
        tdt.set_entry(0, 1, Permission.ALL)
        cache = TdtCache()
        entry1, cost1 = cache.lookup(mem, tdt.base, 0)
        entry2, cost2 = cache.lookup(mem, tdt.base, 0)
        assert entry1 == entry2
        assert cost1 == cache.costs.tdt_miss_cycles
        assert cost2 == cache.costs.tdt_lookup_cycles
        assert cache.hits == 1 and cache.misses == 1

    def test_update_without_invtid_is_stale(self):
        # the paper REQUIRES explicit invalidation; staleness is correct
        mem = Memory()
        tdt = ThreadDescriptorTable(mem, mem.alloc("tdt", 1024).base)
        tdt.set_entry(0, 1, Permission.ALL)
        cache = TdtCache()
        cache.lookup(mem, tdt.base, 0)
        tdt.set_entry(0, 2, Permission.START)  # update, no invtid
        entry, _ = cache.lookup(mem, tdt.base, 0)
        assert entry.ptid == 1  # stale
        assert cache.invalidate(tdt.base, 0)
        entry, _ = cache.lookup(mem, tdt.base, 0)
        assert entry.ptid == 2  # fresh after invalidation

    def test_invalidate_missing_returns_false(self):
        assert not TdtCache().invalidate(0x1000, 3)

    def test_invalidate_all(self):
        mem = Memory()
        tdt = ThreadDescriptorTable(mem, mem.alloc("tdt", 1024).base)
        tdt.set_entry(0, 1, Permission.ALL)
        cache = TdtCache()
        cache.lookup(mem, tdt.base, 0)
        cache.invalidate_all()
        assert len(cache) == 0


class TestGuestVisibleTdt:
    """TDT-checked start/stop from guest programs."""

    def _two_thread_machine(self, perms, manager_supervisor=False):
        machine = build_machine(hw_threads_per_core=32)
        tdt = machine.build_tdt("tdt", {1: (1, perms)})
        fault_area = machine.alloc("fault", 64)
        machine.load_asm(0, """
            start 1
            halt
        """, supervisor=manager_supervisor, tdtr=tdt.base, edp=fault_area.base)
        machine.load_asm(1, "movi r1, 123\nhalt")
        return machine, fault_area

    def test_start_with_permission_works(self):
        machine, _fault = self._two_thread_machine(Permission.START)
        machine.boot(0)
        machine.run()
        assert machine.thread(1).finished
        assert machine.thread(1).arch.read("r1") == 123

    def test_start_without_permission_faults(self):
        machine, fault = self._two_thread_machine(Permission.STOP)
        machine.boot(0)
        machine.run()
        target = machine.thread(1)
        assert not target.finished  # never started
        assert target.state is PtidState.DISABLED
        # caller got a permission-fault descriptor instead
        from repro.hw.exceptions import ExceptionDescriptor, ExceptionKind
        descriptor = ExceptionDescriptor.read(machine.memory, fault.base)
        assert descriptor.kind is ExceptionKind.PERMISSION_FAULT
        assert descriptor.ptid == 0

    def test_invalid_entry_faults(self):
        machine, fault = self._two_thread_machine(Permission.NONE)
        machine.boot(0)
        machine.run()
        assert not machine.thread(1).finished

    def test_supervisor_bypasses_tdt(self):
        machine, _ = self._two_thread_machine(Permission.NONE,
                                              manager_supervisor=True)
        machine.boot(0)
        machine.run()
        assert machine.thread(1).finished

    def test_user_thread_without_tdt_faults(self):
        machine = build_machine(hw_threads_per_core=8)
        fault = machine.alloc("fault", 64)
        machine.load_asm(0, "start 1\nhalt", supervisor=False,
                         edp=fault.base)  # tdtr stays 0
        machine.load_asm(1, "halt")
        machine.boot(0)
        machine.run()
        assert machine.memory.load(fault.base) != 0  # descriptor present


class TestInvtidInstruction:
    def test_tdt_update_invisible_until_invtid(self):
        machine = build_machine(hw_threads_per_core=32)
        # vtid 1 -> ptid 1 initially; manager starts vtid 1 twice with a
        # remap to ptid 2 in between. Without invtid the second start
        # must still hit ptid 1's (stale) cached entry.
        tdt = machine.build_tdt("tdt", {1: (1, Permission.ALL)})
        done = machine.alloc("done", 64)
        machine.load_asm(0, """
            start 1          ; caches vtid1 -> ptid1
            work 2000
            start 1          ; stale: still ptid1 (a no-op, it runs)
            work 2000
            halt
        """, supervisor=True, tdtr=tdt.base)
        machine.load_asm(1, "movi r1, 111\nhalt")
        machine.load_asm(2, "movi r1, 222\nhalt")
        machine.boot(0)
        machine.run(until=1500)
        tdt.set_entry(1, 2, Permission.ALL)  # remap, NO invtid
        machine.run()
        assert machine.thread(1).finished
        assert not machine.thread(2).finished, "stale TDT entry was bypassed"
        _ = done

    def test_invtid_makes_update_visible(self):
        machine = build_machine(hw_threads_per_core=32)
        tdt = machine.build_tdt("tdt", {1: (1, Permission.ALL)})
        machine.load_asm(0, """
            start 1
            work 2000
            invtid 0, 1      ; invalidate my own TDT's entry for vtid 1
            start 1          ; re-walks the table: now ptid 2
            work 2000
            halt
        """, supervisor=True, tdtr=tdt.base)
        # supervisor with tdtr set: vtid 0 resolves via TDT too, so map it
        tdt.set_entry(0, 0, Permission.ALL)
        machine.load_asm(1, "movi r1, 111\nhalt")
        machine.load_asm(2, "movi r1, 222\nhalt")
        machine.boot(0)
        machine.run(until=1500)
        tdt.set_entry(1, 2, Permission.ALL)
        machine.run()
        assert machine.thread(1).finished
        assert machine.thread(2).finished
