"""Tests for the Perfetto/Chrome trace exporter and metrics snapshots."""

import json

import pytest

import repro.obs as obs
from repro.errors import ConfigError
from repro.machine import build_machine
from repro.obs.export import (
    PID_STRIDE,
    chrome_trace,
    machine_trace,
    timeline_events,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.snapshot import machine_snapshot, write_snapshot
from repro.obs.timeline import ThreadState, Timeline


def small_timeline():
    timeline = Timeline()
    timeline.transition(0, 0, ThreadState.RUNNING, 0)
    timeline.transition(0, 0, ThreadState.MWAIT, 100)
    timeline.instant(1, 2, "promote-rf", 50)
    timeline.finish(300)
    return timeline


class TestTimelineEvents:
    def test_span_becomes_complete_event(self):
        events = timeline_events(small_timeline(), freq_ghz=1.0)
        spans = [e for e in events if e["ph"] == "X"]
        running = next(e for e in spans if e["name"] == "running")
        # 1 GHz: 1000 cycles per microsecond
        assert running["ts"] == 0.0
        assert running["dur"] == 0.1
        assert running["args"] == {"begin_cycle": 0, "end_cycle": 100}

    def test_metadata_names_cores_and_ptids(self):
        events = timeline_events(small_timeline(), freq_ghz=1.0,
                                 pid_base=2000, label="m2")
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["pid"], e["tid"], e["args"]["name"]) for e in meta}
        assert (2000, 0, "m2 core0") in names
        assert (2001, 2, "ptid2") in names

    def test_instant_has_thread_scope(self):
        events = timeline_events(small_timeline(), freq_ghz=1.0)
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["name"] == "promote-rf"

    def test_multi_machine_pid_blocks_disjoint(self):
        trace = chrome_trace([("m0", small_timeline(), 1.0),
                              ("m1", small_timeline(), 1.0)])
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {0, 1, PID_STRIDE, PID_STRIDE + 1}


class TestValidator:
    def test_accepts_good_trace(self):
        validate_chrome_trace(chrome_trace([("", small_timeline(), 3.0)]))

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_ts(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "dur": 1}]})

    def test_rejects_bad_instant_scope(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "i", "pid": 0, "tid": 0, "ts": 1,
                 "s": "bogus"}]})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "B", "pid": 0, "tid": 0, "ts": 1}]})


class TestMachineTrace:
    def test_uninstrumented_machine_rejected(self):
        with pytest.raises(ConfigError):
            machine_trace(build_machine())

    def test_instrumented_machine_round_trips(self, tmp_path):
        machine = build_machine(instrument=True)
        flag = machine.alloc("flag", 64)
        machine.load_asm(0, """
            movi r1, FLAG
            monitor r1
            mwait
            halt
        """, symbols={"FLAG": flag.base}, supervisor=True)
        machine.boot(0)
        machine.engine.at(500, machine.memory.store, flag.base, 1, "dev")
        machine.run(until=10_000)
        trace = machine_trace(machine)
        validate_chrome_trace(trace)
        path = tmp_path / "trace.json"
        write_trace(str(path), trace)
        validate_chrome_trace(json.loads(path.read_text()))

    def test_machine_snapshot_is_json_and_idempotent(self, tmp_path):
        machine = build_machine(instrument=True)
        machine.run(until=1_000)
        first = machine_snapshot(machine)
        second = machine_snapshot(machine)
        assert first == second  # harvest must not double-count
        assert first["metrics"]["counters"]["engine.cycles"] == 1_000
        path = tmp_path / "metrics.json"
        write_snapshot(str(path), first)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(first))


class TestE03EndToEnd:
    """Acceptance criterion: a full-instrumentation E03 run exports
    valid Chrome trace-event JSON."""

    def test_e03_trace_schema_valid(self, tmp_path):
        from repro.experiments import get_experiment

        with obs.session("E03") as sess:
            get_experiment("E03").run(quick=True)
        trace = sess.chrome_trace()
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert {e["name"] for e in events if e["ph"] == "X"} <= {
            s.value for s in ThreadState}
        path = tmp_path / "e03.json"
        write_trace(str(path), trace)
        validate_chrome_trace(json.loads(path.read_text()))

    def test_e03_session_snapshot_has_namespaced_metrics(self):
        from repro.experiments import get_experiment

        with obs.session("E03") as sess:
            get_experiment("E03").run(quick=True)
        snapshot = sess.snapshot()
        counters = snapshot["metrics"]["counters"]
        assert any(name.startswith("engine.") for name in counters)
        assert any(name.startswith("core0.issue.") for name in counters)
        json.dumps(snapshot)  # JSON-ready throughout
