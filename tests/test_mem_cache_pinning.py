"""Tests for cache-line pinning (Section 4 fine-grain partitioning)."""

from repro.mem.cache import Cache, CacheHierarchy


def small_cache(**kwargs):
    defaults = dict(name="t", size_bytes=4096, ways=4, line_bytes=64,
                    hit_cycles=4, miss_cycles=100)
    defaults.update(kwargs)
    return Cache(**defaults)


class TestPinning:
    def test_pin_makes_range_resident(self):
        cache = small_cache()
        cache.pin(0, 256)
        for addr in range(0, 256, 64):
            assert cache.contains(addr)

    def test_pinned_lines_survive_interference(self):
        cache = small_cache()
        cache.pin(0, 64)
        # stream 64 KiB through a 4 KiB cache
        for addr in range(0x10000, 0x20000, 64):
            cache.access(addr)
        assert cache.contains(0)

    def test_unpinned_lines_evicted_by_interference(self):
        cache = small_cache()
        cache.warm(0, 64)
        for addr in range(0x10000, 0x20000, 64):
            cache.access(addr)
        assert not cache.contains(0)

    def test_unpin_restores_evictability(self):
        cache = small_cache()
        cache.pin(0, 64)
        cache.unpin(0, 64)
        for addr in range(0x10000, 0x20000, 64):
            cache.access(addr)
        assert not cache.contains(0)

    def test_fully_pinned_set_bypasses_new_fills(self):
        # ways=4, sets = 4096/64/4 = 16; pin 4 lines mapping to set 0:
        # lines 0, 16, 32, 48 (line % 16 == 0)
        cache = small_cache()
        for line_index in (0, 16, 32, 48):
            cache.pin(line_index * 64, 64)
        before = cache.bypasses
        cache.access(64 * 64)  # line 64 also maps to set 0
        assert cache.bypasses == before + 1
        # the pinned lines are all still resident
        for line_index in (0, 16, 32, 48):
            assert cache.contains(line_index * 64)

    def test_flush_spares_pinned_lines(self):
        cache = small_cache()
        cache.pin(0, 64)
        cache.warm(128, 64)
        cache.flush()
        assert cache.contains(0)
        assert not cache.contains(128)


class TestHierarchyPinning:
    def test_pin_applies_to_every_level(self):
        caches = CacheHierarchy()
        caches.pin(0x2000, 128)
        assert caches.l1.contains(0x2000)
        assert caches.l2.contains(0x2000)
        assert caches.l3.contains(0x2000)

    def test_pinned_walk_stays_l1_fast_after_streaming(self):
        caches = CacheHierarchy()
        caches.pin(0x1000, 4096)
        caches.walk_working_set(0x4000000, 16 * 1024 * 1024)
        cycles = caches.walk_working_set(0x1000, 4096)
        assert cycles == (4096 // 64) * caches.l1.hit_cycles

    def test_unpinned_walk_pays_dram_after_streaming(self):
        caches = CacheHierarchy()
        caches.walk_working_set(0x1000, 4096)
        caches.walk_working_set(0x4000000, 64 * 1024 * 1024)
        cycles = caches.walk_working_set(0x1000, 4096)
        per_line_cold = (caches.l1.hit_cycles + caches.l2.hit_cycles
                         + caches.l3.hit_cycles + caches.l3.miss_cycles)
        assert cycles == (4096 // 64) * per_line_cold

    def test_unpin_hierarchy(self):
        caches = CacheHierarchy()
        caches.pin(0x1000, 64)
        caches.unpin(0x1000, 64)
        caches.flush()
        assert not caches.l1.contains(0x1000)
