"""The coherence subsystem: directory watch bus, remote mwait mailboxes,
sharded TDT, and the cluster/obs plumbing around them.

The load-bearing contract is the identity guarantee: with no model
attached (the default everywhere) and with the ``"null"`` model (the
directory protocol at zero latency) the simulation is byte-identical to
the seed's flat bus -- which is what lets every E01-E16 result survive
this subsystem landing.
"""

import json

import pytest

import repro.obs as obs
from repro.arch.costs import CostModel
from repro.cluster import ClusterConfig, run_cluster, scaled
from repro.cluster.fabric import Fabric, LinkSpec
from repro.coherence import (
    DirectoryModel,
    MailboxWindow,
    RemoteStoreFabric,
    ShardedTdt,
)
from repro.distributed.rpc import SW_THREADS
from repro.errors import ConfigError
from repro.hw.tdt import Permission
from repro.machine import build_machine
from repro.mem.memory import Memory
from repro.mem.watch import WatchBus
from repro.sim.engine import Engine

COSTS = CostModel()


class TestDirectoryModel:
    def test_arm_joins_and_cancel_leaves_the_sharer_set(self):
        bus = WatchBus()
        model = bus.coherence = DirectoryModel(COSTS)
        line = 4
        first = bus.watch(line * 64)
        second = bus.watch(line * 64 + 63)     # same line, any byte
        assert model.sharer_count(line) == 2
        assert first.cancel() == COSTS.dir_disarm_cycles
        assert model.sharer_count(line) == 1
        second.cancel()
        # last sharer gone: the entry is deallocated, not left empty
        assert model.lines_tracked() == 0

    def test_arm_returns_the_directory_cost(self):
        bus = WatchBus()
        bus.coherence = DirectoryModel(COSTS)
        watch = bus.watch([])
        assert watch.add_address(0) == COSTS.dir_arm_cycles
        # second address on the *same* line: already in S, free
        assert watch.add_address(32) == 0
        assert watch.add_address(64) == COSTS.dir_arm_cycles

    def test_writer_pays_base_plus_per_sharer(self):
        bus = WatchBus()
        model = bus.coherence = DirectoryModel(COSTS)
        for _ in range(3):
            bus.watch(0)
        bus.notify(8, 1)
        assert model.last_write_cycles == (
            COSTS.dir_inval_base_cycles
            + 3 * COSTS.dir_inval_per_sharer_cycles)
        assert model.writes_shared == 1

    def test_untracked_write_is_free_and_resets_the_bill(self):
        bus = WatchBus()
        model = bus.coherence = DirectoryModel(COSTS)
        bus.watch(0)
        bus.notify(0, 1)
        assert model.last_write_cycles > 0
        bus.notify(640, 1)                      # nobody watches this line
        assert model.last_write_cycles == 0
        assert model.writes_untracked == 1

    def test_forwards_serialize_in_arm_order(self):
        engine = Engine()
        bus = WatchBus()
        model = bus.coherence = DirectoryModel(COSTS, engine=engine)
        woken = []
        for index in range(3):
            watch = bus.watch(0)
            watch.signal.add_waiter(
                lambda info, index=index: woken.append((index, engine.now)))
        engine.at(100, bus.notify, 0, 7, "test")
        engine.run()
        assert [index for index, _ in woken] == [0, 1, 2]
        assert [at - 100 for _, at in woken] == [
            model.wakeup_delay(i) for i in range(3)]

    def test_cancel_while_forward_in_flight_suppresses_the_wakeup(self):
        engine = Engine()
        bus = WatchBus()
        bus.coherence = DirectoryModel(COSTS, engine=engine)
        watch = bus.watch(0)
        fired = []
        watch.signal.add_waiter(fired.append)
        engine.at(100, bus.notify, 0, 7, "test")
        engine.at(101, watch.cancel)            # before the forward lands
        engine.run()
        assert fired == []
        assert bus.total_triggers == 0

    def test_null_model_is_synchronous_and_free(self):
        bus = WatchBus()
        bus.coherence = DirectoryModel.from_name("null", COSTS,
                                                 engine=Engine())
        watch = bus.watch(0)
        fired = []
        watch.signal.add_waiter(fired.append)
        assert watch.add_address(128) == 0
        assert bus.notify(0, 7) == 1            # delivered inline
        assert len(fired) == 1
        assert bus.coherence.last_write_cycles == 0

    def test_unknown_model_name_rejected(self):
        with pytest.raises(ConfigError):
            DirectoryModel.from_name("mesi", COSTS)
        with pytest.raises(ConfigError):
            build_machine(coherence="mesi")


class TestMachineIdentity:
    """A machine with the null model == a machine with no model, byte
    for byte; the directory model only ever adds cycles."""

    WAITER = """
        movi r1, FLAG
        monitor r1
        mwait
        movi r2, RESP
        movi r3, 1
        st r2, 0, r3
        halt
    """

    def _run(self, coherence):
        machine = build_machine(coherence=coherence)
        flag = machine.alloc("flag", 64)
        resp = machine.alloc("resp", 64)
        machine.load_asm(0, self.WAITER,
                         symbols={"FLAG": flag.base, "RESP": resp.base},
                         supervisor=True)
        machine.boot(0)
        machine.run(max_events=200)
        wake_at = machine.engine.now + 50
        machine.engine.at(wake_at, machine.memory.store, flag.base, 1, "t")
        machine.run(until=wake_at + 10_000)
        machine.check()
        return machine

    def test_null_matches_seed_byte_identically(self):
        seed = self._run(None).stats()
        null = self._run("null").stats()
        assert json.dumps(seed, sort_keys=True) \
            == json.dumps(null, sort_keys=True)

    def test_directory_only_adds_cycles(self):
        seed = self._run(None)
        priced = self._run("directory")
        assert priced.memory.load(
            priced.memory.region("resp").base) == 1
        assert priced.engine.now > seed.engine.now
        assert priced.coherence.forwards >= 1


class TestRemoteStoreFabric:
    def _fabric(self, engine):
        import random
        return Fabric(engine, rng=random.Random(7),
                      default_link=LinkSpec(base_cycles=500,
                                            jitter_mean_cycles=0.0))

    def test_remote_store_lands_in_the_mailbox(self):
        engine = Engine()
        remote = RemoteStoreFabric(self._fabric(engine))
        memory = Memory(size_bytes=1 << 16)
        region = memory.alloc("mbox", 64)
        remote.register("nodeA", memory, region.base)
        delivery = remote.remote_store("client", "nodeA", 2, 99)
        assert delivery == 500
        engine.run()
        assert memory.load(region.base + 2 * 8) == 99
        assert remote.stores_delivered == 1

    def test_remote_store_wakes_a_watcher(self):
        engine = Engine()
        remote = RemoteStoreFabric(self._fabric(engine))
        memory = Memory(size_bytes=1 << 16)
        region = memory.alloc("mbox", 64)
        remote.register("nodeA", memory, region.base)
        fired = []
        memory.watch_bus.subscribe(region.base, fired.append)
        remote.remote_store("client", "nodeA", 0, 7)
        engine.run()
        assert fired and fired[0]["value"] == 7
        assert fired[0]["source"] == "rdma:client"

    def test_unknown_destination_rejected(self):
        remote = RemoteStoreFabric(self._fabric(Engine()))
        with pytest.raises(ConfigError):
            remote.remote_store("client", "nowhere", 0, 1)

    def test_mailbox_word_bounds(self):
        window = MailboxWindow("n", Memory(size_bytes=1 << 12), 0, words=4)
        assert window.addr(3) == 24
        with pytest.raises(ConfigError):
            window.addr(4)


class TestShardedTdt:
    def _tdt(self, shards=4, **kw):
        memories = [Memory(size_bytes=1 << 16) for _ in range(shards)]
        return ShardedTdt.build(memories, population=64, costs=COSTS, **kw)

    def test_home_resolution_uses_the_local_cache(self):
        tdt = self._tdt()
        entry, cold = tdt.resolve(1, 5)         # 5 % 4 == 1: home shard
        assert entry.ptid == 5 % 32
        _, warm = tdt.resolve(1, 5)
        assert cold == COSTS.tdt_miss_cycles
        assert warm == COSTS.tdt_lookup_cycles
        assert tdt.remote_misses == 0

    def test_remote_resolution_pays_the_fabric_then_caches(self):
        tdt = self._tdt()
        _, cold = tdt.resolve(0, 5)
        _, warm = tdt.resolve(0, 5)
        assert cold == COSTS.tdt_cross_shard_cycles + COSTS.tdt_miss_cycles
        assert warm == COSTS.tdt_lookup_cycles
        assert (tdt.remote_misses, tdt.remote_hits) == (1, 1)

    def test_remote_cache_evicts_fifo(self):
        tdt = self._tdt(remote_cache_entries=2)
        tdt.resolve(0, 1)
        tdt.resolve(0, 2)
        tdt.resolve(0, 3)                       # evicts vtid 1
        _, again = tdt.resolve(0, 1)
        assert again == COSTS.tdt_cross_shard_cycles + COSTS.tdt_miss_cycles

    def test_invtid_broadcasts_to_every_cache(self):
        tdt = self._tdt()
        for caller in range(4):
            tdt.resolve(caller, 5)
        tdt.update(5, ptid=9, permissions=Permission.ALL)
        for caller in range(4):
            entry, cycles = tdt.resolve(caller, 5)
            assert entry.ptid == 9              # update visible post-invtid
            assert cycles >= COSTS.tdt_miss_cycles
        assert tdt.invalidations == 1

    def test_build_homes_every_vtid(self):
        tdt = self._tdt()
        assert all(tdt.home(v) == v % 4 for v in range(64))
        assert tdt.tables[2].get_entry(2).ptid == 2 % 32

    def test_caller_shard_validated(self):
        with pytest.raises(ConfigError):
            self._tdt().resolve(9, 0)
        with pytest.raises(ConfigError):
            ShardedTdt([], costs=COSTS)


class TestClusterCoherence:
    def _config(self, **overrides):
        defaults = dict(nodes=2, design=SW_THREADS, fanout=1, requests=4,
                        mean_service_cycles=4_000, rtt_cycles=4_000,
                        backend="isa", coherence="directory",
                        link=LinkSpec(base_cycles=2_000,
                                      jitter_mean_cycles=250.0))
        defaults.update(overrides)
        return ClusterConfig(**defaults)

    def test_coherence_requires_the_isa_backend(self):
        with pytest.raises(ConfigError):
            self._config(backend="model")

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            self._config(coherence="mesi")

    def test_label_carries_the_model(self):
        assert self._config().label().endswith(".coh-directory")
        assert ".coh-" not in self._config(coherence="off").label()

    def test_cluster_runs_and_snapshots_directory_counters(self):
        config = self._config()
        with obs.session("coh") as sess:
            run_cluster(config, seed=13)
        counters = sess.snapshot()["metrics"]["counters"]
        arms = [v for k, v in counters.items()
                if k.startswith("coherence.directory") and k.endswith(".arms")]
        assert len(arms) == config.nodes
        assert sum(arms) > 0

    def test_sharded_snapshot_byte_identical_with_coherence_on(self):
        # the PR 6/7 obs-merge contract extended to coherence.*: a PDES
        # shard worker's machines register their directory sources where
        # they live and ship them home in global node order
        config = self._config(nodes=4, fanout=2, requests=8)

        def snapshot(cfg):
            with obs.session("coh-pdes") as sess:
                run_cluster(cfg, seed=13)
            return sess.snapshot()

        assert snapshot(config) == snapshot(scaled(config, shards=2))
