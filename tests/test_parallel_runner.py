"""The parallel evaluation runner must be invisible in the results."""

import pytest

from repro.errors import ConfigError
from repro.experiments import all_experiments
from repro.experiments.parallel import run_parallel


@pytest.mark.parametrize("queue_mode", ["heap", "wheel"])
def test_parallel_matches_serial_byte_for_byte(queue_mode, monkeypatch):
    # both engine backing stores must hold the serial/parallel identity
    # (workers inherit the env var through the spawn environment)
    monkeypatch.setenv("REPRO_ENGINE_QUEUE", queue_mode)
    serial = [experiment.run(quick=True)
              for experiment in all_experiments()]
    parallel = run_parallel(quick=True, workers=4)
    assert [r.experiment_id for r in parallel] == \
        [r.experiment_id for r in serial]
    for fast, slow in zip(parallel, serial):
        assert fast.render_markdown() == slow.render_markdown()


def test_subset_and_order_preserved():
    results = run_parallel(["E04", "E02"], quick=True, workers=2)
    assert [r.experiment_id for r in results] == ["E04", "E02"]


def test_single_worker_runs_in_process():
    results = run_parallel(["E02"], quick=True, workers=1)
    assert results[0].experiment_id == "E02"


def test_invalid_worker_count():
    with pytest.raises(ConfigError):
        run_parallel(["E02"], quick=True, workers=0)


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigError):
        run_parallel(["E99"], quick=True)
