"""Tests for the NIC model."""

import pytest

from repro.devices import Nic
from repro.errors import ConfigError
from repro.machine import build_machine
from repro.mem.memory import WORD_BYTES
from repro.workloads import DeterministicArrivals, PoissonArrivals


def make_nic(**kwargs):
    machine = build_machine()
    nic = Nic(machine.engine, machine.memory, machine.dma, **kwargs)
    return machine, nic


class TestRxPath:
    def test_packets_land_with_descriptor_and_tail(self):
        machine, nic = make_nic()
        nic.start_rx(DeterministicArrivals(1000),
                     machine.rngs.stream("rx"), max_packets=3)
        machine.run(until=100_000)
        assert nic.packets_delivered == 3
        assert machine.memory.load(nic.rx.tail_addr) == 3
        # first descriptor: length and payload pointer are filled
        desc0 = nic.rx.slot_desc_addr(0)
        assert machine.memory.load(desc0) == nic.rx.payload_words * WORD_BYTES
        assert machine.memory.load(desc0 + WORD_BYTES) \
            == nic.rx.slot_buffer_addr(0)

    def test_payload_lands_before_tail_advances(self):
        machine, nic = make_nic()
        seen = []

        def on_tail(info):
            # at tail-write time the payload must already be in memory
            seq = info["value"] - 1
            buf = nic.rx.slot_buffer_addr(seq)
            seen.append(machine.memory.load(buf))

        machine.memory.watch_bus.subscribe(nic.rx.tail_addr, on_tail)
        nic.start_rx(DeterministicArrivals(500),
                     machine.rngs.stream("rx"), max_packets=2)
        machine.run(until=100_000)
        assert seen == [0, 1]  # payload word 0 carries the seq number

    def test_consume_pops_in_order(self):
        machine, nic = make_nic()
        nic.start_rx(DeterministicArrivals(500),
                     machine.rngs.stream("rx"), max_packets=4)
        machine.run(until=100_000)
        seqs = []
        while True:
            pkt = nic.rx.consume()
            if pkt is None:
                break
            seqs.append(pkt["seq"])
        assert seqs == [0, 1, 2, 3]
        assert nic.rx.pending() == 0

    def test_ring_overflow_drops(self):
        machine, nic = make_nic(rx_slots=4)
        # nobody consumes: only 4 packets fit
        nic.start_rx(DeterministicArrivals(100),
                     machine.rngs.stream("rx"), max_packets=10)
        machine.run(until=1_000_000)
        assert nic.packets_delivered == 4
        assert nic.packets_dropped == 6

    def test_consuming_frees_slots(self):
        machine, nic = make_nic(rx_slots=4)
        machine.memory.watch_bus.subscribe(
            nic.rx.tail_addr, lambda info: nic.rx.consume())
        nic.start_rx(DeterministicArrivals(1000),
                     machine.rngs.stream("rx"), max_packets=10)
        machine.run(until=1_000_000)
        assert nic.packets_delivered == 10
        assert nic.packets_dropped == 0

    def test_overlapping_dma_keeps_tail_monotonic(self):
        # arrivals faster than the DMA latency: tail must still step 1,2,3...
        machine, nic = make_nic()
        tails = []
        machine.memory.watch_bus.subscribe(
            nic.rx.tail_addr, lambda info: tails.append(info["value"]))
        nic.start_rx(DeterministicArrivals(10),
                     machine.rngs.stream("rx"), max_packets=8)
        machine.run(until=1_000_000)
        assert tails == list(range(1, 9))

    def test_stop_rx_halts_generation(self):
        machine, nic = make_nic()
        nic.start_rx(DeterministicArrivals(100),
                     machine.rngs.stream("rx"))
        machine.engine.at(450, nic.stop_rx)
        machine.run(until=10_000)
        assert nic.packets_generated == 4

    def test_delivery_times_recorded(self):
        machine, nic = make_nic()
        nic.start_rx(PoissonArrivals(2000), machine.rngs.stream("rx"),
                     max_packets=5)
        machine.run(until=1_000_000)
        assert set(nic.delivery_time) == set(range(5))
        for seq in range(5):
            assert nic.delivery_time[seq] >= nic.generated_time[seq]


class TestTxPath:
    def test_doorbell_produces_completion(self):
        machine, nic = make_nic()
        machine.memory.store(nic.tx.doorbell_addr, 1)
        machine.run(until=100_000)
        assert nic.tx_completed == 1
        assert machine.memory.load(nic.tx.completion_addr) == 1

    def test_multiple_doorbells(self):
        machine, nic = make_nic()
        for i in range(3):
            machine.engine.at(1000 * (i + 1), machine.memory.store,
                              nic.tx.doorbell_addr, i + 1, "cpu")
        machine.run(until=100_000)
        assert nic.tx_completed == 3

    def test_completion_write_wakes_watcher(self):
        machine, nic = make_nic()
        hits = []
        machine.memory.watch_bus.subscribe(
            nic.tx.completion_addr, lambda info: hits.append(info))
        machine.memory.store(nic.tx.doorbell_addr, 1)
        machine.run(until=100_000)
        assert len(hits) == 1


class TestValidation:
    def test_zero_slots_rejected(self):
        with pytest.raises(ConfigError):
            make_nic(rx_slots=0)

    def test_zero_payload_rejected(self):
        with pytest.raises(ConfigError):
            make_nic(payload_words=0)
