"""Tests for the cost-model sensitivity / break-even analysis."""

import pytest

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.experiments.sensitivity import (
    BreakEven,
    _binary_search_flip,
    io_wakeup_break_even,
    ipc_break_even,
    run_sensitivity,
    sensitivity_table,
    syscall_break_even,
)


class TestBinarySearchFlip:
    def test_finds_exact_threshold(self):
        # proposal wins iff v >= 17
        assert _binary_search_flip(1, 100, lambda v: v >= 17) == 17

    def test_none_when_always_winning(self):
        assert _binary_search_flip(1, 100, lambda v: True) is None

    def test_raises_when_never_winning(self):
        with pytest.raises(ConfigError):
            _binary_search_flip(1, 100, lambda v: False)


class TestSyscallBreakEven:
    def test_default_margin_order_of_magnitude(self):
        record = syscall_break_even()
        assert record.break_even_value is not None
        assert record.margin > 5  # mode switch must get ~10x cheaper

    def test_break_even_is_consistent(self):
        record = syscall_break_even()
        costs = CostModel()
        hw = (costs.rpull_rpush_cycles + costs.hw_start_rf_cycles
              + costs.monitor_wakeup_cycles)
        at_flip = costs.scaled(
            mode_switch_cycles=record.break_even_value)
        below_flip = costs.scaled(
            mode_switch_cycles=record.break_even_value - 1)
        assert hw < at_flip.syscall_sync_cycles()
        assert hw >= below_flip.syscall_sync_cycles()

    def test_respects_custom_cost_model(self):
        cheap = CostModel().scaled(mode_switch_cycles=100)
        record = syscall_break_even(cheap)
        assert record.default_value == 100


class TestIoWakeupBreakEven:
    def test_huge_headroom(self):
        record = io_wakeup_break_even()
        # the RF start may grow >100x before mwait loses to the IDT chain
        assert record.margin > 50

    def test_break_even_below_idt_chain(self):
        record = io_wakeup_break_even()
        costs = CostModel()
        assert record.break_even_value <= costs.baseline_io_wakeup_cycles()


class TestIpcBreakEven:
    def test_scheduler_must_shrink_dramatically(self):
        record = ipc_break_even()
        assert record.break_even_value is not None
        assert record.margin > 10


class TestRunAndRender:
    def test_all_three_searches(self):
        results = run_sensitivity()
        assert len(results) == 3
        assert all(isinstance(r, BreakEven) for r in results)

    def test_all_margins_comfortable(self):
        # the reproduction's headline: no conclusion flips within an
        # order of magnitude of the paper's constants
        for record in run_sensitivity():
            assert record.margin > 5, record.constant

    def test_table_renders(self):
        table = sensitivity_table()
        assert len(table) == 3
        assert "safety margin" in table.render()
