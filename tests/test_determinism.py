"""Reproducibility: same seed means byte-identical results."""

import pytest

from repro.experiments import get_experiment

#: cheap experiments suitable for a double run in CI
CHEAP = ("E02", "E04", "E10", "E11", "E13")


@pytest.mark.parametrize("experiment_id", CHEAP)
def test_experiment_rerun_is_identical(experiment_id):
    experiment = get_experiment(experiment_id)
    first = experiment.run(quick=True, seed=123)
    second = experiment.run(quick=True, seed=123)
    assert first.render() == second.render()
    assert first.to_json() == second.to_json()


def test_seed_changes_samples_but_not_verdicts():
    experiment = get_experiment("E04")
    a = experiment.run(quick=True, seed=1)
    b = experiment.run(quick=True, seed=2)
    assert [c.verdict for c in a.claims] == [c.verdict for c in b.claims]


def test_rng_streams_isolated_by_name():
    from repro.sim.rng import RngStreams
    streams = RngStreams(7)
    first_a = [streams.stream("a").random() for _ in range(5)]
    # interleaving draws from another stream must not perturb "a"
    streams2 = RngStreams(7)
    rng_a = streams2.stream("a")
    rng_b = streams2.stream("b")
    interleaved = []
    for _ in range(5):
        interleaved.append(rng_a.random())
        rng_b.random()
    assert first_a == interleaved
