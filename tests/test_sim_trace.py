"""Tests for the tracer."""

from repro.sim.engine import Engine
from repro.sim.trace import TraceEvent, Tracer


def make_tracer(**kwargs):
    return Tracer(Engine(), **kwargs)


class TestTracer:
    def test_disabled_by_default(self):
        tracer = make_tracer()
        tracer.emit("issue", "x")
        assert tracer.events == []

    def test_enabled_records_with_time(self):
        engine = Engine()
        tracer = Tracer(engine, enabled=True)
        engine.at(50, tracer.emit, "issue", "tick")
        engine.run()
        assert len(tracer.events) == 1
        assert tracer.events[0].time == 50
        assert tracer.events[0].category == "issue"

    def test_category_filter(self):
        tracer = make_tracer(enabled=True, categories={"exception"})
        tracer.emit("issue", "ignored")
        tracer.emit("exception", "kept")
        assert [e.category for e in tracer.events] == ["exception"]

    def test_payload_captured(self):
        tracer = make_tracer(enabled=True)
        tracer.emit("issue", "x", cost=5, ptid=3)
        assert tracer.events[0].payload == {"cost": 5, "ptid": 3}

    def test_limit_drops_and_counts(self):
        tracer = make_tracer(enabled=True, limit=2)
        for i in range(5):
            tracer.emit("c", f"e{i}")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_counters_always_live(self):
        tracer = make_tracer(enabled=False)
        tracer.count("wasted", 10)
        tracer.count("wasted", 5)
        assert tracer.counters["wasted"] == 15

    def test_filter_by_category(self):
        tracer = make_tracer(enabled=True)
        tracer.emit("a", "1")
        tracer.emit("b", "2")
        tracer.emit("a", "3")
        assert len(tracer.filter("a")) == 2

    def test_clear_resets_everything(self):
        tracer = make_tracer(enabled=True, limit=1)
        tracer.emit("a", "1")
        tracer.emit("a", "2")
        tracer.count("x")
        tracer.clear()
        assert tracer.events == []
        assert tracer.dropped == 0
        assert not tracer.counters

    def test_dump_truncates(self):
        tracer = make_tracer(enabled=True)
        for i in range(10):
            tracer.emit("c", f"e{i}")
        dump = tracer.dump(max_lines=3)
        assert "7 more events" in dump

    def test_event_str_format(self):
        event = TraceEvent(42, "issue", "hello", {"k": 1})
        text = str(event)
        assert "42" in text and "issue" in text and "hello" in text


class TestMachineTracing:
    def test_machine_trace_captures_issues_and_exceptions(self):
        from repro.machine import build_machine
        machine = build_machine(trace=True)
        edp = machine.alloc("edp", 64)
        machine.load_asm(0, """
            movi r1, 1
            movi r2, 0
            div r3, r1, r2
            halt
        """, supervisor=True, edp=edp.base)
        machine.boot(0)
        machine.run(until=10_000)
        assert machine.tracer.filter("issue")
        assert machine.tracer.filter("exception")
