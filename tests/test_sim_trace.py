"""Tests for the tracer."""

from repro.sim.engine import Engine
from repro.sim.trace import TraceEvent, Tracer


def make_tracer(**kwargs):
    return Tracer(Engine(), **kwargs)


class TestTracer:
    def test_disabled_by_default(self):
        tracer = make_tracer()
        tracer.emit("issue", "x")
        assert tracer.events == []

    def test_enabled_records_with_time(self):
        engine = Engine()
        tracer = Tracer(engine, enabled=True)
        engine.at(50, tracer.emit, "issue", "tick")
        engine.run()
        assert len(tracer.events) == 1
        assert tracer.events[0].time == 50
        assert tracer.events[0].category == "issue"

    def test_category_filter(self):
        tracer = make_tracer(enabled=True, categories={"exception"})
        tracer.emit("issue", "ignored")
        tracer.emit("exception", "kept")
        assert [e.category for e in tracer.events] == ["exception"]

    def test_payload_captured(self):
        tracer = make_tracer(enabled=True)
        tracer.emit("issue", "x", cost=5, ptid=3)
        assert tracer.events[0].payload == {"cost": 5, "ptid": 3}

    def test_limit_drops_and_counts(self):
        tracer = make_tracer(enabled=True, limit=2)
        for i in range(5):
            tracer.emit("c", f"e{i}")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_counters_always_live(self):
        tracer = make_tracer(enabled=False)
        tracer.count("wasted", 10)
        tracer.count("wasted", 5)
        assert tracer.counters["wasted"] == 15

    def test_filter_by_category(self):
        tracer = make_tracer(enabled=True)
        tracer.emit("a", "1")
        tracer.emit("b", "2")
        tracer.emit("a", "3")
        assert len(tracer.filter("a")) == 2

    def test_clear_resets_everything(self):
        tracer = make_tracer(enabled=True, limit=1)
        tracer.emit("a", "1")
        tracer.emit("a", "2")
        tracer.count("x")
        tracer.clear()
        assert tracer.events == []
        assert tracer.dropped == 0
        assert not tracer.counters

    def test_dump_truncates(self):
        tracer = make_tracer(enabled=True)
        for i in range(10):
            tracer.emit("c", f"e{i}")
        dump = tracer.dump(max_lines=3)
        assert "7 more events" in dump

    def test_event_str_format(self):
        event = TraceEvent(42, "issue", "hello", {"k": 1})
        text = str(event)
        assert "42" in text and "issue" in text and "hello" in text

    def test_drop_accounting_invariant_with_categories(self):
        # len(events) + dropped == true emit count for SELECTED
        # categories; deselected categories never count as dropped
        tracer = make_tracer(enabled=True, categories={"keep"}, limit=2)
        for i in range(4):
            tracer.emit("keep", f"k{i}")
            tracer.emit("skip", f"s{i}")
        assert len(tracer.events) == 2
        assert tracer.dropped == 2
        assert len(tracer.events) + tracer.dropped == 4


class TestMerge:
    def test_counters_add(self):
        a = make_tracer()
        b = make_tracer()
        a.count("wasted", 10)
        b.count("wasted", 5)
        b.count("other", 1)
        a.merge(b)
        assert a.counters["wasted"] == 15
        assert a.counters["other"] == 1

    def test_events_append_in_order(self):
        a = make_tracer(enabled=True)
        b = make_tracer(enabled=True)
        a.emit("x", "a1")
        b.emit("x", "b1")
        b.emit("x", "b2")
        a.merge(b)
        assert [e.message for e in a.events] == ["a1", "b1", "b2"]

    def test_overflow_counts_into_dropped(self):
        a = make_tracer(enabled=True, limit=3)
        b = make_tracer(enabled=True)
        a.emit("x", "a1")
        a.emit("x", "a2")
        for i in range(4):
            b.emit("x", f"b{i}")
        a.merge(b)
        assert len(a.events) == 3
        assert a.events[-1].message == "b0"
        assert a.dropped == 3
        # invariant survives the merge: 2 + 4 emits total
        assert len(a.events) + a.dropped == 6

    def test_other_tracers_dropped_carries_over(self):
        a = make_tracer(enabled=True)
        b = make_tracer(enabled=True, limit=1)
        b.emit("x", "kept")
        b.emit("x", "lost")
        a.merge(b)
        assert a.dropped == 1
        assert len(a.events) == 1

    def test_merge_into_full_tracer_drops_everything(self):
        a = make_tracer(enabled=True, limit=1)
        b = make_tracer(enabled=True)
        a.emit("x", "only")
        b.emit("x", "b1")
        b.emit("x", "b2")
        a.merge(b)
        assert [e.message for e in a.events] == ["only"]
        assert a.dropped == 2


class TestMachineTracing:
    def test_machine_trace_captures_issues_and_exceptions(self):
        from repro.machine import build_machine
        machine = build_machine(trace=True)
        edp = machine.alloc("edp", 64)
        machine.load_asm(0, """
            movi r1, 1
            movi r2, 0
            div r3, r1, r2
            halt
        """, supervisor=True, edp=edp.base)
        machine.boot(0)
        machine.run(until=10_000)
        assert machine.tracer.filter("issue")
        assert machine.tracer.filter("exception")
