"""Tests for VM-exit paths and the guest model."""

import pytest

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.hypervisor import (
    ExitReason,
    GuestVm,
    HwThreadExitPath,
    InThreadExitPath,
    SplitXExitPath,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


def run_guest(path_cls, total_work=100_000, interval=5_000, **kwargs):
    engine = Engine()
    path = path_cls(engine, CostModel(), **kwargs)
    guest = GuestVm(engine, path, total_work, interval)
    engine.run()
    return path, guest


class TestOverheads:
    def test_in_thread_is_vm_exit_cost(self):
        costs = CostModel()
        path = InThreadExitPath(Engine(), costs)
        assert path.overhead_cycles() == costs.vm_exit_cycles

    def test_hw_thread_is_stop_plus_two_starts(self):
        costs = CostModel()
        path = HwThreadExitPath(Engine(), costs)
        assert path.overhead_cycles() \
            == costs.hw_stop_cycles + 2 * costs.hw_start_rf_cycles

    def test_splitx_is_two_comm_hops(self):
        path = SplitXExitPath(Engine(), comm_cycles=250)
        assert path.overhead_cycles() == 500

    def test_ordering_hw_cheapest(self):
        costs = CostModel()
        engine = Engine()
        hw = HwThreadExitPath(engine, costs).overhead_cycles()
        sx = SplitXExitPath(engine, costs).overhead_cycles()
        it = InThreadExitPath(engine, costs).overhead_cycles()
        assert hw < sx < it


class TestGuestVm:
    def test_exit_count_matches_intervals(self):
        path, guest = run_guest(InThreadExitPath,
                                total_work=100_000, interval=10_000)
        # work of 100k at 10k intervals -> 9 interior exits
        assert path.exits == 9

    def test_slowdown_above_one(self):
        _path, guest = run_guest(InThreadExitPath)
        assert guest.slowdown() > 1.0

    def test_slowdown_ordering(self):
        slowdowns = {}
        for cls in (InThreadExitPath, SplitXExitPath, HwThreadExitPath):
            _path, guest = run_guest(cls)
            slowdowns[cls.__name__] = guest.slowdown()
        assert slowdowns["HwThreadExitPath"] \
            < slowdowns["SplitXExitPath"] \
            < slowdowns["InThreadExitPath"]

    def test_exit_latency_recorded(self):
        _path, guest = run_guest(HwThreadExitPath)
        costs = CostModel()
        expected = (costs.hw_stop_cycles + 2 * costs.hw_start_rf_cycles
                    + 400)  # + default handler work
        assert guest.exit_recorder.pct(50) == expected

    def test_random_intervals_reproducible(self):
        results = []
        for _ in range(2):
            engine = Engine()
            rng = RngStreams(5).stream("g")
            guest = GuestVm(engine, InThreadExitPath(engine), 200_000,
                            5_000, rng=rng)
            engine.run()
            results.append(guest.wall_cycles())
        assert results[0] == results[1]

    def test_wall_cycles_requires_finish(self):
        engine = Engine()
        guest = GuestVm(engine, InThreadExitPath(engine), 10_000, 1_000)
        with pytest.raises(ConfigError):
            guest.wall_cycles()

    def test_rejects_bad_params(self):
        engine = Engine()
        with pytest.raises(ConfigError):
            GuestVm(engine, InThreadExitPath(engine), 0, 100)


class TestSplitXQueueing:
    def test_shared_core_queues_under_contention(self):
        # two guests exiting simultaneously: second handler waits
        engine = Engine()
        path = SplitXExitPath(engine, CostModel())
        streams = RngStreams(1)
        guests = [GuestVm(engine, path, 100_000, 2_000,
                          handler_work_cycles=1_500, name=f"g{i}")
                  for i in range(4)]
        engine.run()
        solo_engine = Engine()
        solo_path = SplitXExitPath(solo_engine, CostModel())
        solo = GuestVm(solo_engine, solo_path, 100_000, 2_000,
                       handler_work_cycles=1_500)
        solo_engine.run()
        shared_mean = sum(g.slowdown() for g in guests) / 4
        assert shared_mean > solo.slowdown()

    def test_hv_core_busy_tracked(self):
        engine = Engine()
        path = SplitXExitPath(engine, CostModel())
        guest = GuestVm(engine, path, 50_000, 5_000,
                        handler_work_cycles=700)
        engine.run()
        assert path.hv_core_busy_cycles == path.exits * 700

    def test_rejects_bad_comm(self):
        with pytest.raises(ConfigError):
            SplitXExitPath(Engine(), comm_cycles=0)


class TestExitReasons:
    def test_all_reasons_usable(self):
        engine = Engine()
        path = InThreadExitPath(engine)

        def one_exit(reason):
            yield from path.exit(reason, 100)

        for reason in ExitReason:
            engine.spawn(one_exit(reason))
        engine.run()
        assert path.exits == len(ExitReason)
