"""Tests for remote register access (rpull/rpush) and its permissions."""

from repro import build_machine
from repro.hw import ExceptionDescriptor, ExceptionKind, Permission, PtidState


def test_rpull_reads_disabled_threads_registers():
    machine = build_machine(hw_threads_per_core=8)
    machine.load_asm(1, "movi r7, 777\nhalt")
    victim = machine.thread(1)
    victim.arch.write("r7", 777)  # context parked with a value
    machine.load_asm(0, "rpull 1, r2, r7\nhalt", supervisor=True)
    machine.boot(0)
    machine.run()
    assert machine.thread(0).arch.read("r2") == 777


def test_rpush_swaps_software_thread_into_hardware_thread():
    """The paper's stated purpose: 'swap software threads in and out of
    hardware threads'. A supervisor writes a fresh context (pc + regs)
    into a parked ptid and starts it."""
    machine = build_machine(hw_threads_per_core=8)
    machine.load_asm(1, """
        halt            ; pc 0: original entry, never used
        addi r2, r1, 5  ; pc 1: injected entry point
        halt
    """)
    machine.load_asm(0, """
        movi r4, 37
        rpush 1, r1, r4   ; new thread's r1
        movi r4, 1
        rpush 1, pc, r4   ; entry point
        start 1
        halt
    """, supervisor=True)
    machine.boot(0)
    machine.run()
    injected = machine.thread(1)
    assert injected.finished
    assert injected.arch.read("r2") == 42


def test_rpull_on_runnable_target_is_thread_state_fault():
    machine = build_machine(hw_threads_per_core=8)
    edp = machine.alloc("edp", 64)
    machine.load_asm(1, "work 100000\nhalt")
    machine.load_asm(0, "rpull 1, r2, r1\nhalt", supervisor=True, edp=edp.base)
    machine.boot(1)
    machine.boot(0)
    machine.run(until=1000)
    descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
    assert descriptor.kind is ExceptionKind.THREAD_STATE_FAULT


def test_modify_some_allows_gprs_but_not_pc():
    machine = build_machine(hw_threads_per_core=8)
    tdt = machine.build_tdt("tdt", {
        1: (1, Permission.MODIFY_SOME),
    })
    edp = machine.alloc("edp", 64)
    machine.load_asm(1, "halt")
    machine.load_asm(0, """
        movi r4, 9
        rpush 1, r1, r4    ; GPR: allowed
        rpush 1, pc, r4    ; pc: DENIED -> permission fault
        halt
    """, supervisor=False, tdtr=tdt.base, edp=edp.base)
    machine.boot(0)
    machine.run()
    target = machine.thread(1)
    assert target.arch.read("r1") == 9        # first rpush landed
    assert target.arch.read("pc") == 0        # second did not
    descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
    assert descriptor.kind is ExceptionKind.PERMISSION_FAULT
    assert machine.thread(0).state is PtidState.DISABLED


def test_modify_most_allows_pc_and_edp_but_not_tdtr():
    machine = build_machine(hw_threads_per_core=8)
    tdt = machine.build_tdt("tdt", {
        1: (1, Permission.MODIFY_SOME | Permission.MODIFY_MOST),
    })
    edp = machine.alloc("edp", 64)
    machine.load_asm(1, "halt")
    machine.load_asm(0, """
        movi r4, 3
        rpush 1, pc, r4     ; allowed with MODIFY_MOST
        movi r5, 0x7000
        rpush 1, edp, r5    ; allowed (control reg)
        rpush 1, tdtr, r5   ; privileged: always denied via TDT
        halt
    """, supervisor=False, tdtr=tdt.base, edp=edp.base)
    machine.boot(0)
    machine.run()
    target = machine.thread(1)
    assert target.arch.read("pc") == 3
    assert target.arch.read("edp") == 0x7000
    assert target.arch.read("tdtr") == 0
    descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
    assert descriptor.kind is ExceptionKind.PERMISSION_FAULT


def test_rpull_permission_follows_same_bits():
    machine = build_machine(hw_threads_per_core=8)
    tdt = machine.build_tdt("tdt", {
        1: (1, Permission.START),  # no modify bits at all
    })
    edp = machine.alloc("edp", 64)
    machine.load_asm(1, "halt")
    machine.load_asm(0, "rpull 1, r2, r1\nhalt",
                     supervisor=False, tdtr=tdt.base, edp=edp.base)
    machine.boot(0)
    machine.run()
    descriptor = ExceptionDescriptor.read(machine.memory, edp.base)
    assert descriptor.kind is ExceptionKind.PERMISSION_FAULT


def test_vtid_operand_can_come_from_register():
    machine = build_machine(hw_threads_per_core=8)
    machine.load_asm(1, "halt")
    machine.thread(1).arch.write("r9", 55)
    machine.load_asm(0, """
        movi r3, 1        ; vtid in a register
        rpull r3, r2, r9
        halt
    """, supervisor=True)
    machine.boot(0)
    machine.run()
    assert machine.thread(0).arch.read("r2") == 55


def test_rpush_to_vector_register_dirties_fp_state():
    machine = build_machine(hw_threads_per_core=8)
    machine.load_asm(1, "halt")
    machine.load_asm(0, """
        movi r4, 11
        rpush 1, v2, r4
        halt
    """, supervisor=True)
    machine.boot(0)
    machine.run()
    target = machine.thread(1)
    assert target.arch.read("v2") == 11
    assert target.arch.vector_dirty
    assert target.arch.footprint_bytes() == 784
