"""Unit tests for Channel, Clock, Tracer, and RngStreams."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim import Channel, Clock, Engine, RngStreams, Tracer


class TestChannel:
    def test_put_then_try_get(self):
        chan = Channel("q")
        chan.put("a")
        assert chan.try_get() == "a"
        assert chan.try_get() is None

    def test_fifo_order(self):
        chan = Channel()
        for i in range(5):
            chan.put(i)
        assert [chan.try_get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_drops_and_counts(self):
        chan = Channel(capacity=2)
        assert chan.put(1)
        assert chan.put(2)
        assert not chan.put(3)
        assert chan.dropped == 1
        assert len(chan) == 2

    def test_blocking_get_wakes_on_put(self):
        engine = Engine()
        chan = Channel("rx")
        got = []

        def consumer():
            item = yield from chan.get()
            got.append((engine.now, item))

        engine.spawn(consumer())
        engine.after(40, chan.put, "pkt")
        engine.run()
        assert got == [(40, "pkt")]

    def test_get_returns_immediately_when_nonempty(self):
        engine = Engine()
        chan = Channel()
        chan.put("x")
        got = []

        def consumer():
            item = yield from chan.get()
            got.append((engine.now, item))

        engine.spawn(consumer())
        engine.run()
        assert got == [(0, "x")]

    def test_high_watermark(self):
        chan = Channel()
        for i in range(7):
            chan.put(i)
        chan.try_get()
        chan.put(99)
        assert chan.high_watermark == 7

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            Channel().peek()

    def test_stats_counters(self):
        chan = Channel()
        chan.put(1)
        chan.put(2)
        chan.try_get()
        assert chan.total_put == 2
        assert chan.total_got == 1


class TestClock:
    def test_default_is_3ghz(self):
        assert Clock().freq_ghz == 3.0

    def test_ns_to_cycles_at_3ghz(self):
        clock = Clock(3.0)
        assert clock.ns_to_cycles(1) == 3
        assert clock.ns_to_cycles(16) == 48

    def test_paper_l2_l3_range_3_to_16ns_is_10_to_50_cycles(self):
        # Section 4: "10 to 50 clock cycles (i.e., 3ns to 16ns for a 3GHz CPU)"
        clock = Clock(3.0)
        assert clock.cycles_to_ns(10) == pytest.approx(3.33, abs=0.1)
        assert clock.cycles_to_ns(50) == pytest.approx(16.67, abs=0.1)

    def test_roundtrip(self):
        clock = Clock(2.5)
        assert clock.cycles_to_ns(clock.ns_to_cycles(100)) == pytest.approx(100)

    def test_us_and_ms(self):
        clock = Clock(1.0)
        assert clock.us_to_cycles(1) == 1000
        assert clock.ms_to_cycles(1) == 1_000_000

    def test_rate_to_interarrival(self):
        clock = Clock(3.0)
        # 1M events/sec at 3GHz -> 3000 cycles apart
        assert clock.rate_to_interarrival_cycles(1e6) == pytest.approx(3000)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigError):
            Clock(0)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            Clock().rate_to_interarrival_cycles(0)


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.emit("cat", "msg")
        assert tracer.events == []

    def test_enabled_records_with_time(self):
        engine = Engine()
        tracer = Tracer(engine, enabled=True)
        engine.after(12, tracer.emit, "irq", "fired")
        engine.run()
        assert len(tracer.events) == 1
        assert tracer.events[0].time == 12
        assert tracer.events[0].category == "irq"

    def test_category_filter(self):
        tracer = Tracer(enabled=True, categories={"keep"})
        tracer.emit("keep", "a")
        tracer.emit("drop", "b")
        assert [e.category for e in tracer.events] == ["keep"]

    def test_counters_always_live(self):
        tracer = Tracer(enabled=False)
        tracer.count("polls", 5)
        tracer.count("polls")
        assert tracer.counters["polls"] == 6

    def test_limit_drops(self):
        tracer = Tracer(enabled=True, limit=2)
        for i in range(5):
            tracer.emit("c", str(i))
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_filter_and_clear(self):
        tracer = Tracer(enabled=True)
        tracer.emit("a", "1")
        tracer.emit("b", "2")
        assert len(tracer.filter("a")) == 1
        tracer.clear()
        assert tracer.events == [] and not tracer.counters


class TestRngStreams:
    def test_same_name_same_stream(self):
        rngs = RngStreams(1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_streams_are_independent_of_creation_order(self):
        a = RngStreams(42)
        b = RngStreams(42)
        _ = a.stream("first")  # extra stream must not perturb "arrivals"
        seq_a = [a.stream("arrivals").random() for _ in range(5)]
        seq_b = [b.stream("arrivals").random() for _ in range(5)]
        assert seq_a == seq_b

    def test_different_names_differ(self):
        rngs = RngStreams(7)
        assert rngs.stream("a").random() != rngs.stream("b").random()

    def test_different_seeds_differ(self):
        assert (
            RngStreams(1).stream("s").random()
            != RngStreams(2).stream("s").random()
        )

    def test_reseed_clears(self):
        rngs = RngStreams(1)
        first = rngs.stream("s").random()
        rngs.reseed(1)
        assert rngs.stream("s").random() == first
