"""Property-based tests of core invariants under random schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.storage import ThreadStateStore
from repro.machine import build_machine
from repro.mem.memory import Memory


class TestNoLostWakeups:
    """Paper semantics: a write between monitor and mwait must not be
    lost -- mwait falls through. Randomize the write's timing against
    the waiter's progress and require the waiter to always finish."""

    @given(write_delay=st.integers(min_value=0, max_value=400),
           pre_work=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_waiter_always_completes(self, write_delay, pre_work):
        # the canonical idiom: arm, CHECK, then mwait -- covers both a
        # write before arming (check catches it) and a write between
        # check and mwait (the pending flag makes mwait fall through)
        machine = build_machine()
        flag = machine.alloc("flag", 64)
        machine.load_asm(0, """
            work PRE
            movi r1, FLAG
            monitor r1
            ld r2, r1, 0
            bne r2, r0, done
            mwait
            ld r2, r1, 0
        done:
            halt
        """, symbols={"FLAG": flag.base, "PRE": pre_work},
            supervisor=True)
        machine.boot(0)
        machine.engine.at(write_delay, machine.memory.store,
                          flag.base, 7, "dev")
        machine.run(until=write_delay + pre_work + 10_000)
        machine.check()
        thread = machine.thread(0)
        assert thread.finished
        assert thread.arch.read("r2") == 7

    @given(delays=st.lists(st.integers(min_value=0, max_value=1000),
                           min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_counting_handler_sees_final_count(self, delays):
        """Coalescing is allowed (multiple writes, one wakeup) but the
        final counter value must always be observed."""
        machine = build_machine()
        counter = machine.alloc("ctr", 64)
        seen = machine.alloc("seen", 64)
        machine.load_asm(0, """
        loop:
            movi r1, CTR
            monitor r1
            ld r2, r1, 0
            bne r2, r5, progress
            mwait
            ld r2, r1, 0
        progress:
            mov r5, r2
            movi r3, SEEN
            st r3, 0, r2
            movi r4, TARGET
            blt r2, r4, loop
            halt
        """, symbols={"CTR": counter.base, "SEEN": seen.base,
                      "TARGET": len(delays)}, supervisor=True)
        machine.boot(0)
        for delay in sorted(delays):
            machine.engine.at(delay, machine.memory.fetch_add,
                              counter.base, 1, "dev")
        machine.run(until=max(delays) + 20_000)
        machine.check()
        assert machine.memory.load(seen.base) == len(delays)


class TestEngineDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_identical_runs_identical_traces(self, seed):
        def run_once():
            machine = build_machine(seed=seed)
            word = machine.alloc("w", 64)
            machine.load_asm(0, """
            loop:
                faa r1, r2, 1
                addi r3, r3, 1
                movi r4, 20
                blt r3, r4, loop
                halt
            """, supervisor=True)
            machine.thread(0).arch.write("r2", word.base)
            machine.boot(0)
            machine.run()
            return (machine.engine.now,
                    machine.engine.events_processed,
                    machine.memory.load(word.base))

        assert run_once() == run_once()


class TestStorageConservation:
    @given(contexts=st.integers(min_value=1, max_value=300),
           starts=st.lists(st.integers(min_value=0, max_value=299),
                           max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_every_context_lives_in_exactly_one_tier(self, contexts, starts):
        store = ThreadStateStore(rf_bytes=8 * 1024, l2_slots=10)
        for ptid in range(contexts):
            store.register(ptid)
        everyone = list(range(contexts))
        for target in starts:
            if target < contexts:
                store.start_latency(target, evictable=everyone)
        occupancy = store.occupancy()
        assert sum(occupancy.values()) == contexts
        assert occupancy["rf"] <= store.rf_capacity
        assert occupancy["l2"] <= store.l2_capacity

    @given(contexts=st.integers(min_value=1, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_footprint_arithmetic(self, contexts):
        store = ThreadStateStore()
        for ptid in range(contexts):
            store.register(ptid)
        assert store.footprint_bytes() == contexts * store.context_bytes


class TestWatchBusProperties:
    @given(addrs=st.lists(st.integers(min_value=0, max_value=2**20 // 8 - 1)
                          .map(lambda w: w * 8),
                          min_size=1, max_size=20, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_every_armed_address_triggers(self, addrs):
        memory = Memory()
        watch = memory.watch_bus.watch(addrs, owner="prop")
        hit_lines = set()
        original = set(a // 64 for a in addrs)

        for addr in addrs:
            if watch.armed:
                before = watch.trigger_count
                memory.store(addr, 1)
                assert watch.trigger_count == before + 1
                hit_lines.add(addr // 64)
        assert hit_lines <= original

    @given(addr=st.integers(min_value=0, max_value=2**20).map(
        lambda w: w * 8 % (2**20)))
    @settings(max_examples=30, deadline=None)
    def test_cancel_is_final(self, addr):
        memory = Memory()
        watch = memory.watch_bus.watch(addr)
        watch.cancel()
        memory.store(addr, 1)
        assert watch.trigger_count == 0
        assert memory.watch_bus.watchers_on(addr) == 0


class TestClusterConservation:
    """The cluster's conservation laws must hold at *any* instant --
    including mid-flight at an arbitrary horizon, under loss, admission
    rejection, and hedging: admitted == completed + in_flight per node,
    issued == completed + dropped + in_flight at the service, and every
    shard attempt settles into exactly one accounting bucket."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           nodes=st.integers(min_value=1, max_value=6),
           fanout_frac=st.floats(min_value=0.0, max_value=1.0),
           horizon_frac=st.floats(min_value=0.05, max_value=1.5),
           drop=st.sampled_from([0.0, 0.02, 0.1]),
           queue_limit=st.sampled_from([None, 2, 8]),
           hedge=st.sampled_from([None, 40_000]))
    @settings(max_examples=25, deadline=None)
    def test_conserved_at_any_horizon(self, seed, nodes, fanout_frac,
                                      horizon_frac, drop, queue_limit,
                                      hedge):
        from repro.cluster import ClusterConfig, LinkSpec, run_cluster

        fanout = max(1, min(nodes, int(round(fanout_frac * nodes))))
        config = ClusterConfig(nodes=nodes, fanout=fanout, requests=30,
                               load=0.5, queue_limit=queue_limit,
                               hedge_after=hedge,
                               link=LinkSpec(drop_prob=drop))
        horizon = max(1, int(config.horizon() * horizon_frac))
        result = run_cluster(config, seed=seed, horizon=horizon)
        service = result.service
        audit = service.conservation()
        assert audit["ok"], audit
        # the aggregate law, spelled out
        assert service.issued == (service.completed + service.dropped
                                  + service.in_flight)
        # and per node
        for node in service.nodes:
            assert node.admitted == node.completed + node.in_flight()
