"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel. ``python setup.py develop`` installs an egg-link instead, which
needs nothing beyond setuptools. All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
