"""Typed metrics: counters, gauges, and log-linear histograms.

The registry replaces the flat string counters of
:class:`~repro.sim.trace.Tracer` for everything observability-related.
Metrics are keyed by hierarchical dotted names (``core0.issue.rounds``,
``kernel.sched.ps.latency_cycles``) so snapshots group naturally and
exporters can route by prefix; :data:`repro.obs.snapshot.NAMESPACE`
documents the reserved prefixes.

Histograms are log-linear (HdrHistogram-style): values below
``2**HISTOGRAM_LINEAR_BITS`` get exact unit buckets, larger values land
in one of ``2**HISTOGRAM_SUBBUCKET_BITS`` sub-buckets per power of two,
bounding the relative quantile error at ``2**-HISTOGRAM_SUBBUCKET_BITS``
while keeping memory constant regardless of sample count.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigError

#: Values below 2**LINEAR_BITS are bucketed exactly (one bucket per value).
HISTOGRAM_LINEAR_BITS = 4
#: Sub-buckets per power of two above the linear range; the histogram's
#: worst-case relative quantile error is 2**-SUBBUCKET_BITS (6.25%).
HISTOGRAM_SUBBUCKET_BITS = 4

_LINEAR_LIMIT = 1 << HISTOGRAM_LINEAR_BITS
_SUBBUCKETS = 1 << HISTOGRAM_SUBBUCKET_BITS


def _check_name(name: str) -> str:
    if not name or any(c.isspace() for c in name):
        raise ConfigError(f"bad metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time numeric value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gauge {self.name}={self.value}>"


def _bucket_index(value: int) -> int:
    """Log-linear bucket index for a non-negative integer value."""
    if value < _LINEAR_LIMIT:
        return value
    exponent = value.bit_length() - 1
    sub = (value >> (exponent - HISTOGRAM_SUBBUCKET_BITS)) - _SUBBUCKETS
    return _LINEAR_LIMIT + (exponent - HISTOGRAM_LINEAR_BITS) * _SUBBUCKETS + sub


def _bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive [low, high] value range covered by a bucket index."""
    if index < _LINEAR_LIMIT:
        return index, index
    offset = index - _LINEAR_LIMIT
    exponent = HISTOGRAM_LINEAR_BITS + offset // _SUBBUCKETS
    sub = offset % _SUBBUCKETS
    width = 1 << (exponent - HISTOGRAM_SUBBUCKET_BITS)
    low = (_SUBBUCKETS + sub) * width
    return low, low + width - 1


class Histogram:
    """Log-linear value distribution with cheap percentile queries."""

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum: Optional[int] = None
        self._buckets: Dict[int, int] = {}

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` (negatives clamp to zero, floats truncate)."""
        value = int(value)
        if value < 0:
            value = 0
        self.count += count
        self.total += value * count
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = _bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + count

    def percentile(self, pct: float) -> float:
        """Approximate percentile (nearest-rank over bucket midpoints).

        The result is clamped to the exact observed [min, max], so p0
        and p100 are exact and interior quantiles are within one
        sub-bucket (2**-SUBBUCKET_BITS relative) of the true value.
        """
        if not self.count:
            raise ConfigError(f"histogram {self.name!r} is empty")
        if not 0.0 <= pct <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {pct}")
        if pct == 0.0:
            return float(self.minimum)
        if pct == 100.0:
            return float(self.maximum)
        target = max(1, -(-int(self.count * pct) // 100))  # ceil, >= 1
        seen = 0
        value = self.maximum
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                low, high = _bucket_bounds(index)
                value = (low + high) // 2
                break
        return float(min(max(value, self.minimum), self.maximum))

    @property
    def mean(self) -> float:
        if not self.count:
            raise ConfigError(f"histogram {self.name!r} is empty")
        return self.total / self.count

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.minimum is None or other.minimum < self.minimum:
            self.minimum = other.minimum
        if self.maximum is None or other.maximum > self.maximum:
            self.maximum = other.maximum
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    def snapshot(self) -> Dict[str, float]:
        """The JSON-friendly summary used in metrics snapshots."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": round(self.mean, 3),
            "min": self.minimum,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use.

    A name is permanently bound to the first kind it was used as;
    reusing it as another kind raises (catching namespace typos early).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._claim(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._claim(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._claim(name, self._histograms)
            metric = self._histograms[name] = Histogram(name)
        return metric

    def _claim(self, name: str, into: Dict) -> None:
        _check_name(name)
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not into and name in kind:
                raise ConfigError(
                    f"metric {name!r} already registered as another kind")

    # convenience shorthands ------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges last-write-win,
        histograms merge sample-exactly."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def snapshot(self) -> Dict[str, Dict]:
        """Deterministic JSON-ready view (keys sorted)."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].snapshot()
                           for name in sorted(self._histograms)},
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MetricsRegistry counters={len(self._counters)}"
                f" gauges={len(self._gauges)}"
                f" histograms={len(self._histograms)}>")
