"""Cycle-attribution profiler.

Buckets every simulated cycle of every core into exactly one of:

- ``issue``        -- a round in which at least one uop issued and some
                      issueable thread did more than burn ``work``;
- ``stall``        -- runnable threads exist but none can issue yet
                      (all waiting out busy-cycle latencies);
- ``mwait``        -- no runnable threads and at least one is parked in
                      MONITOR/MWAIT (the paper's blocked state);
- ``fastforward``  -- work-burn rounds: every issueable thread was
                      mid-``work`` (the trigger condition of the
                      busy-cycle fast-forward), attributed here whether
                      the round was batch-skipped or stepped naively.
                      Attribution from simulation state -- not from
                      whether a batch fired -- keeps the split identical
                      across hosts (fast-forward on/off, single-engine
                      vs PDES shard);
- ``idle``         -- no threads at all (before boot / after all
                      stopped), plus trailing clock advancement when
                      ``engine.run(until=...)`` moves time past the
                      last event.

The invariant -- checked by :meth:`CoreProfile.snapshot` consumers and
the test suite -- is that the buckets sum *exactly* to ``engine.now``
for every core on every run.  The core loop guarantees it by pairing a
:meth:`CoreProfile.pend` before each ``yield`` with a
:meth:`CoreProfile.settle` when it resumes, so wall-to-wall coverage
holds even for waits of unknown length (Signal wakeups); whatever tail
is still pending or unaccounted at snapshot time is charged to the
pending bucket / ``idle`` respectively.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ConfigError

#: Attribution buckets, in display order.
BUCKETS = ("issue", "stall", "mwait", "fastforward", "idle")


class CoreProfile:
    """Per-core cycle ledger."""

    __slots__ = ("core_id", "buckets", "_pending")

    def __init__(self, core_id: int):
        self.core_id = core_id
        self.buckets: Dict[str, int] = {bucket: 0 for bucket in BUCKETS}
        self._pending: Optional[Tuple[str, int]] = None

    def pend(self, bucket: str, since: int) -> None:
        """Declare that cycles from ``since`` until the next
        :meth:`settle` belong to ``bucket`` (called just before the core
        yields)."""
        self._pending = (bucket, since)

    def settle(self, now: int) -> None:
        """Close the pending interval at ``now`` (called when the core
        resumes)."""
        if self._pending is not None:
            bucket, since = self._pending
            self.buckets[bucket] += now - since
            self._pending = None

    def charge(self, bucket: str, cycles: int) -> None:
        """Directly attribute a known-length interval (fast-forward)."""
        self.buckets[bucket] += cycles

    def accounted(self, now: int) -> int:
        """Cycles attributed so far, including any pending interval."""
        total = sum(self.buckets.values())
        if self._pending is not None:
            total += now - self._pending[1]
        return total

    def snapshot(self, now: int) -> Dict[str, int]:
        """Bucket totals summing exactly to ``now``.

        The still-pending interval (a core mid-wait when the run
        stopped) is folded into its declared bucket; any remainder --
        a halted core, or clock advancement past the final event --
        is idle time by definition.
        """
        out = dict(self.buckets)
        if self._pending is not None:
            bucket, since = self._pending
            out[bucket] += now - since
        accounted = sum(out.values())
        if accounted > now:
            raise ConfigError(
                f"core {self.core_id} attributed {accounted} cycles"
                f" but engine.now is {now}")
        out["idle"] += now - accounted
        out["total"] = now
        return out


class Profiler:
    """A :class:`CoreProfile` per core, created on first touch."""

    def __init__(self) -> None:
        self.cores: Dict[int, CoreProfile] = {}

    def core(self, core_id: int) -> CoreProfile:
        profile = self.cores.get(core_id)
        if profile is None:
            profile = self.cores[core_id] = CoreProfile(core_id)
        return profile

    def snapshot(self, now: int) -> Dict[str, Dict[str, int]]:
        return {f"core{core_id}": self.cores[core_id].snapshot(now)
                for core_id in sorted(self.cores)}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Profiler cores={sorted(self.cores)}>"
