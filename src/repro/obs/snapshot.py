"""Machine-readable metrics snapshots.

A *snapshot* is a plain JSON-serializable dict combining three sources:

1. the live :class:`~repro.obs.metrics.MetricsRegistry` (histograms and
   counters recorded on the hot paths while instrumentation is on);
2. a *harvest* of the simulator's existing statistics (engine, cores,
   storage, memory, watch bus, tracer counters) -- these are kept as
   ordinary attributes at zero cost and only converted to metrics when
   a snapshot is taken;
3. the cycle-attribution profiles, whose buckets provably sum to
   ``engine.now`` per core.

Snapshots are deterministic: keys are sorted and every value derives
from simulation state, so a serial and a parallel evaluation of the
same experiment produce byte-identical snapshot JSON.

Metric namespace
----------------
==================  ====================================================
prefix              meaning
==================  ====================================================
``engine.*``        event-loop totals (events processed, final cycle)
``core{N}.*``       per-core issue/idle/wakeup counters and the
                    ``wakeup_latency_cycles`` histogram
``storage{N}.*``    thread-state store tiers, promotions, demotions
``mem.*``           loads/stores and the watch bus
``mem.cache.*``     cache-hierarchy hits/misses/evictions (via sources)
``kernel.sched.*``  queueing-server latency histograms and counters
``kernel.io.*``     I/O-server wakeups, wasted cycles, latency
``dev.*``           devices (NIC packet counters)
``trace.*``         compat shim: legacy ``Tracer.count`` counters
``cluster.service{N}.*``  cluster front-end: request/attempt/hedge
                    counters and the end-to-end latency histogram
``cluster.node{N}.*``  per-node admission/completion/busy counters
``cluster.fabric{N}.*``  network fabric sends, drops, delay cycles
``coherence.directory{N}.*``  watch-bus directory: arm/disarm/
                    invalidation/forward counters and charged cycles
``coherence.remote{N}.*``  RDMA-style remote mailbox stores
``coherence.tdt{N}.*``  sharded-TDT resolutions and cross-shard cycles
==================  ====================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.obs.metrics import MetricsRegistry

#: Documented metric-name prefixes (kept in sync with the table above;
#: docs/observability.md is generated from this).
NAMESPACE = {
    "engine": "event-loop totals (events processed, final cycle)",
    "core{N}": "per-core issue/idle/wakeup counters and the "
               "wakeup_latency_cycles histogram",
    "storage{N}": "thread-state store tiers, promotions, demotions",
    "mem": "memory loads/stores and the watch bus",
    "mem.cache": "cache-hierarchy hits/misses/evictions",
    "kernel.sched": "queueing-server latency histograms and counters",
    "kernel.io": "I/O-server wakeups, wasted cycles, latency",
    "dev": "devices (NIC packet counters)",
    "trace": "compat shim for legacy Tracer.count counters",
    "cluster.service{N}": "cluster front-end: request/attempt/hedge "
                          "counters, the end-to-end latency histogram, "
                          "and the full conservation audit "
                          "(``conservation.*`` gauges, one per audit "
                          "field, booleans as 0/1)",
    "cluster.node{N}": "per-node admission/completion/busy counters and "
                       "in-flight gauge",
    "cluster.fabric{N}": "network fabric sends, drops, and delay cycles",
    "coherence.directory{N}": "watch-bus MSI directory: arm/disarm/"
                              "invalidation/forward counters, charged "
                              "writer/arm/forward cycles, and the "
                              "tracked-line gauge",
    "coherence.remote{N}": "RDMA-style remote mailbox stores: "
                           "sent/delivered/dropped over the fabric",
    "coherence.tdt{N}": "sharded TDT: local/remote resolutions, remote "
                        "cache hits/misses, invtid broadcasts, and "
                        "cross-shard cycles",
}


def _shim_name(counter: str) -> str:
    """Legacy tracer counter -> metric name (spaces are not legal)."""
    return "trace." + "_".join(counter.split())


def harvest_machine(machine, registry: MetricsRegistry) -> None:
    """Convert one machine's attribute statistics into metrics.

    Values are *added* (counters) so harvesting several machines into
    one registry aggregates a whole experiment sweep.
    """
    engine = machine.engine
    if machine.owns_engine:
        # a machine on a caller-shared engine (cluster ISA nodes) must
        # not harvest the host's event totals: they describe the hosting
        # engine, not this machine, and differ between a single-engine
        # and a sharded run of the same simulation
        registry.inc("engine.events", engine.events_processed)
        registry.inc("engine.cycles", engine.now)
    registry.inc("mem.loads", machine.memory.load_count)
    registry.inc("mem.stores", machine.memory.store_count)
    bus = machine.memory.watch_bus
    registry.inc("mem.watch_bus.notifications", bus.total_notifications)
    registry.inc("mem.watch_bus.triggers", bus.total_triggers)
    registry.inc("chip.migrations", machine.chip.migrations)
    for core in machine.chip.cores:
        prefix = f"core{core.core_id}"
        registry.inc(f"{prefix}.issue.rounds", core.issue_rounds)
        registry.inc(f"{prefix}.instructions", core.instructions_retired)
        registry.inc(f"{prefix}.idle_cycles", core.idle_cycles)
        threads = core.threads
        registry.inc(f"{prefix}.wakeups", sum(t.wakeups for t in threads))
        registry.inc(f"{prefix}.starts", sum(t.starts for t in threads))
        registry.inc(f"{prefix}.stops", sum(t.stops for t in threads))
        registry.inc(f"{prefix}.exceptions",
                     sum(t.exceptions_raised for t in threads))
        fill = getattr(core.issue_policy, "fill_metrics", None)
        if fill is not None:
            fill(registry, f"{prefix}.policy")
        storage = core.storage
        sprefix = f"storage{core.core_id}"
        registry.inc(f"{sprefix}.promotions", storage.promotions)
        registry.inc(f"{sprefix}.demotions", storage.demotions)
        for tier, count in storage.starts_by_tier.items():
            registry.inc(f"{sprefix}.starts.{tier.value}", count)
        for tier, count in storage.occupancy().items():
            registry.set(f"{sprefix}.occupancy.{tier}", count)
    for counter, amount in sorted(machine.tracer.counters.items()):
        registry.inc(_shim_name(counter), amount)
    if machine.tracer.dropped:
        registry.inc("trace.dropped_events", machine.tracer.dropped)


def machine_snapshot(machine) -> Dict[str, Any]:
    """The full snapshot for one instrumented machine."""
    from repro.errors import ConfigError
    obs = machine.obs
    if obs is None:
        raise ConfigError("machine is not instrumented; "
                          "build it with instrument=True")
    merged = MetricsRegistry()
    merged.merge(obs.registry)
    harvest_machine(machine, merged)
    now = machine.engine.now
    return {
        "engine": {"now": now, "events": machine.engine.events_processed},
        "metrics": merged.snapshot(),
        "profile": obs.profiler.snapshot(now),
        "timeline": _timeline_summary(obs.timeline),
    }


def session_snapshot(session) -> Dict[str, Any]:
    """Aggregate snapshot over every machine and source a
    :class:`~repro.obs.Session` collected (an experiment may build one
    machine per sweep cell; they all land here)."""
    from repro.obs.merge import MachineDigest
    merged = MetricsRegistry()
    merged.merge(session.registry)
    profiles = {}
    timelines: Dict[str, Any] = {"spans": 0, "instants": 0, "open": 0,
                                 "dropped": 0}
    state_cycles: Dict[str, int] = {}
    summaries = [_timeline_summary(session.timeline)]
    for index, machine in enumerate(session.machines):
        if isinstance(machine, MachineDigest):
            # a machine that lives in a shard worker: its contribution
            # arrived pre-harvested (see repro.obs.merge)
            merged.merge(machine.harvest)
            profiles[f"machine{index}"] = machine.profile
            summaries.append(machine.timeline)
            continue
        harvest_machine(machine, merged)
        profiles[f"machine{index}"] = machine.obs.profiler.snapshot(
            machine.engine.now)
        summaries.append(_timeline_summary(machine.obs.timeline))
    for summary in summaries:
        for key in ("spans", "instants", "open", "dropped"):
            timelines[key] += summary[key]
        for state, cycles in summary["state_cycles"].items():
            state_cycles[state] = state_cycles.get(state, 0) + cycles
    timelines["state_cycles"] = {state: state_cycles[state]
                                 for state in sorted(state_cycles)}
    for prefix, fill in session.sources:
        fill(merged, prefix)
    return {
        "label": session.label,
        "machines": len(session.machines),
        "metrics": merged.snapshot(),
        "profiles": profiles,
        "timeline": timelines,
    }


def _timeline_summary(timeline) -> Dict[str, Any]:
    return {
        "spans": len(timeline.spans),
        "instants": len(timeline.instants),
        "open": len(timeline.open_spans()),
        "dropped": timeline.dropped,
        "state_cycles": timeline.state_totals(),
    }


def write_snapshot(path: str, snapshot: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")
