"""Merging observability across process boundaries.

A PDES shard worker (:mod:`repro.cluster.pdes`) runs real nodes --
queueing servers, ISA machines, caches -- in another process, where
they register with a worker-local :class:`~repro.obs.Session`.  For a
sharded snapshot to equal the single-engine snapshot byte for byte,
that worker-side state must travel back to the coordinator as plain
picklable data and be replayed into the client session under the
*global* source indices the single-engine run would have allocated.

This module provides the transport-agnostic pieces:

- :class:`MachineDigest` -- a picklable stand-in for an instrumented
  machine: its harvested metrics, profile snapshot, and timeline
  summary, computed where the machine lives.  A digest sits in
  ``Session.machines`` next to live machines and snapshots
  identically (Chrome traces skip digests: raw spans stay remote).
- :func:`machine_digest` -- build one from a live machine.
- :func:`harvest_source` -- run a source's ``fill`` callback into a
  fresh registry keyed by *relative* metric names.
- :func:`split_registry` -- partition a registry's entries by their
  owning source prefix (longest dotted match), relative-keyed.
- :func:`merge_at` -- fold a relative-keyed registry into a target
  under a new prefix (counters add, gauges set, histograms merge
  sample-exactly).
- :func:`replay_source` -- wrap a harvested registry as a ``fill``
  callback, so the client can re-register the source.
- :func:`import_timeline` -- replay shipped spans/instants/open spans
  into a timeline under remapped track ids.

Every digest quantity is a pure function of the (byte-identical)
simulation history -- cores, memory, caches, tracer shims, timelines,
and the profiler buckets -- so a sharded snapshot round-trips exactly,
for the behavioral and the ISA backend alike.  Two host-engine
artifacts used to leak through and were closed at the source:
``engine.*`` counters are harvested only from machines that *own*
their engine (a shard host's event count is not a simulation fact),
and the profiler attributes work-burn cycles to ``fastforward``
whether they were batched or stepped (the batching decision reads the
host engine's foreign-event queue; the burn condition does not).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

#: Placeholder prefix used to harvest a fill callback relative-keyed.
_HARVEST_PREFIX = "@"


class MachineDigest:
    """Picklable snapshot contribution of a machine in another process."""

    __slots__ = ("harvest", "profile", "timeline")

    def __init__(self, harvest: MetricsRegistry, profile: Dict[str, Any],
                 timeline: Dict[str, Any]):
        self.harvest = harvest
        self.profile = profile
        self.timeline = timeline

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MachineDigest metrics={len(self.harvest)}>"


def machine_digest(machine: Any) -> MachineDigest:
    """Digest a live instrumented machine (call where the machine lives,
    after its last event).

    Only the attribute *harvest* is digested here: a machine built
    under a session records its hot-path metrics straight into the
    session registry, which ships separately -- folding
    ``machine.obs.registry`` in as well would double-count them.
    """
    from repro.obs.snapshot import _timeline_summary, harvest_machine
    registry = MetricsRegistry()
    harvest_machine(machine, registry)
    return MachineDigest(
        harvest=registry,
        profile=machine.obs.profiler.snapshot(machine.engine.now),
        timeline=_timeline_summary(machine.obs.timeline))


def harvest_source(fill: Callable[[MetricsRegistry, str], None]
                   ) -> MetricsRegistry:
    """Run ``fill`` once and return its output keyed by relative name."""
    scratch = MetricsRegistry()
    fill(scratch, _HARVEST_PREFIX)
    return _strip_prefix(scratch, _HARVEST_PREFIX)


def split_registry(registry: MetricsRegistry, prefixes: Sequence[str]
                   ) -> Tuple[Dict[str, MetricsRegistry], MetricsRegistry]:
    """Partition entries by owning prefix (longest dotted match wins).

    Returns ``(per_prefix, leftover)`` where each value registry is
    keyed by the name *relative* to its prefix; entries matching no
    prefix land in ``leftover`` under their full name.
    """
    ordered = sorted(prefixes, key=len, reverse=True)
    per_prefix = {prefix: MetricsRegistry() for prefix in prefixes}
    leftover = MetricsRegistry()

    def place(name: str) -> Tuple[MetricsRegistry, str]:
        for prefix in ordered:
            if name == prefix or name.startswith(prefix + "."):
                return per_prefix[prefix], name[len(prefix) + 1:]
        return leftover, name

    for name, counter in registry._counters.items():
        target, rel = place(name)
        target.counter(rel or name).inc(counter.value)
    for name, gauge in registry._gauges.items():
        target, rel = place(name)
        target.gauge(rel or name).set(gauge.value)
    for name, histogram in registry._histograms.items():
        target, rel = place(name)
        target.histogram(rel or name).merge(histogram)
    return per_prefix, leftover


def merge_at(target: MetricsRegistry, prefix: str,
             relative: MetricsRegistry) -> None:
    """Fold a relative-keyed registry into ``target`` under ``prefix``."""
    for name, counter in relative._counters.items():
        target.counter(f"{prefix}.{name}").inc(counter.value)
    for name, gauge in relative._gauges.items():
        target.gauge(f"{prefix}.{name}").set(gauge.value)
    for name, histogram in relative._histograms.items():
        target.histogram(f"{prefix}.{name}").merge(histogram)


def replay_source(harvest: MetricsRegistry
                  ) -> Callable[[MetricsRegistry, str], None]:
    """A ``fill`` callback replaying a harvested registry verbatim."""
    def fill(registry: MetricsRegistry, prefix: str) -> None:
        merge_at(registry, prefix, harvest)
    return fill


def import_timeline(timeline: Any,
                    spans: Sequence[Tuple[int, int, Any, int, int]],
                    instants: Sequence[Tuple[int, int, str, int]],
                    open_spans: Sequence[Tuple[int, int, Any, int]],
                    idmap: Dict[int, int]) -> None:
    """Replay shipped timeline rows under remapped track ids.

    ``spans``/``open_spans`` rows carry the worker-local track id in
    position 0; ``idmap`` translates it to the id the importing session
    allocated.  Open spans stay open (snapshot counts them as such,
    exactly like the single-engine run's still-open server spans).
    """
    from repro.obs.timeline import Instant, Span
    for core_id, ptid, state, begin, end in spans:
        timeline.spans.append(Span(idmap[core_id], ptid, state, begin, end))
    for core_id, ptid, name, at in instants:
        timeline.instants.append(Instant(idmap[core_id], ptid, name, at))
    for core_id, ptid, state, begin in open_spans:
        timeline._open[(idmap[core_id], ptid)] = (state, begin)


def _strip_prefix(registry: MetricsRegistry, prefix: str) -> MetricsRegistry:
    dotted = prefix + "."
    out = MetricsRegistry()
    for name, counter in registry._counters.items():
        out.counter(_relative(name, dotted)).inc(counter.value)
    for name, gauge in registry._gauges.items():
        out.gauge(_relative(name, dotted)).set(gauge.value)
    for name, histogram in registry._histograms.items():
        out.histogram(_relative(name, dotted)).merge(histogram)
    return out


def _relative(name: str, dotted: str) -> str:
    return name[len(dotted):] if name.startswith(dotted) else name


__all__ = [
    "MachineDigest", "machine_digest", "harvest_source", "split_registry",
    "merge_at", "replay_source", "import_timeline",
]
