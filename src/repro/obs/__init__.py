"""Observability: metrics, timelines, profiles, and exporters.

Three collection primitives (see the sibling modules for details):

- :class:`~repro.obs.metrics.MetricsRegistry` -- typed counters, gauges
  and log-linear histograms under hierarchical dotted names;
- :class:`~repro.obs.timeline.Timeline` -- per-ptid state spans for
  Perfetto export;
- :class:`~repro.obs.profile.Profiler` -- per-core cycle attribution
  whose buckets sum exactly to ``engine.now``.

Instrumentation is **off by default and zero-cost when off**: the hot
paths check one attribute against ``None`` (the issue loop doesn't even
do that -- it selects an entirely uninstrumented loop body once at
startup).  Turn it on per machine with ``build_machine(instrument=True)``
or for a whole region with a :func:`session`::

    with obs.session("E03") as sess:
        result = experiment.run(quick=True)
    snapshot = sess.snapshot()
    trace = sess.chrome_trace()

A session is how the CLI instruments experiments it cannot reach into:
every :class:`~repro.machine.Machine` built while a session is active
instruments itself and registers with it, and components that live
outside any machine (kernel queueing servers, cache hierarchies, NICs)
register as metric *sources*.  Sessions nest; the innermost wins.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import BUCKETS, CoreProfile, Profiler
from repro.obs.timeline import Instant, Span, ThreadState, Timeline

__all__ = [
    "BUCKETS", "Counter", "CoreProfile", "Gauge", "Histogram", "Instant",
    "MachineObs", "MetricsRegistry", "Profiler", "Session", "Span",
    "ThreadState", "Timeline", "active", "session",
]


class MachineObs:
    """The per-machine instrumentation bundle (``machine.obs``)."""

    __slots__ = ("registry", "timeline", "profiler")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.timeline = Timeline()
        self.profiler = Profiler()


class Session:
    """Collects every instrumented machine and metric source built while
    the session is active (see :func:`session`)."""

    def __init__(self, label: str = "obs"):
        self.label = label
        self.registry = MetricsRegistry()
        #: live machines and :class:`~repro.obs.merge.MachineDigest`
        #: stand-ins for machines that live in another process
        self.machines: List[Any] = []
        self.sources: List[Tuple[str, Callable[[MetricsRegistry, str], None]]] = []
        #: the ``kind`` each source was registered under, parallel to
        #: ``sources`` -- lets a shard worker's sources be re-registered
        #: elsewhere under the same kind (see ``repro.obs.merge``)
        self.source_kinds: List[str] = []
        self._source_counts: Dict[str, int] = {}
        # spans for components that run outside any machine (kernel I/O
        # and queueing servers); each gets a named track on its own
        # engine's clock
        self.timeline = Timeline()
        self._next_track = 0

    # ------------------------------------------------------------------
    def register_machine(self, machine: Any) -> None:
        self.machines.append(machine)

    def register_source(self, kind: str,
                        fill: Callable[[MetricsRegistry, str], None]) -> str:
        """Register a ``fill(registry, prefix)`` harvest callback under a
        unique ``{kind}{index}`` prefix; returns the prefix."""
        index = self._source_counts.get(kind, 0)
        self._source_counts[kind] = index + 1
        prefix = f"{kind}{index}"
        self.sources.append((prefix, fill))
        self.source_kinds.append(kind)
        return prefix

    def register_track(self, name: str) -> int:
        """Claim a named track on the session timeline for a component
        that has no (core, ptid) identity; returns the track id to pass
        as ``core_id`` (with ``ptid=0``) in transitions."""
        track = self._next_track
        self._next_track += 1
        self.timeline.name_core(track, name)
        self.timeline.name_track(track, 0, name)
        return track

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        from repro.obs.snapshot import session_snapshot
        return session_snapshot(self)

    def chrome_trace(self) -> Dict[str, Any]:
        """One Perfetto trace over all collected machines, a pid block
        per machine."""
        from repro.obs.export import chrome_trace
        from repro.obs.merge import MachineDigest
        timelines = []
        ends = [0]
        for index, machine in enumerate(self.machines):
            if isinstance(machine, MachineDigest):
                continue  # raw spans stayed in the worker process
            machine.obs.timeline.finish(machine.engine.now)
            ends.append(machine.engine.now)
            timelines.append((f"m{index}", machine.obs.timeline,
                              machine.config.freq_ghz))
        if self.timeline.spans or self.timeline.instants \
                or self.timeline.open_spans():
            # component tracks run on their own engines' clocks; close
            # whatever is still open at the latest clock seen
            ends.extend(span.end for span in self.timeline.spans)
            ends.extend(begin for _, _, _, begin
                        in self.timeline.open_spans())
            self.timeline.finish(max(ends))
            live = [machine for machine in self.machines
                    if not isinstance(machine, MachineDigest)]
            freq = live[0].config.freq_ghz if live else 1.0
            timelines.append(("session", self.timeline, freq))
        return chrome_trace(timelines, metadata={"source": "repro",
                                                 "label": self.label})

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Session {self.label!r} machines={len(self.machines)}"
                f" sources={len(self.sources)}>")


_ACTIVE: List[Session] = []


def active() -> Optional[Session]:
    """The innermost active session, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def session(label: str = "obs") -> Iterator[Session]:
    """Activate a fresh :class:`Session` for the ``with`` body."""
    sess = Session(label)
    _ACTIVE.append(sess)
    try:
        yield sess
    finally:
        _ACTIVE.pop()
