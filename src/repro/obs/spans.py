"""Per-request distributed tracing with critical-path tail attribution.

A :class:`SpanStore` records the causal history of every cluster
request -- client send, balancer pick, fabric hop, node admission,
backend service, reply hop, plus hedged-attempt siblings -- and turns
it into *span trees* whose critical path decomposes the end-to-end
latency **exactly** into named components:

==============  ========================================================
component       meaning
==============  ========================================================
``hedge_wait``  cycles between request arrival and the critical
                attempt's launch (0 unless the winner was a hedge)
``net_request`` request-wire delay, client -> node
``queue``       cycles at the node not accounted to any other bucket:
                admission backlog, PS/FIFO sharing, and (isa backend)
                instruction/wakeup overheads the machine really paid
``service``     the request's own CPU demand (pre-tax segment cycles)
``switch_tax``  the per-transition overhead -- the paper's context
                switch cost (scheduler + switch + cache pollution for
                sw-threads, hardware wakeup for hw-threads, callback
                dispatch for the event loop)
``blocked``     mid-request remote-call RTTs (holding no CPU)
``net_response`` response-wire delay of the winning reply
==============  ========================================================

The conservation-style invariant (a hypothesis property test pins it):
for every completed request the components sum to the recorded
end-to-end latency, cycle for cycle.  ``queue`` is the residual of the
node phase, and every other component is an exact lower bound the
simulation itself enforces, so all components are non-negative.

Sampling is tail-based: full trees are retained only for the
``top_k`` slowest requests plus a deterministic 1-in-``sample_every``
sample (by request id); every completed request still contributes to
the per-component histograms and to the exact per-request
decomposition list that :meth:`SpanStore.percentile_request` reads.

Instrumentation is zero-cost when off: every emitting site holds the
ambient store captured at construction (``None`` when tracing is
inactive) and guards on one attribute-is-None check.  Under PDES
sharding the node-side *fragments* are recorded in worker-local stores
keyed by the client-assigned attempt id and shipped home at the end of
the run (:meth:`SpanStore.merge_fragments`); because finalization is
deferred to :meth:`SpanStore.finalize` and ordered by settle sequence,
a sharded run reproduces the single-engine span payload byte for byte.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import Histogram

#: Critical-path components, in display order.
COMPONENTS = ("hedge_wait", "net_request", "queue", "service",
              "switch_tax", "blocked", "net_response")

#: Default exemplar retention: the K slowest plus 1-in-N by request id.
DEFAULT_TOP_K = 8
DEFAULT_SAMPLE_EVERY = 0       # 0 disables the 1-in-N sample

# fragment list indices (kept as plain lists so a worker's fragments
# pickle cheaply over the PDES pipe)
_ADMITTED, _DONE, _SERVICE, _TAX, _BLOCKED = range(5)


class _Attempt:
    """One shard attempt, as the client saw it."""

    __slots__ = ("attempt_id", "shard", "node", "launched", "hedged",
                 "status", "resolved_at", "critical")

    def __init__(self, attempt_id: int, shard: int, node: str,
                 launched: int, hedged: bool):
        self.attempt_id = attempt_id
        self.shard = shard
        self.node = node
        self.launched = launched
        self.hedged = hedged
        self.status: Optional[str] = None   # resolved at finalize
        self.resolved_at: Optional[int] = None
        self.critical = False


class _Request:
    """One cluster request, as the client saw it."""

    __slots__ = ("request_id", "arrived", "fanout", "attempts",
                 "settled_at", "outcome", "seq", "critical_attempt")

    def __init__(self, request_id: int, arrived: int, fanout: int):
        self.request_id = request_id
        self.arrived = arrived
        self.fanout = fanout
        self.attempts: List[_Attempt] = []
        self.settled_at: Optional[int] = None
        self.outcome = "in-flight"
        self.seq: Optional[int] = None      # settle order
        self.critical_attempt: Optional[int] = None


class SpanStore:
    """Collects request/attempt events and node fragments for one run.

    The client side (:class:`~repro.cluster.service.ClusterService`)
    calls the ``request_*``/``attempt_*`` hooks; the node side
    (:class:`~repro.cluster.node.ClusterNode` and both server backends)
    calls the ``node_*`` hooks.  In a sharded run the two halves live in
    different processes and are joined by :meth:`merge_fragments`.
    """

    def __init__(self, top_k: int = DEFAULT_TOP_K,
                 sample_every: int = DEFAULT_SAMPLE_EVERY):
        if top_k < 0:
            raise ConfigError(f"top_k must be >= 0, got {top_k}")
        if sample_every < 0:
            raise ConfigError(
                f"sample_every must be >= 0 (0 disables), got "
                f"{sample_every}")
        self.top_k = top_k
        self.sample_every = sample_every
        self._requests: Dict[int, _Request] = {}
        self._by_attempt: Dict[int, Tuple[_Request, _Attempt]] = {}
        #: attempt id -> [admitted, done, service, tax, blocked]
        self.fragments: Dict[int, List[int]] = {}
        #: attempt id -> rejection timestamp
        self.rejects: Dict[int, int] = {}
        self.hedges = 0
        self._settle_seq = 0
        #: exact decompositions for every completed request, in settle
        #: order: (latency, seq, request_id, components dict)
        self._paths: List[Tuple[int, int, int, Dict[str, int]]] = []
        self._exemplars: List[Dict[str, Any]] = []
        self._finalized = False

    # -- client-side hooks ------------------------------------------
    def request_begin(self, request_id: int, now: int,
                      fanout: int) -> None:
        self._requests[request_id] = _Request(request_id, now, fanout)

    def attempt_launch(self, request_id: int, shard_index: int,
                       attempt_id: int, node: str, now: int,
                       hedged: bool) -> None:
        request = self._requests[request_id]
        attempt = _Attempt(attempt_id, shard_index, node, now, hedged)
        request.attempts.append(attempt)
        self._by_attempt[attempt_id] = (request, attempt)
        if hedged:
            self.hedges += 1

    def attempt_request_dropped(self, attempt_id: int) -> None:
        self._by_attempt[attempt_id][1].status = "request-dropped"

    def attempt_response_dropped(self, attempt_id: int) -> None:
        self._by_attempt[attempt_id][1].status = "response-dropped"

    def attempt_won(self, attempt_id: int, now: int) -> None:
        attempt = self._by_attempt[attempt_id][1]
        attempt.status = "won"
        attempt.resolved_at = now

    def attempt_late(self, attempt_id: int, now: int) -> None:
        attempt = self._by_attempt[attempt_id][1]
        attempt.status = "late"
        attempt.resolved_at = now

    def request_settled(self, request_id: int, now: int, outcome: str,
                        critical_attempt: Optional[int] = None) -> None:
        request = self._requests[request_id]
        request.settled_at = now
        request.outcome = outcome
        request.critical_attempt = critical_attempt
        request.seq = self._settle_seq
        self._settle_seq += 1

    # -- node-side hooks (also fired inside PDES shard workers) -----
    def node_admit(self, attempt_id: int, now: int) -> None:
        self.fragments[attempt_id] = [now, None, 0, 0, 0]

    def node_reject(self, attempt_id: int, now: int) -> None:
        self.rejects[attempt_id] = now

    def node_demand(self, attempt_id: int, service: int, tax: int,
                    blocked: int) -> None:
        """Accumulate known per-request demand: pre-tax CPU cycles,
        transition-tax cycles, and remote-call blocked cycles.  The
        model backend calls this per segment (the crowd-scaled tax is
        re-read each segment); the isa backend once at submit."""
        fragment = self.fragments[attempt_id]
        fragment[_SERVICE] += service
        fragment[_TAX] += tax
        fragment[_BLOCKED] += blocked

    def node_done(self, attempt_id: int, now: int) -> None:
        self.fragments[attempt_id][_DONE] = now

    # -- PDES shipping ----------------------------------------------
    def export_fragments(self) -> Dict[str, Any]:
        """The node-side half, as one picklable payload (what a shard
        worker ships home)."""
        return {"fragments": self.fragments, "rejects": self.rejects}

    def merge_fragments(self, payload: Optional[Dict[str, Any]]) -> None:
        """Fold one worker's shipped fragments in.  Attempt ids are
        globally unique (client-assigned), so this is a disjoint
        union."""
        if payload is None:
            return
        self.fragments.update(payload["fragments"])
        self.rejects.update(payload["rejects"])

    # -- finalization -----------------------------------------------
    def _components_for(self, request: _Request,
                        attempt: _Attempt) -> Dict[str, int]:
        fragment = self.fragments[attempt.attempt_id]
        admitted, done = fragment[_ADMITTED], fragment[_DONE]
        service = fragment[_SERVICE]
        tax = fragment[_TAX]
        blocked = fragment[_BLOCKED]
        queue = (done - admitted) - service - tax - blocked
        return {
            "hedge_wait": attempt.launched - request.arrived,
            "net_request": admitted - attempt.launched,
            "queue": queue,
            "service": service,
            "switch_tax": tax,
            "blocked": blocked,
            "net_response": request.settled_at - done,
        }

    def _attempt_dict(self, request: _Request,
                      attempt: _Attempt) -> Dict[str, Any]:
        fragment = self.fragments.get(attempt.attempt_id)
        status = attempt.status
        if status is None:
            if attempt.attempt_id in self.rejects:
                status = "rejected"
            elif fragment is None:
                status = "request-on-wire"
            elif fragment[_DONE] is None:
                status = "in-node"
            else:
                status = "response-on-wire"
        entry: Dict[str, Any] = {
            "attempt_id": attempt.attempt_id,
            "shard": attempt.shard,
            "node": attempt.node,
            "start": attempt.launched,
            "hedged": attempt.hedged,
            "status": status,
            "critical": attempt.critical,
        }
        if attempt.attempt_id in self.rejects:
            entry["rejected_at"] = self.rejects[attempt.attempt_id]
        if attempt.resolved_at is not None:
            entry["response_at"] = attempt.resolved_at
        if fragment is not None:
            admitted, done = fragment[_ADMITTED], fragment[_DONE]
            node_span: Dict[str, Any] = {
                "admitted": admitted,
                "done": done,
                "service": fragment[_SERVICE],
                "switch_tax": fragment[_TAX],
                "blocked": fragment[_BLOCKED],
            }
            if done is not None:
                node_span["queue"] = (
                    (done - admitted) - fragment[_SERVICE]
                    - fragment[_TAX] - fragment[_BLOCKED])
            entry["node_span"] = node_span
        return entry

    def _tree_for(self, request: _Request) -> Dict[str, Any]:
        shards: List[Dict[str, Any]] = [
            {"index": index, "attempts": []}
            for index in range(request.fanout)]
        for attempt in request.attempts:
            shards[attempt.shard]["attempts"].append(
                self._attempt_dict(request, attempt))
        return {
            "request_id": request.request_id,
            "start": request.arrived,
            "end": request.settled_at,
            "latency": (None if request.settled_at is None
                        else request.settled_at - request.arrived),
            "outcome": request.outcome,
            "shards": shards,
        }

    def finalize(self) -> None:
        """Resolve statuses, compute every completed request's exact
        decomposition, and select the exemplar trees.  Idempotent;
        deterministic given the recorded history (settle order ties the
        output ordering to the simulation, not to dict iteration)."""
        if self._finalized:
            return
        self._finalized = True
        settled = sorted(
            (request for request in self._requests.values()
             if request.seq is not None),
            key=lambda request: request.seq)
        completed = []
        for request in settled:
            if request.outcome != "completed":
                continue
            _req, attempt = self._by_attempt[request.critical_attempt]
            attempt.critical = True
            components = self._components_for(request, attempt)
            latency = request.settled_at - request.arrived
            self._paths.append((latency, request.seq,
                                request.request_id, components))
            completed.append(request)
        keep = set()
        if self.top_k:
            slowest = sorted(self._paths,
                             key=lambda path: (-path[0], path[1]))
            keep.update(path[2] for path in slowest[:self.top_k])
        if self.sample_every:
            keep.update(request.request_id for request in completed
                        if request.request_id % self.sample_every == 0)
        self._exemplars = [self._tree_for(request)
                           for request in completed
                           if request.request_id in keep]

    # -- results ----------------------------------------------------
    def exemplars(self) -> List[Dict[str, Any]]:
        """The retained span trees, in settle order."""
        self.finalize()
        return self._exemplars

    def paths(self) -> List[Tuple[int, int, int, Dict[str, int]]]:
        """Every completed request's exact decomposition, in settle
        order: ``(latency, settle_seq, request_id, components)``."""
        self.finalize()
        return self._paths

    def percentile_request(self, percentile: float) -> Dict[str, Any]:
        """The exact decomposition of the request sitting at the given
        latency percentile (nearest-rank; ties broken by settle order,
        so the answer is deterministic)."""
        self.finalize()
        if not self._paths:
            raise ConfigError("no completed requests were traced")
        if not 0.0 <= percentile <= 100.0:
            raise ConfigError(
                f"percentile must be in [0, 100], got {percentile}")
        ordered = sorted(self._paths,
                         key=lambda path: (path[0], path[1]))
        rank = max(1, math.ceil(percentile / 100.0 * len(ordered)))
        latency, _seq, request_id, components = ordered[rank - 1]
        return {"request_id": request_id, "latency": latency,
                "components": dict(components)}

    def payload(self) -> Dict[str, Any]:
        """Everything, as one JSON-ready dict (byte-identical between a
        serial and a parallel run, and between ``shards=1`` and
        ``shards=N``)."""
        self.finalize()
        histograms = {name: Histogram(name) for name in COMPONENTS}
        latency_hist = Histogram("latency")
        for latency, _seq, _request_id, components in self._paths:
            latency_hist.record(latency)
            for name in COMPONENTS:
                histograms[name].record(components[name])
        settled = [r for r in self._requests.values()
                   if r.seq is not None]
        return {
            "config": {"top_k": self.top_k,
                       "sample_every": self.sample_every},
            "counters": {
                "requests": len(self._requests),
                "completed": len(self._paths),
                "dropped": sum(1 for r in settled
                               if r.outcome == "dropped"),
                "unsettled": len(self._requests) - len(settled),
                "attempts": len(self._by_attempt),
                "hedges": self.hedges,
                "rejected": len(self.rejects),
            },
            "latency": latency_hist.snapshot(),
            "components": {name: histograms[name].snapshot()
                           for name in COMPONENTS},
            "exemplars": self._exemplars,
        }


# ----------------------------------------------------------------------
def critical_path(tree: Dict[str, Any]) -> Dict[str, int]:
    """The exact end-to-end decomposition of one exported span tree.

    Follows the critical attempt -- the winning attempt of the shard
    that settled the request -- and returns one entry per
    :data:`COMPONENTS`.  The invariant: the values sum exactly to
    ``tree["latency"]`` (== ``tree["end"] - tree["start"]``).
    """
    if tree.get("outcome") != "completed":
        raise ConfigError(
            f"critical path is only defined for completed requests, "
            f"got outcome {tree.get('outcome')!r}")
    for shard in tree["shards"]:
        for attempt in shard["attempts"]:
            if attempt.get("critical"):
                node_span = attempt["node_span"]
                return {
                    "hedge_wait": attempt["start"] - tree["start"],
                    "net_request": node_span["admitted"] - attempt["start"],
                    "queue": node_span["queue"],
                    "service": node_span["service"],
                    "switch_tax": node_span["switch_tax"],
                    "blocked": node_span["blocked"],
                    "net_response": tree["end"] - node_span["done"],
                }
    raise ConfigError(
        f"request {tree.get('request_id')} has no critical attempt")


def render_tree(tree: Dict[str, Any]) -> str:
    """Pretty-print one span tree with per-component percentages (the
    ``repro trace --top K`` terminal view)."""
    lines = [f"request {tree['request_id']}: {tree['latency']:,} cycles "
             f"[{tree['start']:,} .. {tree['end']:,}] "
             f"({tree['outcome']})"]
    path = (critical_path(tree)
            if tree.get("outcome") == "completed" else None)
    total = tree["latency"] or 1
    for shard in tree["shards"]:
        lines.append(f"  shard {shard['index']}")
        for attempt in shard["attempts"]:
            marker = " *critical*" if attempt.get("critical") else ""
            hedge = " (hedge)" if attempt["hedged"] else ""
            lines.append(
                f"    attempt {attempt['attempt_id']} -> "
                f"{attempt['node']}{hedge} @{attempt['start']:,} "
                f"[{attempt['status']}]{marker}")
            fragment = attempt.get("node_span")
            if fragment is not None:
                done = fragment["done"]
                span = ("open" if done is None
                        else f"{done - fragment['admitted']:,} cycles")
                lines.append(
                    f"      node: admitted @{fragment['admitted']:,}, "
                    f"{span} (service {fragment['service']:,}, "
                    f"tax {fragment['switch_tax']:,}, "
                    f"blocked {fragment['blocked']:,})")
    if path is not None:
        lines.append("  critical path:")
        for name in COMPONENTS:
            cycles = path[name]
            lines.append(f"    {name:<12} {cycles:>12,} cycles "
                         f"{100.0 * cycles / total:6.2f}%")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the ambient store (mirrors repro.obs's session stack)
# ----------------------------------------------------------------------
_ACTIVE: List[Optional[SpanStore]] = []


def active() -> Optional[SpanStore]:
    """The innermost active span store, or None when tracing is off."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def tracing(store: Optional[SpanStore] = None, *,
            top_k: int = DEFAULT_TOP_K,
            sample_every: int = DEFAULT_SAMPLE_EVERY
            ) -> Iterator[SpanStore]:
    """Activate request tracing for the dynamic extent of the block.

    Every :class:`~repro.cluster.service.ClusterService` and
    :class:`~repro.cluster.node.ClusterNode` built inside records into
    the yielded store.  Independent of :func:`repro.obs.session` -- a
    span trace does not force machine instrumentation on.
    """
    if store is None:
        store = SpanStore(top_k=top_k, sample_every=sample_every)
    _ACTIVE.append(store)
    try:
        yield store
    finally:
        _ACTIVE.pop()


@contextmanager
def _redirected(store: Optional[SpanStore]) -> Iterator[None]:
    """Swap the ambient stack while building PDES shard workers: the
    worker's nodes must record into the worker-local store (or nowhere),
    never into the coordinator's (the inline transport would otherwise
    capture it and double-count after the merge)."""
    saved = _ACTIVE[:]
    _ACTIVE.clear()
    if store is not None:
        _ACTIVE.append(store)
    try:
        yield
    finally:
        del _ACTIVE[:]
        _ACTIVE.extend(saved)
