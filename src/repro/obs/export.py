"""Perfetto / Chrome trace-event JSON export.

Produces the `Trace Event Format`_ JSON-object form: a top-level
``traceEvents`` list that both ``chrome://tracing`` and
``ui.perfetto.dev`` open directly.  The mapping is:

- every simulated **core** becomes a *process* (``pid``), named via a
  ``process_name`` metadata event;
- every **ptid** becomes a *thread* (``tid``) of that process;
- each closed timeline :class:`~repro.obs.timeline.Span` becomes a
  complete event (``ph: "X"``) whose name is the thread state;
- timeline instants (promote / demote / wakeup markers) become instant
  events (``ph: "i"``, thread scope).

Timestamps are microseconds (the format's unit), converted from
simulated cycles at the machine's configured frequency; the original
cycle stamps ride along in ``args`` so nothing is lost to rounding.

When several machines contribute to one trace (an experiment sweep
builds one machine per cell), each machine's cores get a disjoint pid
block of :data:`PID_STRIDE` so Perfetto shows them as separate
process groups.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.timeline import Timeline

#: pid block reserved per machine in a multi-machine trace.
PID_STRIDE = 1000


def _cycles_to_us(cycles: int, freq_ghz: float) -> float:
    return cycles / (freq_ghz * 1000.0)


def timeline_events(timeline: Timeline, freq_ghz: float,
                    pid_base: int = 0,
                    label: str = "") -> List[Dict[str, Any]]:
    """The trace events for one timeline (metadata + spans + instants)."""
    events: List[Dict[str, Any]] = []
    cores = sorted({s.core_id for s in timeline.spans}
                   | {i.core_id for i in timeline.instants})
    tracks = sorted({(s.core_id, s.ptid) for s in timeline.spans}
                    | {(i.core_id, i.ptid) for i in timeline.instants})
    prefix = f"{label} " if label else ""
    for core_id in cores:
        core_name = timeline.core_names.get(core_id, f"core{core_id}")
        events.append({"name": "process_name", "ph": "M",
                       "pid": pid_base + core_id, "tid": 0,
                       "args": {"name": f"{prefix}{core_name}"}})
    for core_id, ptid in tracks:
        track_name = timeline.track_names.get((core_id, ptid),
                                              f"ptid{ptid}")
        events.append({"name": "thread_name", "ph": "M",
                       "pid": pid_base + core_id, "tid": ptid,
                       "args": {"name": track_name}})
    for span in timeline.spans:
        events.append({
            "name": span.state.value,
            "cat": "ptid-state",
            "ph": "X",
            "pid": pid_base + span.core_id,
            "tid": span.ptid,
            "ts": _cycles_to_us(span.begin, freq_ghz),
            "dur": _cycles_to_us(span.duration, freq_ghz),
            "args": {"begin_cycle": span.begin, "end_cycle": span.end},
        })
    for instant in timeline.instants:
        events.append({
            "name": instant.name,
            "cat": "ptid-event",
            "ph": "i",
            "s": "t",
            "pid": pid_base + instant.core_id,
            "tid": instant.ptid,
            "ts": _cycles_to_us(instant.at, freq_ghz),
            "args": {"cycle": instant.at},
        })
    return events


def chrome_trace(timelines: Sequence[Tuple[str, Timeline, float]],
                 metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the JSON-object-format trace for ``(label, timeline,
    freq_ghz)`` triples, one pid block per triple."""
    events: List[Dict[str, Any]] = []
    for index, (label, timeline, freq_ghz) in enumerate(timelines):
        events.extend(timeline_events(timeline, freq_ghz,
                                      pid_base=index * PID_STRIDE,
                                      label=label))
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = metadata
    return trace


def machine_trace(machine) -> Dict[str, Any]:
    """The Chrome trace for one instrumented :class:`~repro.machine.Machine`
    (closes still-open spans at the machine's current time first)."""
    from repro.errors import ConfigError
    if machine.obs is None:
        raise ConfigError("machine is not instrumented; "
                          "build it with instrument=True")
    machine.obs.timeline.finish(machine.engine.now)
    return chrome_trace(
        [("", machine.obs.timeline, machine.config.freq_ghz)],
        metadata={"source": "repro", "engine_now": machine.engine.now})


def span_tree_events(tree: Dict[str, Any], freq_ghz: float = 1.0,
                     pid_base: int = 0,
                     label: str = "") -> List[Dict[str, Any]]:
    """The trace events for one request span tree (see
    :mod:`repro.obs.spans`).

    One request becomes a *process*: tid 0 carries the end-to-end
    request span, tid 1 lays the exact critical-path components end to
    end (they sum to the latency, so the lane closes exactly at
    settle), and each attempt gets its own tid with the attempt span
    and, nested inside it, the node-phase span.  Cycle stamps ride in
    ``args`` as usual.
    """
    from repro.obs.spans import COMPONENTS, critical_path
    prefix = f"{label} " if label else ""
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid_base, "tid": 0,
         "args": {"name": f"{prefix}request {tree['request_id']}"}},
        {"name": "thread_name", "ph": "M", "pid": pid_base, "tid": 0,
         "args": {"name": "request"}},
    ]
    start = tree["start"]
    end = tree["end"] if tree["end"] is not None else start
    events.append({
        "name": f"request ({tree['outcome']})",
        "cat": "request", "ph": "X", "pid": pid_base, "tid": 0,
        "ts": _cycles_to_us(start, freq_ghz),
        "dur": _cycles_to_us(end - start, freq_ghz),
        "args": {"begin_cycle": start, "end_cycle": end,
                 "latency_cycles": tree["latency"]},
    })
    if tree.get("outcome") == "completed":
        events.append({"name": "thread_name", "ph": "M",
                       "pid": pid_base, "tid": 1,
                       "args": {"name": "critical path"}})
        cursor = start
        path = critical_path(tree)
        for name in COMPONENTS:
            cycles = path[name]
            events.append({
                "name": name,
                "cat": "critical-path", "ph": "X",
                "pid": pid_base, "tid": 1,
                "ts": _cycles_to_us(cursor, freq_ghz),
                "dur": _cycles_to_us(cycles, freq_ghz),
                "args": {"cycles": cycles},
            })
            cursor += cycles
    tid = 2
    for shard in tree["shards"]:
        for attempt in shard["attempts"]:
            fragment = attempt.get("node_span")
            hedge = " (hedge)" if attempt["hedged"] else ""
            events.append({
                "name": "thread_name", "ph": "M",
                "pid": pid_base, "tid": tid,
                "args": {"name": f"shard{shard['index']} attempt "
                                 f"{attempt['attempt_id']}{hedge}"}})
            resolved = attempt.get("response_at",
                                   attempt.get("rejected_at"))
            if resolved is None and fragment is not None:
                resolved = fragment["done"]
            if resolved is None:
                resolved = end
            events.append({
                "name": f"{attempt['status']} -> {attempt['node']}",
                "cat": "attempt", "ph": "X", "pid": pid_base, "tid": tid,
                "ts": _cycles_to_us(attempt["start"], freq_ghz),
                "dur": _cycles_to_us(max(0, resolved - attempt["start"]),
                                     freq_ghz),
                "args": {"begin_cycle": attempt["start"],
                         "critical": attempt.get("critical", False)},
            })
            if fragment is not None and fragment["done"] is not None:
                events.append({
                    "name": f"on {attempt['node']}",
                    "cat": "node", "ph": "X",
                    "pid": pid_base, "tid": tid,
                    "ts": _cycles_to_us(fragment["admitted"], freq_ghz),
                    "dur": _cycles_to_us(
                        fragment["done"] - fragment["admitted"], freq_ghz),
                    "args": {"service": fragment["service"],
                             "switch_tax": fragment["switch_tax"],
                             "blocked": fragment["blocked"],
                             "queue": fragment.get("queue")},
                })
            tid += 1
    return events


def span_trace(trees: Sequence[Tuple[str, Dict[str, Any]]],
               freq_ghz: float = 1.0,
               metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the Chrome trace for ``(label, tree)`` span trees, one
    pid per tree.  ``freq_ghz`` defaults to 1.0 -- the cluster layer is
    frequency-agnostic, so 1000 cycles render as one microsecond."""
    events: List[Dict[str, Any]] = []
    for index, (label, tree) in enumerate(trees):
        events.extend(span_tree_events(tree, freq_ghz,
                                       pid_base=index, label=label))
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = metadata
    return trace


def write_trace(path: str, trace: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")


def validate_chrome_trace(trace: Dict[str, Any]) -> None:
    """Schema check: raise ``ValueError`` unless ``trace`` is loadable
    Chrome trace-event JSON (used by the tests and the CI artifact)."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"event {event!r} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event!r}")
        phase = event["ph"]
        if phase == "M":
            continue
        if "ts" not in event:
            raise ValueError(f"non-metadata event missing 'ts': {event!r}")
        if event["ts"] < 0:
            raise ValueError(f"negative timestamp: {event!r}")
        if phase == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(f"complete event needs 'dur' >= 0: {event!r}")
        elif phase == "i":
            if event.get("s") not in ("g", "p", "t"):
                raise ValueError(f"instant event needs scope 's': {event!r}")
        else:
            raise ValueError(f"unexpected phase {phase!r}")
