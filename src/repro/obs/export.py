"""Perfetto / Chrome trace-event JSON export.

Produces the `Trace Event Format`_ JSON-object form: a top-level
``traceEvents`` list that both ``chrome://tracing`` and
``ui.perfetto.dev`` open directly.  The mapping is:

- every simulated **core** becomes a *process* (``pid``), named via a
  ``process_name`` metadata event;
- every **ptid** becomes a *thread* (``tid``) of that process;
- each closed timeline :class:`~repro.obs.timeline.Span` becomes a
  complete event (``ph: "X"``) whose name is the thread state;
- timeline instants (promote / demote / wakeup markers) become instant
  events (``ph: "i"``, thread scope).

Timestamps are microseconds (the format's unit), converted from
simulated cycles at the machine's configured frequency; the original
cycle stamps ride along in ``args`` so nothing is lost to rounding.

When several machines contribute to one trace (an experiment sweep
builds one machine per cell), each machine's cores get a disjoint pid
block of :data:`PID_STRIDE` so Perfetto shows them as separate
process groups.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.timeline import Timeline

#: pid block reserved per machine in a multi-machine trace.
PID_STRIDE = 1000


def _cycles_to_us(cycles: int, freq_ghz: float) -> float:
    return cycles / (freq_ghz * 1000.0)


def timeline_events(timeline: Timeline, freq_ghz: float,
                    pid_base: int = 0,
                    label: str = "") -> List[Dict[str, Any]]:
    """The trace events for one timeline (metadata + spans + instants)."""
    events: List[Dict[str, Any]] = []
    cores = sorted({s.core_id for s in timeline.spans}
                   | {i.core_id for i in timeline.instants})
    tracks = sorted({(s.core_id, s.ptid) for s in timeline.spans}
                    | {(i.core_id, i.ptid) for i in timeline.instants})
    prefix = f"{label} " if label else ""
    for core_id in cores:
        core_name = timeline.core_names.get(core_id, f"core{core_id}")
        events.append({"name": "process_name", "ph": "M",
                       "pid": pid_base + core_id, "tid": 0,
                       "args": {"name": f"{prefix}{core_name}"}})
    for core_id, ptid in tracks:
        track_name = timeline.track_names.get((core_id, ptid),
                                              f"ptid{ptid}")
        events.append({"name": "thread_name", "ph": "M",
                       "pid": pid_base + core_id, "tid": ptid,
                       "args": {"name": track_name}})
    for span in timeline.spans:
        events.append({
            "name": span.state.value,
            "cat": "ptid-state",
            "ph": "X",
            "pid": pid_base + span.core_id,
            "tid": span.ptid,
            "ts": _cycles_to_us(span.begin, freq_ghz),
            "dur": _cycles_to_us(span.duration, freq_ghz),
            "args": {"begin_cycle": span.begin, "end_cycle": span.end},
        })
    for instant in timeline.instants:
        events.append({
            "name": instant.name,
            "cat": "ptid-event",
            "ph": "i",
            "s": "t",
            "pid": pid_base + instant.core_id,
            "tid": instant.ptid,
            "ts": _cycles_to_us(instant.at, freq_ghz),
            "args": {"cycle": instant.at},
        })
    return events


def chrome_trace(timelines: Sequence[Tuple[str, Timeline, float]],
                 metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the JSON-object-format trace for ``(label, timeline,
    freq_ghz)`` triples, one pid block per triple."""
    events: List[Dict[str, Any]] = []
    for index, (label, timeline, freq_ghz) in enumerate(timelines):
        events.extend(timeline_events(timeline, freq_ghz,
                                      pid_base=index * PID_STRIDE,
                                      label=label))
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = metadata
    return trace


def machine_trace(machine) -> Dict[str, Any]:
    """The Chrome trace for one instrumented :class:`~repro.machine.Machine`
    (closes still-open spans at the machine's current time first)."""
    from repro.errors import ConfigError
    if machine.obs is None:
        raise ConfigError("machine is not instrumented; "
                          "build it with instrument=True")
    machine.obs.timeline.finish(machine.engine.now)
    return chrome_trace(
        [("", machine.obs.timeline, machine.config.freq_ghz)],
        metadata={"source": "repro", "engine_now": machine.engine.now})


def write_trace(path: str, trace: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")


def validate_chrome_trace(trace: Dict[str, Any]) -> None:
    """Schema check: raise ``ValueError`` unless ``trace`` is loadable
    Chrome trace-event JSON (used by the tests and the CI artifact)."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"event {event!r} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event!r}")
        phase = event["ph"]
        if phase == "M":
            continue
        if "ts" not in event:
            raise ValueError(f"non-metadata event missing 'ts': {event!r}")
        if event["ts"] < 0:
            raise ValueError(f"negative timestamp: {event!r}")
        if phase == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(f"complete event needs 'dur' >= 0: {event!r}")
        elif phase == "i":
            if event.get("s") not in ("g", "p", "t"):
                raise ValueError(f"instant event needs scope 's': {event!r}")
        else:
            raise ValueError(f"unexpected phase {phase!r}")
