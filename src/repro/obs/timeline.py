"""Span-based per-ptid timelines.

A :class:`Timeline` records what every hardware thread (ptid) on every
core was doing at each simulated cycle as a sequence of half-open
*spans* ``[begin, end)`` tagged with a :class:`ThreadState`.  Cores map
onto tracks (Perfetto processes) and ptids onto sub-tracks (threads);
``repro.obs.export`` turns the result into Chrome trace-event JSON.

The emitting sites are the existing state chokepoints —
``HardwareThread.make_runnable/make_waiting/make_disabled`` in
``hw/ptid.py`` and the tier moves in ``hw/storage.py`` — so the
timeline cannot drift from the simulation's own notion of state.
Spans still open when the run ends are closed by
:meth:`Timeline.finish` at the final clock value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class ThreadState(enum.Enum):
    """What a ptid is doing during a span (the paper's state machine)."""

    RUNNING = "running"          # RUNNABLE: competing for issue slots
    MWAIT = "mwait-blocked"      # WAITING: parked on a monitor address
    STOPPED = "stopped"          # DISABLED: stopped / not yet started
    SPILLED = "spilled-to-l2"    # state demoted out of the register file


@dataclass(frozen=True)
class Span:
    """One closed ``[begin, end)`` interval of a ptid in one state."""

    core_id: int
    ptid: int
    state: ThreadState
    begin: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.begin


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker (promotion, demotion, wakeup...)."""

    core_id: int
    ptid: int
    name: str
    at: int


#: Cap on retained spans+instants; mirrors Tracer.limit so a pathological
#: run degrades to counting instead of exhausting memory.
DEFAULT_SPAN_LIMIT = 1_000_000


class Timeline:
    """Collects spans and instants for every (core, ptid) pair."""

    def __init__(self, limit: int = DEFAULT_SPAN_LIMIT):
        self.limit = limit
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.dropped = 0
        # (core_id, ptid) -> (state, begin) for the currently open span
        self._open: Dict[Tuple[int, int], Tuple[ThreadState, int]] = {}
        self.finished_at: Optional[int] = None
        # optional display names; export falls back to core{N}/ptid{N}
        self.core_names: Dict[int, str] = {}
        self.track_names: Dict[Tuple[int, int], str] = {}

    def name_core(self, core_id: int, name: str) -> None:
        self.core_names[core_id] = name

    def name_track(self, core_id: int, ptid: int, name: str) -> None:
        self.track_names[(core_id, ptid)] = name

    # ------------------------------------------------------------------
    def transition(self, core_id: int, ptid: int, state: ThreadState,
                   now: int) -> None:
        """Close the ptid's open span (if any) at ``now`` and open a new
        one in ``state``.  Same-state transitions are coalesced."""
        key = (core_id, ptid)
        open_span = self._open.get(key)
        if open_span is not None:
            old_state, begin = open_span
            if old_state is state:
                return
            self._store(Span(core_id, ptid, old_state, begin, now))
        self._open[key] = (state, now)

    def instant(self, core_id: int, ptid: int, name: str, now: int) -> None:
        if len(self.instants) + len(self.spans) >= self.limit:
            self.dropped += 1
            return
        self.instants.append(Instant(core_id, ptid, name, now))

    def finish(self, now: int) -> None:
        """Close every still-open span at ``now`` (idempotent)."""
        for (core_id, ptid), (state, begin) in sorted(self._open.items()):
            self._store(Span(core_id, ptid, state, begin, now))
        self._open.clear()
        self.finished_at = now

    # ------------------------------------------------------------------
    def _store(self, span: Span) -> None:
        if span.end <= span.begin:
            return  # zero-length: state changed twice in one cycle
        if len(self.spans) + len(self.instants) >= self.limit:
            self.dropped += 1
            return
        self.spans.append(span)

    # ------------------------------------------------------------------
    def open_spans(self) -> List[Tuple[int, int, ThreadState, int]]:
        """The still-open spans as (core_id, ptid, state, begin)."""
        return [(core_id, ptid, state, begin)
                for (core_id, ptid), (state, begin)
                in sorted(self._open.items())]

    def spans_for(self, core_id: int, ptid: int) -> List[Span]:
        return [s for s in self.spans
                if s.core_id == core_id and s.ptid == ptid]

    def state_totals(self) -> Dict[str, int]:
        """Total cycles per state across all closed spans."""
        totals: Dict[str, int] = {}
        for span in self.spans:
            key = span.state.value
            totals[key] = totals.get(key, 0) + span.duration
        return totals

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Timeline spans={len(self.spans)}"
                f" instants={len(self.instants)} open={len(self._open)}>")
