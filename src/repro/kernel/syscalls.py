"""System-call paths: synchronous, FlexSC-style batched, hardware-thread.

Section 2 ("Exception-less System Calls and No VM-Exits") frames the
baseline trade-off: serve the syscall in the *same* thread and pay "the
state management necessary when switching privilege levels within a
hardware thread [that] can take hundreds of cycles", or in a *separate
kernel thread* (FlexSC) and pay "complex asynchronous APIs and scheduler
fine-tuning so that kernel threads do not suffer excessive delays". The
proposal gets both: "System calls ... can be served in dedicated
hardware threads, avoiding the mode switching overheads" with a
synchronous API ("Application threads can directly start kernel threads
and use the API in Section 3 to pass parameters").

Three paths, one runner. Each path's :meth:`call` is a sub-generator
usable from a simulation process; :meth:`overhead_cycles` gives the
closed-form per-call overhead for the summary table.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.analysis.stats import LatencyRecorder
from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.kernel.threads import ContextSwitchAccounting
from repro.sim.engine import Engine
from repro.sim.process import Signal


class SyncSyscallPath:
    """In-thread synchronous syscall (Linux, Dune, IX, ZygOS)."""

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 kernel_uses_fp: bool = False,
                 accounting: Optional[ContextSwitchAccounting] = None):
        self.engine = engine
        self.costs = costs or CostModel()
        self.kernel_uses_fp = kernel_uses_fp
        self.accounting = accounting or ContextSwitchAccounting(self.costs)
        self.calls = 0

    def overhead_cycles(self) -> int:
        """Per-call overhead excluding the kernel work itself."""
        return self.costs.syscall_sync_cycles(fp_save=self.kernel_uses_fp)

    def call(self, kernel_work_cycles: int):
        """Sub-generator: perform one syscall (``yield from`` me)."""
        self.calls += 1
        self.accounting.charge_mode_switch(fp_save=self.kernel_uses_fp)
        yield self.overhead_cycles() + max(1, kernel_work_cycles)


class FlexScPath:
    """Exception-less syscalls via a shared page and a kernel-side
    syscall thread (FlexSC [69]).

    The application posts an entry to the syscall page (cheap stores)
    and blocks on the completion slot; a kernel thread wakes every
    ``batch_window_cycles``, drains all pending entries, and writes
    results. Mode switches are amortized away, but each call eats the
    batching delay -- the "excessive delays" / async-API complexity the
    paper refers to.
    """

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 batch_window_cycles: int = 5_000,
                 post_cycles: int = 40,
                 kernel_uses_fp: bool = False):
        if batch_window_cycles < 1:
            raise ConfigError("batch window must be at least one cycle")
        self.engine = engine
        self.costs = costs or CostModel()
        self.batch_window_cycles = batch_window_cycles
        self.post_cycles = post_cycles
        self.kernel_uses_fp = kernel_uses_fp  # separate thread: no save cost
        self.calls = 0
        self.batches = 0
        self._pending: Deque[Tuple[int, Signal]] = deque()
        self._drain_scheduled = False

    def overhead_cycles(self) -> int:
        """Mean per-call overhead: posting plus half a batch window."""
        return self.post_cycles + self.batch_window_cycles // 2

    def call(self, kernel_work_cycles: int):
        """Sub-generator: post the entry and wait for its completion."""
        self.calls += 1
        yield self.post_cycles
        done = Signal("flexsc.done")
        self._pending.append((max(1, kernel_work_cycles), done))
        self._schedule_drain()
        yield done

    def _schedule_drain(self) -> None:
        """Arrange for the kernel thread's next batch-boundary visit.

        The kernel syscall thread inspects the shared page on a fixed
        ``batch_window_cycles`` grid; modeling only the visits that find
        work keeps the event queue finite without changing any latency.
        """
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        window = self.batch_window_cycles
        next_boundary = ((self.engine.now // window) + 1) * window
        self.engine.at(next_boundary, self._start_batch)

    def _start_batch(self) -> None:
        self._drain_scheduled = False
        if not self._pending:
            return
        self.batches += 1
        batch, self._pending = self._pending, deque()
        self.engine.spawn(self._run_batch(batch), name="flexsc.batch")

    def _run_batch(self, batch):
        for work, done in batch:
            yield work
            done.fire()
        # entries posted while this batch ran wait for the next boundary
        if self._pending:
            self._schedule_drain()


class HwThreadSyscallPath:
    """Proposed: the application starts a dedicated kernel ptid.

    Per call: rpush the arguments into the (disabled) kernel ptid,
    start it (paying the storage-tier start latency), let it run the
    kernel work, and wake on its completion-word write. No privilege
    mode switch ever happens; the kernel ptid may freely use FP/vector
    registers ("Access to All Registers in the Kernel") at no extra
    per-call cost.
    """

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 tier: str = "rf", kernel_uses_fp: bool = False):
        if tier not in ("rf", "l2", "l3"):
            raise ConfigError(f"unknown storage tier {tier!r}")
        self.engine = engine
        self.costs = costs or CostModel()
        self.tier = tier
        self.kernel_uses_fp = kernel_uses_fp  # free: separate ptid state
        self.calls = 0

    def overhead_cycles(self) -> int:
        """Per-call overhead: rpush args + start + completion wakeup."""
        return (self.costs.rpull_rpush_cycles
                + self.costs.hw_start_cycles(self.tier)
                + self.costs.monitor_wakeup_cycles)

    def call(self, kernel_work_cycles: int):
        """Sub-generator: start the kernel ptid and wait for its write."""
        self.calls += 1
        yield self.overhead_cycles() + max(1, kernel_work_cycles)


class SyscallRunner:
    """Drives one application thread making back-to-back syscalls.

    Each iteration: ``user_work_cycles`` of application compute, then
    one syscall with ``kernel_work_cycles`` of kernel compute. Records
    per-call latency (invoke-to-return) and end-to-end runtime, from
    which the benchmark derives throughput and overhead fraction.
    """

    def __init__(self, engine: Engine, path, iterations: int,
                 user_work_cycles: int = 500,
                 kernel_work_cycles: int = 300):
        if iterations < 1:
            raise ConfigError("need at least one iteration")
        self.engine = engine
        self.path = path
        self.iterations = iterations
        self.user_work_cycles = user_work_cycles
        self.kernel_work_cycles = kernel_work_cycles
        self.recorder = LatencyRecorder("syscall.latency")
        self.finished_at: Optional[int] = None
        self.process = engine.spawn(self._app(), name="syscall.app")

    def _app(self):
        for _ in range(self.iterations):
            if self.user_work_cycles:
                yield self.user_work_cycles
            started = self.engine.now
            yield from self.path.call(self.kernel_work_cycles)
            self.recorder.record(self.engine.now - started)
        self.finished_at = self.engine.now

    # ------------------------------------------------------------------
    def total_cycles(self) -> int:
        if self.finished_at is None:
            raise ConfigError("runner not finished; run the engine first")
        return self.finished_at

    def useful_cycles(self) -> int:
        return self.iterations * (self.user_work_cycles
                                  + self.kernel_work_cycles)

    def overhead_fraction(self) -> float:
        total = self.total_cycles()
        return (total - self.useful_cycles()) / total
