"""Single-server queueing disciplines.

Section 4 ("Support for Thread Scheduling"): executing runnable
hardware threads "in a fine-grain, round-robin (RR) manner ... emulates
processor sharing (PS)", and "the combination of PS scheduling with
thread-per-request will actually provide superior performance for
server workloads with high execution-time variability".

Three disciplines make that claim testable:

- :class:`FifoServer` -- run-to-completion FCFS: what a baseline kernel
  does when it cannot afford preemption (per-switch cost too high).
- :class:`RoundRobinServer` -- preemptive RR with a configurable
  quantum and a per-switch cost: software time-slicing. As the quantum
  shrinks it approaches PS, but the switch cost blows up -- that
  tension is the ablation of E12.
- :class:`ProcessorSharingServer` -- exact (fluid) PS with zero switch
  cost: the paper's hardware fine-grain RR.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import deque
from operator import itemgetter
from typing import Deque, List, Optional, Tuple

from repro.analysis.stats import LatencyRecorder
from repro.errors import ConfigError
from repro.obs.timeline import ThreadState
from repro.sim.engine import Engine, ScheduledCall
from repro.sim.process import Signal
from repro.workloads.requests import Request


class QueueingServer(abc.ABC):
    """Common surface: feed requests with :meth:`offer` at arrival time."""

    def __init__(self, engine: Engine, name: str = "",
                 recorder: Optional[LatencyRecorder] = None):
        self.engine = engine
        self.name = name or type(self).__name__
        self.recorder = recorder or LatencyRecorder(self.name)
        self.completed = 0
        self.busy_cycles = 0
        self.overhead_cycles = 0
        # observability: servers often run on a bare Engine with no
        # Machine around them, so they hook into the ambient obs session
        # (if one is active) instead; None keeps the hot path a single
        # attribute check
        self._obs_latency = None
        self._obs_timeline = None
        self._obs_track = 0
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            slug = "_".join(self.name.split()).lower()
            prefix = session.register_source(f"kernel.sched.{slug}",
                                             self._fill_metrics)
            self._obs_latency = session.registry.histogram(
                f"{prefix}.latency_cycles")
            self._obs_timeline = session.timeline
            self._obs_track = session.register_track(prefix)

    def _obs_transition(self, state) -> None:
        """Record a busy/blocked span edge on the session timeline (the
        serve loops call this only when instrumentation is on)."""
        self._obs_timeline.transition(self._obs_track, 0, state,
                                      self.engine.now)

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.completed", self.completed)
        registry.inc(f"{prefix}.busy_cycles", self.busy_cycles)
        registry.inc(f"{prefix}.overhead_cycles", self.overhead_cycles)
        registry.set(f"{prefix}.in_flight", self.in_flight())

    @abc.abstractmethod
    def offer(self, request: Request) -> None:
        """A request arrives now (engine.now == request.arrival_time)."""

    @abc.abstractmethod
    def in_flight(self) -> int:
        """Requests admitted but not finished."""

    def _finish(self, request: Request) -> None:
        finish = float(self.engine._now)
        request.finish_time = finish
        self.completed += 1
        latency = finish - request.arrival_time
        self.recorder.record(latency)
        if self._obs_latency is not None:
            self._obs_latency.record(latency)
        done = request.payload.get("done")
        if done is not None:
            done.fire(request)


def feed_trace(engine: Engine, server: QueueingServer,
               trace: List[Request]) -> None:
    """Schedule ``server.offer`` at every request's arrival time."""
    for request in trace:
        engine.at(int(round(request.arrival_time)), server.offer, request)


class FifoServer(QueueingServer):
    """FCFS run-to-completion (no preemption, no switch cost)."""

    def __init__(self, engine: Engine, name: str = "",
                 recorder: Optional[LatencyRecorder] = None):
        super().__init__(engine, name, recorder)
        self._queue: Deque[Request] = deque()
        self._arrival = Signal(f"{self.name}.arrival")
        self._active = 0
        engine.spawn(self._serve(), name=f"{self.name}.server")

    def offer(self, request: Request) -> None:
        self._queue.append(request)
        self._arrival.fire()

    def in_flight(self) -> int:
        return len(self._queue) + self._active

    def _serve(self):
        timeline = self._obs_timeline
        while True:
            while not self._queue:
                if timeline is not None:
                    self._obs_transition(ThreadState.MWAIT)
                yield self._arrival
            if timeline is not None:
                self._obs_transition(ThreadState.RUNNING)
            request = self._queue.popleft()
            self._active = 1
            request.start_time = float(self.engine.now)
            service = max(1, int(round(request.service_cycles)))
            yield service
            self.busy_cycles += service
            self._active = 0
            self._finish(request)


class RoundRobinServer(QueueingServer):
    """Preemptive round robin with per-switch overhead.

    ``quantum`` is the time slice; ``switch_cost`` the cycles charged
    whenever the server switches between two *different* jobs (the
    software context-switch tax; zero models hardware RR).
    """

    def __init__(self, engine: Engine, quantum: int,
                 switch_cost: int = 0, name: str = "",
                 recorder: Optional[LatencyRecorder] = None):
        if quantum < 1:
            raise ConfigError(f"quantum must be >= 1, got {quantum}")
        if switch_cost < 0:
            raise ConfigError(f"switch cost must be >= 0, got {switch_cost}")
        super().__init__(engine, name, recorder)
        self.quantum = quantum
        self.switch_cost = switch_cost
        self._queue: Deque[Tuple[Request, int]] = deque()
        self._arrival = Signal(f"{self.name}.arrival")
        self._active = 0
        self._last_tid: Optional[int] = None
        engine.spawn(self._serve(), name=f"{self.name}.server")

    def offer(self, request: Request) -> None:
        remaining = max(1, int(round(request.service_cycles)))
        self._queue.append((request, remaining))
        self._arrival.fire()

    def in_flight(self) -> int:
        return len(self._queue) + self._active

    def _serve(self):
        timeline = self._obs_timeline
        while True:
            while not self._queue:
                if timeline is not None:
                    self._obs_transition(ThreadState.MWAIT)
                yield self._arrival
            if timeline is not None:
                self._obs_transition(ThreadState.RUNNING)
            request, remaining = self._queue.popleft()
            self._active = 1
            if request.start_time is None:
                request.start_time = float(self.engine.now)
            if self._last_tid is not None and self._last_tid != request.req_id:
                if self.switch_cost:
                    yield self.switch_cost
                    self.overhead_cycles += self.switch_cost
            self._last_tid = request.req_id
            slice_cycles = min(self.quantum, remaining)
            yield slice_cycles
            self.busy_cycles += slice_cycles
            remaining -= slice_cycles
            self._active = 0
            if remaining > 0:
                self._queue.append((request, remaining))
            else:
                self._finish(request)


class ProcessorSharingServer(QueueingServer):
    """Exact fluid processor sharing (the hardware fine-grain RR limit).

    With ``n`` active jobs on ``servers`` cores each job progresses at
    rate ``min(1, servers/n)`` (M/G/m round robin in the fluid limit).
    State is advanced lazily at arrival/completion events, so the
    simulation is event-exact with no quantum artifacts and no switch
    cost -- per the paper, hardware multiplexing makes the switch free.

    Every job progresses at the *same* rate between events, so instead
    of rewriting per-job remaining-work at each event (O(jobs) per
    event, quadratic under load) the server keeps one global
    virtual-progress accumulator and stores each job in a heap keyed by
    ``remaining-at-arrival + progress-at-arrival``; a job is done when
    the accumulator passes its key. Every event is O(log jobs).
    """

    #: A job completes once its key is within this many virtual cycles
    #: of the progress accumulator -- absorbing the integer rounding of
    #: the completion timer without ever force-popping an undone job.
    COMPLETION_EPSILON = 0.5

    def __init__(self, engine: Engine, name: str = "",
                 recorder: Optional[LatencyRecorder] = None,
                 servers: int = 1):
        if servers < 1:
            raise ConfigError(f"servers must be >= 1, got {servers}")
        super().__init__(engine, name, recorder)
        self.servers = servers
        self._progress = 0.0  # per-job virtual progress since t=0
        # (service + progress-at-arrival, arrival seq, request); the seq
        # both breaks ties deterministically and preserves the finish
        # order of the old per-job list (insertion order)
        self._heap: List[Tuple[float, int, Request]] = []
        self._seq = itertools.count()
        self._last_update = 0
        self._pending_completion: Optional[ScheduledCall] = None
        self._deadline = 0  # absolute fire time of _pending_completion

    def offer(self, request: Request) -> None:
        self._advance()
        request.start_time = float(self.engine._now)
        svc = float(request.service_cycles)
        key = (svc if svc > 1.0 else 1.0) + self._progress
        heapq.heappush(self._heap, (key, next(self._seq), request))
        self._reschedule()

    def in_flight(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Accumulate the shared progress since the last event."""
        now = self.engine._now
        elapsed = now - self._last_update
        self._last_update = now
        n = len(self._heap)
        if not n or elapsed <= 0:
            return
        servers = self.servers
        self.busy_cycles += elapsed * (n if n < servers else servers)
        self._progress += elapsed * (1.0 if n <= servers else servers / n)

    def _reschedule(self) -> None:
        """(Re)arm the completion timer -- the lazy-deadline pattern.

        An arrival can only *delay* the head job's completion (more
        jobs, lower per-job rate), so the armed deadline is kept and
        the early fire re-validates and re-arms; the common arrival
        path therefore schedules zero engine cancels. Only an arrival
        whose own completion lands strictly before the armed deadline
        (a short job entering a long queue) cancels and re-arms.
        """
        heap = self._heap
        if not heap:
            return
        min_remaining = heap[0][0] - self._progress
        # next completion after min_remaining / per-job-rate of wall time
        n = len(heap)
        servers = self.servers
        slowdown = 1.0 if n <= servers else n / servers
        delay = int(round(min_remaining * slowdown))
        due = self.engine._now + (delay if delay > 1 else 1)
        pending = self._pending_completion
        if pending is not None:
            if due >= self._deadline:
                return
            pending.cancel()
        self._deadline = due
        self._pending_completion = self.engine.at(due, self._complete)

    def _complete(self) -> None:
        self._pending_completion = None
        self._advance()
        heap = self._heap
        threshold = self._progress + self.COMPLETION_EPSILON
        if heap and heap[0][0] <= threshold:
            heappop = heapq.heappop
            first = heappop(heap)
            if not (heap and heap[0][0] <= threshold):
                self._finish(first[2])   # the common single-finish fire
            else:
                finished = [first]
                while heap and heap[0][0] <= threshold:
                    finished.append(heappop(heap))
                finished.sort(key=itemgetter(1))  # arrival order
                for _key, _seq, request in finished:
                    self._finish(request)
        # Nothing due means this was a stale (lazy) deadline fired at
        # the pre-arrival rate, or integer rounding undershot; either
        # way re-arm from current state. Progress strictly increases
        # between fires (delay >= 1, rate > 0), so this converges.
        self._reschedule()
