"""Single-server queueing disciplines.

Section 4 ("Support for Thread Scheduling"): executing runnable
hardware threads "in a fine-grain, round-robin (RR) manner ... emulates
processor sharing (PS)", and "the combination of PS scheduling with
thread-per-request will actually provide superior performance for
server workloads with high execution-time variability".

Three disciplines make that claim testable:

- :class:`FifoServer` -- run-to-completion FCFS: what a baseline kernel
  does when it cannot afford preemption (per-switch cost too high).
- :class:`RoundRobinServer` -- preemptive RR with a configurable
  quantum and a per-switch cost: software time-slicing. As the quantum
  shrinks it approaches PS, but the switch cost blows up -- that
  tension is the ablation of E12.
- :class:`ProcessorSharingServer` -- exact (fluid) PS with zero switch
  cost: the paper's hardware fine-grain RR.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.analysis.stats import LatencyRecorder
from repro.errors import ConfigError
from repro.obs.timeline import ThreadState
from repro.sim.engine import Engine, ScheduledCall
from repro.sim.process import Signal
from repro.workloads.requests import Request


class QueueingServer(abc.ABC):
    """Common surface: feed requests with :meth:`offer` at arrival time."""

    def __init__(self, engine: Engine, name: str = "",
                 recorder: Optional[LatencyRecorder] = None):
        self.engine = engine
        self.name = name or type(self).__name__
        self.recorder = recorder or LatencyRecorder(self.name)
        self.completed = 0
        self.busy_cycles = 0
        self.overhead_cycles = 0
        # observability: servers often run on a bare Engine with no
        # Machine around them, so they hook into the ambient obs session
        # (if one is active) instead; None keeps the hot path a single
        # attribute check
        self._obs_latency = None
        self._obs_timeline = None
        self._obs_track = 0
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            slug = "_".join(self.name.split()).lower()
            prefix = session.register_source(f"kernel.sched.{slug}",
                                             self._fill_metrics)
            self._obs_latency = session.registry.histogram(
                f"{prefix}.latency_cycles")
            self._obs_timeline = session.timeline
            self._obs_track = session.register_track(prefix)

    def _obs_transition(self, state) -> None:
        """Record a busy/blocked span edge on the session timeline (the
        serve loops call this only when instrumentation is on)."""
        self._obs_timeline.transition(self._obs_track, 0, state,
                                      self.engine.now)

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.completed", self.completed)
        registry.inc(f"{prefix}.busy_cycles", self.busy_cycles)
        registry.inc(f"{prefix}.overhead_cycles", self.overhead_cycles)
        registry.set(f"{prefix}.in_flight", self.in_flight())

    @abc.abstractmethod
    def offer(self, request: Request) -> None:
        """A request arrives now (engine.now == request.arrival_time)."""

    @abc.abstractmethod
    def in_flight(self) -> int:
        """Requests admitted but not finished."""

    def _finish(self, request: Request) -> None:
        request.finish_time = float(self.engine.now)
        self.completed += 1
        self.recorder.record(request.latency)
        if self._obs_latency is not None:
            self._obs_latency.record(request.latency)
        done = request.payload.get("done")
        if done is not None:
            done.fire(request)


def feed_trace(engine: Engine, server: QueueingServer,
               trace: List[Request]) -> None:
    """Schedule ``server.offer`` at every request's arrival time."""
    for request in trace:
        engine.at(int(round(request.arrival_time)), server.offer, request)


class FifoServer(QueueingServer):
    """FCFS run-to-completion (no preemption, no switch cost)."""

    def __init__(self, engine: Engine, name: str = "",
                 recorder: Optional[LatencyRecorder] = None):
        super().__init__(engine, name, recorder)
        self._queue: Deque[Request] = deque()
        self._arrival = Signal(f"{self.name}.arrival")
        self._active = 0
        engine.spawn(self._serve(), name=f"{self.name}.server")

    def offer(self, request: Request) -> None:
        self._queue.append(request)
        self._arrival.fire()

    def in_flight(self) -> int:
        return len(self._queue) + self._active

    def _serve(self):
        timeline = self._obs_timeline
        while True:
            while not self._queue:
                if timeline is not None:
                    self._obs_transition(ThreadState.MWAIT)
                yield self._arrival
            if timeline is not None:
                self._obs_transition(ThreadState.RUNNING)
            request = self._queue.popleft()
            self._active = 1
            request.start_time = float(self.engine.now)
            service = max(1, int(round(request.service_cycles)))
            yield service
            self.busy_cycles += service
            self._active = 0
            self._finish(request)


class RoundRobinServer(QueueingServer):
    """Preemptive round robin with per-switch overhead.

    ``quantum`` is the time slice; ``switch_cost`` the cycles charged
    whenever the server switches between two *different* jobs (the
    software context-switch tax; zero models hardware RR).
    """

    def __init__(self, engine: Engine, quantum: int,
                 switch_cost: int = 0, name: str = "",
                 recorder: Optional[LatencyRecorder] = None):
        if quantum < 1:
            raise ConfigError(f"quantum must be >= 1, got {quantum}")
        if switch_cost < 0:
            raise ConfigError(f"switch cost must be >= 0, got {switch_cost}")
        super().__init__(engine, name, recorder)
        self.quantum = quantum
        self.switch_cost = switch_cost
        self._queue: Deque[Tuple[Request, int]] = deque()
        self._arrival = Signal(f"{self.name}.arrival")
        self._active = 0
        self._last_tid: Optional[int] = None
        engine.spawn(self._serve(), name=f"{self.name}.server")

    def offer(self, request: Request) -> None:
        remaining = max(1, int(round(request.service_cycles)))
        self._queue.append((request, remaining))
        self._arrival.fire()

    def in_flight(self) -> int:
        return len(self._queue) + self._active

    def _serve(self):
        timeline = self._obs_timeline
        while True:
            while not self._queue:
                if timeline is not None:
                    self._obs_transition(ThreadState.MWAIT)
                yield self._arrival
            if timeline is not None:
                self._obs_transition(ThreadState.RUNNING)
            request, remaining = self._queue.popleft()
            self._active = 1
            if request.start_time is None:
                request.start_time = float(self.engine.now)
            if self._last_tid is not None and self._last_tid != request.req_id:
                if self.switch_cost:
                    yield self.switch_cost
                    self.overhead_cycles += self.switch_cost
            self._last_tid = request.req_id
            slice_cycles = min(self.quantum, remaining)
            yield slice_cycles
            self.busy_cycles += slice_cycles
            remaining -= slice_cycles
            self._active = 0
            if remaining > 0:
                self._queue.append((request, remaining))
            else:
                self._finish(request)


class ProcessorSharingServer(QueueingServer):
    """Exact fluid processor sharing (the hardware fine-grain RR limit).

    With ``n`` active jobs on ``servers`` cores each job progresses at
    rate ``min(1, servers/n)`` (M/G/m round robin in the fluid limit).
    State is advanced lazily at arrival/completion events, so the
    simulation is event-exact with no quantum artifacts and no switch
    cost -- per the paper, hardware multiplexing makes the switch free.

    Every job progresses at the *same* rate between events, so instead
    of rewriting per-job remaining-work at each event (O(jobs) per
    event, quadratic under load) the server keeps one global
    virtual-progress accumulator and stores each job in a heap keyed by
    ``remaining-at-arrival + progress-at-arrival``; a job is done when
    the accumulator passes its key. Every event is O(log jobs).
    """

    def __init__(self, engine: Engine, name: str = "",
                 recorder: Optional[LatencyRecorder] = None,
                 servers: int = 1):
        if servers < 1:
            raise ConfigError(f"servers must be >= 1, got {servers}")
        super().__init__(engine, name, recorder)
        self.servers = servers
        self._progress = 0.0  # per-job virtual progress since t=0
        # (service + progress-at-arrival, arrival seq, request); the seq
        # both breaks ties deterministically and preserves the finish
        # order of the old per-job list (insertion order)
        self._heap: List[Tuple[float, int, Request]] = []
        self._seq = itertools.count()
        self._last_update = 0
        self._pending_completion: Optional[ScheduledCall] = None

    def offer(self, request: Request) -> None:
        self._advance()
        request.start_time = float(self.engine.now)
        key = max(1.0, float(request.service_cycles)) + self._progress
        heapq.heappush(self._heap, (key, next(self._seq), request))
        self._reschedule()

    def in_flight(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Accumulate the shared progress since the last event."""
        now = self.engine.now
        elapsed = now - self._last_update
        self._last_update = now
        n = len(self._heap)
        if not n or elapsed <= 0:
            return
        self.busy_cycles += elapsed * min(n, self.servers)  # server-cycles
        self._progress += elapsed * min(1.0, self.servers / n)

    def _reschedule(self) -> None:
        if self._pending_completion is not None:
            self._pending_completion.cancel()
            self._pending_completion = None
        heap = self._heap
        if not heap:
            return
        min_remaining = heap[0][0] - self._progress
        # next completion after min_remaining / per-job-rate of wall time
        slowdown = max(1.0, len(heap) / self.servers)
        delay = max(1, int(round(min_remaining * slowdown)))
        self._pending_completion = self.engine.after(delay, self._complete)

    def _complete(self) -> None:
        self._pending_completion = None
        self._advance()
        heap = self._heap
        progress = self._progress
        finished = []
        while heap and heap[0][0] - progress <= 0.5:
            finished.append(heapq.heappop(heap))
        if not finished:
            # rounding left the minimum just above zero; finish it now
            finished.append(heapq.heappop(heap))
        finished.sort(key=lambda entry: entry[1])  # arrival order
        for _key, _seq, request in finished:
            self._finish(request)
        self._reschedule()
