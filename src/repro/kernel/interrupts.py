"""Event delivery: IDT interrupts vs monitor/mwait dispatch.

Section 2 ("No More Interrupts"): instead of registering handlers in
the interrupt descriptor table, "the kernel can designate a hardware
thread per core per interrupt type", each blocked on a memory address;
the event trigger writes that address and "the hardware thread becomes
runnable and handles the event without the need to jump into an IRQ
context and the associated overheads".

Both paths here consume the *same* device event stream and invoke the
same handler; only the delivery machinery (and its cost) differs:

- :class:`IdtInterruptPath` -- hard-IRQ entry, handler, IRQ exit; if the
  event must wake a blocked thread, add scheduler + context switch +
  cache pollution (+ an IPI if the target runs on another core).
- :class:`HwThreadDispatch` -- a watch on the event word; wakeup charges
  the monitor-to-runnable latency plus the storage-tier start cost.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.stats import LatencyRecorder
from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.kernel.threads import ContextSwitchAccounting
from repro.mem.memory import Memory

Handler = Callable[[int], None]


class IdtInterruptPath:
    """Baseline delivery through the interrupt descriptor table.

    ``raise_irq(event_id)`` models the full Section 1 chain and invokes
    ``handler(event_id)`` when the woken thread actually starts running.
    Delivery latency per event is recorded in ``recorder``.
    """

    def __init__(self, engine, costs: Optional[CostModel] = None,
                 handler: Optional[Handler] = None,
                 wakes_blocked_thread: bool = True,
                 cross_core: bool = False,
                 handler_cycles: int = 0,
                 accounting: Optional[ContextSwitchAccounting] = None,
                 name: str = "idt"):
        self.engine = engine
        self.costs = costs or CostModel()
        self.handler = handler
        self.wakes_blocked_thread = wakes_blocked_thread
        self.cross_core = cross_core
        self.handler_cycles = handler_cycles
        self.accounting = accounting or ContextSwitchAccounting(self.costs)
        self.recorder = LatencyRecorder(f"{name}.delivery")
        self.events_delivered = 0

    # ------------------------------------------------------------------
    def delivery_cycles(self) -> int:
        """Event-to-handler-start latency for one interrupt."""
        cycles = self.accounting.charge_irq()
        if self.cross_core:
            cycles += self.accounting.charge_ipi()
        if self.wakes_blocked_thread:
            cycles += self.accounting.charge_scheduler()
            cycles += self.accounting.charge_switch()
        return cycles

    def raise_irq(self, event_id: int) -> None:
        """A device raised an interrupt for ``event_id`` now."""
        raised_at = self.engine.now
        delay = self.delivery_cycles()

        def start_handler() -> None:
            self.recorder.record(self.engine.now - raised_at)
            self.events_delivered += 1
            if self.handler is not None:
                if self.handler_cycles:
                    self.engine.after(self.handler_cycles,
                                      self.handler, event_id)
                else:
                    self.handler(event_id)

        self.engine.after(delay, start_handler)


class HwThreadDispatch:
    """Proposed delivery: a hardware thread mwait-ing on an event word.

    Arms a watch on ``event_addr``; every write there wakes the
    (modeled) handler ptid after ``monitor_wakeup + start(tier)``
    cycles. The behavioral twin of the ISA-level mwait loop -- E02 runs
    both and checks they agree.
    """

    def __init__(self, engine, memory: Memory, event_addr: int,
                 costs: Optional[CostModel] = None,
                 handler: Optional[Handler] = None,
                 tier: str = "rf",
                 handler_cycles: int = 0,
                 name: str = "hwdispatch"):
        if tier not in ("rf", "l2", "l3"):
            raise ConfigError(f"unknown storage tier {tier!r}")
        self.engine = engine
        self.memory = memory
        self.event_addr = event_addr
        self.costs = costs or CostModel()
        self.handler = handler
        self.tier = tier
        self.handler_cycles = handler_cycles
        self.recorder = LatencyRecorder(f"{name}.delivery")
        self.events_delivered = 0
        self._handler_busy_until = 0
        self._arm()

    # ------------------------------------------------------------------
    def delivery_cycles(self) -> int:
        """Write-to-handler-start latency for one wakeup."""
        return self.costs.hw_wakeup_cycles(self.tier)

    def _arm(self) -> None:
        watch = self.memory.watch_bus.watch(self.event_addr, owner="hwdispatch")

        def on_write(info: dict) -> None:
            watch.cancel()
            self._wake(info)
            self._arm()

        watch.signal.add_waiter(on_write)

    def _wake(self, info: dict) -> None:
        raised_at = self.engine.now
        # if the handler thread is already running it processes the new
        # event from its loop without paying another wakeup (it only
        # re-arms mwait when the queue drains)
        if self.engine.now < self._handler_busy_until:
            start_at = self._handler_busy_until
        else:
            start_at = self.engine.now + self.delivery_cycles()

        def start_handler() -> None:
            self.recorder.record(self.engine.now - raised_at)
            self.events_delivered += 1
            if self.handler is not None:
                if self.handler_cycles:
                    self.engine.after(self.handler_cycles, self.handler,
                                      info.get("value", 0))
                else:
                    self.handler(info.get("value", 0))

        self._handler_busy_until = start_at + max(self.handler_cycles, 1)
        self.engine.at(start_at, start_handler)
