"""Behavioral kernel models: the baseline world and the proposed world.

The paper's argument is comparative -- interrupts vs mwait-wakeups,
in-thread syscalls vs dedicated-ptid syscalls, software-thread
multiplexing vs hardware threads. This package implements both sides of
each comparison with the *same* event streams and a shared
:class:`~repro.arch.costs.CostModel`, so every experiment is paired.

- :mod:`repro.kernel.threads` -- software threads and context-switch
  accounting (the thing the paper wants to eliminate).
- :mod:`repro.kernel.sched` -- single-server queueing disciplines:
  FIFO run-to-completion, round-robin with switch costs, and ideal
  processor sharing (the paper's fine-grain hardware RR).
- :mod:`repro.kernel.interrupts` -- IDT interrupt delivery vs
  monitor/mwait dispatch.
- :mod:`repro.kernel.io` -- the three I/O server designs of Section 2:
  interrupt-driven, polling, and mwait-based.
- :mod:`repro.kernel.syscalls` -- synchronous, FlexSC-style
  asynchronous, and dedicated-hardware-thread system calls.
"""

from repro.kernel.interrupts import HwThreadDispatch, IdtInterruptPath
from repro.kernel.io import (
    InterruptIoServer,
    IoServerStats,
    MwaitIoServer,
    PollingIoServer,
)
from repro.kernel.sched import (
    FifoServer,
    ProcessorSharingServer,
    RoundRobinServer,
)
from repro.kernel.syscalls import (
    FlexScPath,
    HwThreadSyscallPath,
    SyncSyscallPath,
    SyscallRunner,
)
from repro.kernel.threads import ContextSwitchAccounting, SoftwareThread

__all__ = [
    "SoftwareThread",
    "ContextSwitchAccounting",
    "FifoServer",
    "RoundRobinServer",
    "ProcessorSharingServer",
    "IdtInterruptPath",
    "HwThreadDispatch",
    "InterruptIoServer",
    "PollingIoServer",
    "MwaitIoServer",
    "IoServerStats",
    "SyncSyscallPath",
    "FlexScPath",
    "HwThreadSyscallPath",
    "SyscallRunner",
]
