"""Software threads and context-switch accounting.

The baseline world multiplexes software threads onto a small number of
hardware threads; every block/unblock pays the costs Section 1
enumerates. :class:`ContextSwitchAccounting` centralizes the charging so
experiments report not just latency but *where the cycles went* --
the paper's complaint is precisely this overhead budget.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.arch.costs import CostModel
from repro.errors import SimulationError

_thread_ids = itertools.count(1)


class SwThreadState(enum.Enum):
    """Classic software-thread lifecycle states."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class SoftwareThread:
    """One kernel-visible software thread (behavioral).

    Tracks the state machine and per-thread statistics; the scheduling
    and cost charging happen in the server/scheduler models.
    """

    def __init__(self, name: str = "", uses_fp: bool = False):
        self.tid = next(_thread_ids)
        self.name = name or f"swthread-{self.tid}"
        self.uses_fp = uses_fp
        self.state = SwThreadState.READY
        self.cpu_cycles = 0
        self.blocks = 0
        self.wakeups = 0

    # ------------------------------------------------------------------
    def run(self) -> None:
        if self.state not in (SwThreadState.READY,):
            raise SimulationError(
                f"{self.name}: cannot run from {self.state.value}")
        self.state = SwThreadState.RUNNING

    def block(self) -> None:
        if self.state is not SwThreadState.RUNNING:
            raise SimulationError(
                f"{self.name}: cannot block from {self.state.value}")
        self.state = SwThreadState.BLOCKED
        self.blocks += 1

    def wake(self) -> None:
        if self.state is not SwThreadState.BLOCKED:
            raise SimulationError(
                f"{self.name}: cannot wake from {self.state.value}")
        self.state = SwThreadState.READY
        self.wakeups += 1

    def preempt(self) -> None:
        if self.state is not SwThreadState.RUNNING:
            raise SimulationError(
                f"{self.name}: cannot preempt from {self.state.value}")
        self.state = SwThreadState.READY

    def finish(self) -> None:
        self.state = SwThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SoftwareThread {self.name} {self.state.value}>"


class ContextSwitchAccounting:
    """Central ledger of context-switch overhead cycles.

    Every baseline model charges through this object, so an experiment
    can report the total tax (and its breakdown) next to the latency
    numbers -- reproducing the paper's "high overheads" claim with an
    auditable trail.
    """

    def __init__(self, costs: Optional[CostModel] = None):
        self.costs = costs or CostModel()
        self.switches = 0
        self.mode_switches = 0
        self.irq_entries = 0
        self.scheduler_invocations = 0
        self.ipis = 0
        self.switch_cycles = 0
        self.mode_switch_cycles = 0
        self.irq_cycles = 0
        self.scheduler_cycles = 0
        self.ipi_cycles = 0
        self.pollution_cycles = 0

    # ------------------------------------------------------------------
    def charge_switch(self, fp_state: bool = False,
                      include_pollution: bool = True) -> int:
        """One software context switch (no scheduler). Returns cycles."""
        self.switches += 1
        cycles = self.costs.sw_switch_cycles
        if fp_state:
            cycles += self.costs.sw_switch_fp_extra_cycles
        self.switch_cycles += cycles
        if include_pollution:
            self.pollution_cycles += self.costs.cache_pollution_cycles
            cycles += self.costs.cache_pollution_cycles
        return cycles

    def charge_mode_switch(self, fp_save: bool = False) -> int:
        """One privilege-level round trip (syscall entry+exit)."""
        self.mode_switches += 1
        cycles = self.costs.mode_switch_cycles
        if fp_save:
            cycles += self.costs.sw_switch_fp_extra_cycles
        self.mode_switch_cycles += cycles
        return cycles

    def charge_irq(self) -> int:
        """Hard-IRQ entry + exit."""
        self.irq_entries += 1
        cycles = self.costs.irq_entry_cycles + self.costs.irq_exit_cycles
        self.irq_cycles += cycles
        return cycles

    def charge_scheduler(self) -> int:
        """One kernel-scheduler invocation."""
        self.scheduler_invocations += 1
        self.scheduler_cycles += self.costs.scheduler_cycles
        return self.costs.scheduler_cycles

    def charge_ipi(self) -> int:
        """One inter-processor interrupt."""
        self.ipis += 1
        self.ipi_cycles += self.costs.ipi_cycles
        return self.costs.ipi_cycles

    # ------------------------------------------------------------------
    @property
    def total_overhead_cycles(self) -> int:
        return (self.switch_cycles + self.mode_switch_cycles
                + self.irq_cycles + self.scheduler_cycles + self.ipi_cycles
                + self.pollution_cycles)

    def breakdown(self) -> dict:
        """Overhead cycles by category."""
        return {
            "switch": self.switch_cycles,
            "mode_switch": self.mode_switch_cycles,
            "irq": self.irq_cycles,
            "scheduler": self.scheduler_cycles,
            "ipi": self.ipi_cycles,
            "pollution": self.pollution_cycles,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ContextSwitchAccounting switches={self.switches}"
                f" overhead={self.total_overhead_cycles}>")
