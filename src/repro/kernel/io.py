"""The three I/O server designs of Section 2 ("Fast I/O without
Inefficient Polling").

The paper's triangle:

- interrupt-driven I/O keeps the core free but pays the full wakeup
  chain per idle-to-busy transition;
- polling gets minimal delivery latency but "waste[s] one or more
  cores";
- mwait-based hardware threads get polling-like latency *and* free
  cycles for other threads ("letting other threads run until there is
  I/O activity").

Each server is a single consumer fed by :meth:`deliver` (wired to a NIC
callback or a tail-word watch by the experiment driver). Latency is
measured from delivery to service completion; ``wasted_cycles`` counts
cycles the design burned without doing useful work (spin cycles for
polling, delivery overhead for interrupts, wakeup cost for mwait).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.analysis.stats import LatencyRecorder
from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.obs.timeline import ThreadState
from repro.sim.engine import Engine
from repro.sim.process import Signal


@dataclass(frozen=True)
class IoServerStats:
    """End-of-run report for one I/O server."""

    completed: int
    wakeups: int
    busy_cycles: int
    wasted_cycles: int
    mean_latency: float
    p50_latency: float
    p99_latency: float


class _QueueIoServer:
    """Shared machinery: FIFO queue + single server process."""

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 name: str = "ioserver"):
        self.engine = engine
        self.costs = costs or CostModel()
        self.name = name
        self.recorder = LatencyRecorder(f"{name}.latency")
        self._queue: Deque[Tuple[int, int, int]] = deque()  # (id, svc, t)
        self._arrival = Signal(f"{name}.arrival")
        self._idle = True
        self.completed = 0
        self.wakeups = 0
        self.busy_cycles = 0
        self.wasted_cycles = 0
        self.started_at = engine.now
        # observability: hook the ambient obs session, if one is active
        # (I/O servers run on bare Engines, outside any Machine)
        self._obs_latency = None
        self._obs_timeline = None
        self._obs_track = 0
        import repro.obs as obs
        session = obs.active()
        if session is not None:
            slug = "_".join(name.split()).lower()
            prefix = session.register_source(f"kernel.io.{slug}",
                                             self._fill_metrics)
            self._obs_latency = session.registry.histogram(
                f"{prefix}.latency_cycles")
            self._obs_timeline = session.timeline
            self._obs_track = session.register_track(prefix)
        engine.spawn(self._serve(), name=f"{name}.server")

    def _fill_metrics(self, registry, prefix: str) -> None:
        registry.inc(f"{prefix}.completed", self.completed)
        registry.inc(f"{prefix}.wakeups", self.wakeups)
        registry.inc(f"{prefix}.busy_cycles", self.busy_cycles)
        registry.inc(f"{prefix}.wasted_cycles", self.wasted_cycles)
        registry.set(f"{prefix}.pending", self.pending())

    # ------------------------------------------------------------------
    def deliver(self, event_id: int, service_cycles: int) -> None:
        """A packet/completion landed now; queue it for service."""
        if service_cycles < 1:
            raise ConfigError("service must be at least one cycle")
        self._queue.append((event_id, service_cycles, self.engine.now))
        self._arrival.fire()

    def pending(self) -> int:
        return len(self._queue)

    def stats(self) -> IoServerStats:
        summary = self.recorder.summary()
        return IoServerStats(
            completed=self.completed,
            wakeups=self.wakeups,
            busy_cycles=self.busy_cycles,
            wasted_cycles=self.wasted_cycles,
            mean_latency=summary.mean,
            p50_latency=summary.p50,
            p99_latency=summary.p99,
        )

    # ------------------------------------------------------------------
    def _wake_cost_cycles(self) -> int:
        """Idle-to-running transition cost; overridden per design."""
        raise NotImplementedError

    def _serve(self):
        timeline = self._obs_timeline
        while True:
            while not self._queue:
                self._idle = True
                if timeline is not None:
                    timeline.transition(self._obs_track, 0,
                                        ThreadState.MWAIT,
                                        self.engine.now)
                yield self._arrival
            self._idle = False
            if timeline is not None:
                timeline.transition(self._obs_track, 0,
                                    ThreadState.RUNNING, self.engine.now)
            cost = self._wake_cost_cycles()
            self.wakeups += 1
            if cost:
                self.wasted_cycles += cost
                yield cost
            # drain the queue without further wakeups: the handler only
            # re-blocks when no events remain (both interrupt coalescing
            # and the mwait loop behave this way)
            while self._queue:
                event_id, service, landed = self._queue.popleft()
                yield service
                self.busy_cycles += service
                self.completed += 1
                latency = self.engine.now - landed
                self.recorder.record(latency)
                if self._obs_latency is not None:
                    self._obs_latency.record(latency)


class InterruptIoServer(_QueueIoServer):
    """Baseline: blocked thread woken via the IDT chain per idle gap."""

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 cross_core: bool = False, name: str = "irq-io"):
        self.cross_core = cross_core
        super().__init__(engine, costs, name)

    def _wake_cost_cycles(self) -> int:
        return self.costs.baseline_io_wakeup_cycles(cross_core=self.cross_core)


class MwaitIoServer(_QueueIoServer):
    """Proposed: a hardware thread mwait-ing on the queue tail."""

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 tier: str = "rf", name: str = "mwait-io"):
        if tier not in ("rf", "l2", "l3"):
            raise ConfigError(f"unknown storage tier {tier!r}")
        self.tier = tier
        super().__init__(engine, costs, name)

    def _wake_cost_cycles(self) -> int:
        return self.costs.hw_wakeup_cycles(self.tier)


class PollingIoServer(_QueueIoServer):
    """A dedicated core spinning on the ring tail.

    Delivery cost is one poll-loop iteration; the price is that every
    idle cycle is burned spinning (``wasted_cycles`` accumulates the
    idle time at :meth:`finalize`), which is the paper's objection.
    """

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 poll_iteration_cycles: int = 20, name: str = "poll-io"):
        if poll_iteration_cycles < 1:
            raise ConfigError("poll iteration must be at least one cycle")
        self.poll_iteration_cycles = poll_iteration_cycles
        self._finalized = False
        super().__init__(engine, costs, name)

    def _wake_cost_cycles(self) -> int:
        # detection happens within one poll-loop iteration; the spin
        # waste itself is accounted at finalize() from idle time
        return self.poll_iteration_cycles

    def finalize(self) -> None:
        """Charge all idle time as spin waste (at run end). Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        elapsed = self.engine.now - self.started_at
        spin = elapsed - self.busy_cycles
        if spin > 0:
            self.wasted_cycles += spin
