"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator failures without masking genuine Python bugs
(``TypeError`` and friends always propagate).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling in
    the past, or running a finished process)."""


class DeadlockError(SimulationError):
    """``run()`` was asked to advance but every process is blocked and no
    events are pending."""


class MemoryError_(ReproError):
    """Out-of-range or misaligned access to simulated memory.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class IsaError(ReproError):
    """Malformed instruction or assembler input."""


class GuestFault(ReproError):
    """An executing guest program performed an illegal operation.

    In the proposed hardware model these never unwind the simulator --
    they are converted into exception descriptors written to guest
    memory (see :mod:`repro.hw.exceptions`). The interpreter raises this
    internally and the core catches it at the instruction boundary.
    """

    def __init__(self, kind: str, detail: str = "", faulting_address: int = 0):
        super().__init__(f"{kind}: {detail}" if detail else kind)
        self.kind = kind
        self.detail = detail
        self.faulting_address = faulting_address


class PermissionFault(GuestFault):
    """A ptid attempted a thread-management operation the TDT forbids."""

    def __init__(self, detail: str = ""):
        super().__init__("permission-fault", detail)


class TripleFault(ReproError):
    """An exception occurred in a ptid with no registered handler chain.

    The paper: "Triggering an exception in a thread without a handler for
    that exception type indicates a serious kernel bug akin to a
    triple-fault, and can be handled by halting or resetting the CPU."
    """


class ConfigError(ReproError):
    """Invalid machine, kernel, or experiment configuration."""
