"""The per-ptid monitor unit (generalized monitor/mwait).

Semantics (x86-inspired, per Section 3.1):

- ``monitor <addr>`` arms a watch on the line holding ``addr``; repeated
  ``monitor`` instructions *accumulate* addresses ("A hardware thread
  can monitor multiple memory locations").
- A write to any armed line while the thread is still running sets a
  *pending* flag, so a subsequent ``mwait`` falls through instead of
  sleeping -- the classic lost-wakeup race is impossible by
  construction, exactly as on real x86.
- ``mwait`` with no pending write puts the ptid in the WAITING state;
  the next write to an armed line makes it runnable again.
- A wakeup (or fall-through) consumes the armed set: handlers re-arm
  each iteration, as real monitor/mwait loops do.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.mem.watch import Watch, WatchBus


class MonitorUnit:
    """Monitor/mwait state machine for one hardware thread."""

    def __init__(self, bus: WatchBus, owner: Any = None):
        self.bus = bus
        self.owner = owner
        self._watch: Optional[Watch] = None
        self.pending = False
        self.pending_info: Optional[dict] = None
        self.on_wakeup = None  # callable set by the core
        self.armed_addresses: List[int] = []
        self.total_arms = 0
        self.total_wakeups = 0
        self.total_fallthroughs = 0

    # ------------------------------------------------------------------
    def arm(self, addr: int) -> int:
        """The ``monitor`` instruction: add ``addr`` to the armed set.

        Returns the directory arm cost in cycles (0 on the flat bus),
        which the issuing core charges to the instruction.
        """
        if self._watch is None or not self._watch.armed:
            self._watch = self.bus.watch([], owner=self.owner)
            self._watch.signal.add_waiter(self._triggered)
        cycles = self._watch.add_address(addr)
        self.armed_addresses.append(addr)
        self.total_arms += 1
        return cycles

    def wait(self) -> bool:
        """The ``mwait`` instruction.

        Returns True if the thread must block (no write since arming),
        False if a pending write lets it fall through. Either way the
        armed set stays live until the wakeup consumes it.
        """
        if self.pending:
            self.total_fallthroughs += 1
            self._consume()
            return False
        return self._watch is not None and self._watch.armed

    def cancel(self) -> int:
        """Disarm (used when the ptid is stopped while waiting).

        Returns the directory disarm cost in cycles (0 on the flat
        bus)."""
        return self._consume()

    @property
    def armed(self) -> bool:
        return self._watch is not None and self._watch.armed

    # ------------------------------------------------------------------
    def _triggered(self, info: dict) -> None:
        self.pending = True
        self.pending_info = info
        self.total_wakeups += 1
        callback = self.on_wakeup
        if callback is not None:
            callback(info)

    def _consume(self) -> int:
        self.pending = False
        self.pending_info = None
        self.armed_addresses = []
        cycles = 0
        if self._watch is not None:
            cycles = self._watch.cancel()
            self._watch = None
        return cycles

    def consume_wakeup(self) -> Optional[dict]:
        """Core-side: clear state after waking the thread; returns the
        triggering write's info dict."""
        info = self.pending_info
        self._consume()
        return info
