"""SMT issue policies.

Paper, Section 4 ("Support for Thread Scheduling"): "A simple way to
meet this requirement is to execute runnable hardware threads in a
fine-grain, round-robin (RR) manner, which emulates processor sharing
(PS) ... In addition to RR scheduling, we can introduce hardware support
for thread priorities (e.g., threads used for serving time-sensitive
interrupts receive more cycles)."

A policy picks, each issue round, up to ``width`` threads out of the
currently issueable set. Policies are stateful (rotation pointers,
credit counters) but see only ptids, never programs.
"""

from __future__ import annotations

import operator
from typing import Dict, List

from repro.hw.ptid import HardwareThread

_by_ptid = operator.attrgetter("ptid")


class _OrderCache:
    """Memoized ptid-ordering of the issueable pool.

    The core rebuilds ``issueable`` every round, but its membership (and
    order -- the core iterates threads in ptid order) is stable for long
    stretches, so policies were paying an O(n log n) sort per round for
    an order that almost never changed. The cache keeps the last ordered
    pool and revalidates with a single list equality check (elementwise
    identity, O(n), no allocation); only a genuine membership change
    re-sorts. Epoch counters cannot replace the check: a thread rejoins
    the issueable pool by ``busy_until`` expiry, which no event marks.
    """

    __slots__ = ("_ordered",)

    def __init__(self) -> None:
        self._ordered: List[HardwareThread] = []

    def ordered(self, issueable: List[HardwareThread]) -> List[HardwareThread]:
        ordered = self._ordered
        if issueable != ordered:
            ordered = sorted(issueable, key=_by_ptid)
            self._ordered = ordered
        return ordered


class RoundRobinIssue:
    """Fine-grain RR: rotate through issueable ptids each round.

    The rotation is periodic, which is what makes the core's busy-cycle
    fast-forward possible: when every issueable thread is picked each
    round (no slot contention), repeating the round leaves the rotation
    pointer unchanged, and under contention any ``n`` consecutive rounds
    over a stable ``n``-thread set pick every thread exactly ``width``
    times and return the pointer to its starting value (``n * width`` is
    a multiple of ``n``). Both facts are relied on by
    :meth:`repro.hw.core.HWCore._plan_fast_forward`.
    """

    name = "round-robin"
    #: consecutive identical rounds permute deterministically -- the core
    #: may batch contended rounds in whole rotations (see module note).
    rotation_invariant = True
    #: with ``n <= width``, :meth:`select` always returns all ``n``
    #: threads -- required before the core may defer the select of an
    #: interruptible (lazy) batch to resume time.
    full_pick_uncontended = True

    def __init__(self) -> None:
        self._next = 0
        self._order = _OrderCache()

    def note_enqueue(self, thread: HardwareThread) -> None:
        """A ptid became runnable (wakeup/start). RR has no state to fix."""

    def select(self, issueable: List[HardwareThread], width: int) -> List[HardwareThread]:
        if not issueable:
            return []
        n = len(issueable)
        if n == 1:
            # the dominant case on lightly loaded cores; the general
            # arithmetic below reduces to picking the one thread and
            # parking the pointer at 0 ((start + 1) % 1)
            self._next = 0
            return [issueable[0]]
        ordered = self._order.ordered(issueable)
        start = self._next % n
        picked = [ordered[(start + i) % n] for i in range(min(width, n))]
        self._next = (start + len(picked)) % n
        return picked

    def advance_rounds(self, picked: List[HardwareThread],
                       rounds: int) -> List[HardwareThread]:
        """Replay ``rounds`` uncontended rounds that pick exactly ``picked``.

        With every issueable thread picked, :meth:`select` advances the
        rotation pointer by ``n (mod n)`` -- a no-op -- and the pick
        order never changes, so the last round's order is ``picked``.
        """
        return picked

    def fill_metrics(self, registry, prefix: str) -> None:
        """Snapshot-time harvest (nothing is recorded on the hot path)."""
        registry.set(f"{prefix}.rotation_next", self._next)


class PriorityWeightedIssue:
    """Virtual-time weighted fair issue: a priority-p thread gets p shares.

    Each pick advances the thread's virtual time by ``1/priority``; the
    ``width`` lowest-virtual-time threads issue each round. Steady-state
    issue rates are exactly proportional to priority and no backlogged
    thread starves (an unserved thread's virtual time never advances, so
    it is eventually the minimum).

    Re-entry (classic WFQ): a thread that was waiting or disabled keeps
    a stale, tiny virtual time; replaying it verbatim would let *any*
    woken thread monopolize the pipeline until its debt "caught up",
    erasing priority distinctions exactly when they matter (a wakeup
    into a busy core). The core therefore calls :meth:`note_enqueue`
    whenever a ptid becomes runnable, which clamps its virtual time to
    the system virtual time (the minimum among recently served
    threads) -- from that shared origin, a priority-p thread advances
    p-times slower and receives p shares.
    """

    name = "priority-weighted"
    #: with ``n <= width`` the ``width`` lowest-virtual-time threads are
    #: all of them: uncontended selects are total (see RoundRobinIssue).
    full_pick_uncontended = True

    def __init__(self) -> None:
        self._vtime: Dict[int, float] = {}
        self._system_vtime = 0.0

    def note_enqueue(self, thread: HardwareThread) -> None:
        """Clamp a (re)joining ptid to the system virtual time."""
        current = self._vtime.get(thread.ptid, self._system_vtime)
        self._vtime[thread.ptid] = max(current, self._system_vtime)

    def select(self, issueable: List[HardwareThread], width: int) -> List[HardwareThread]:
        if not issueable:
            return []
        for thread in issueable:
            self._vtime.setdefault(thread.ptid, self._system_vtime)
        ordered = sorted(issueable, key=lambda t: (self._vtime[t.ptid], t.ptid))
        picked = ordered[:width]
        for thread in picked:
            self._vtime[thread.ptid] += 1.0 / max(thread.priority, 1)
        self._system_vtime = max(self._system_vtime,
                                 min(self._vtime[t.ptid] for t in issueable))
        return picked

    def advance_rounds(self, picked: List[HardwareThread],
                       rounds: int) -> List[HardwareThread]:
        """Replay ``rounds`` uncontended rounds that pick exactly ``picked``.

        Repeats the per-round virtual-time increment with the same
        floating-point operation order as ``rounds`` calls to
        :meth:`select` would use, so fast-forwarded and naive runs stay
        bit-identical. The system-virtual-time update telescopes (the
        per-round minimum is non-decreasing, so only the final round's
        minimum can raise it), and the returned list reproduces the
        *last* round's pick order -- threads with different priorities
        drift apart in virtual time, so the order can change mid-batch.
        """
        vtime = self._vtime
        before_last = {}
        for thread in picked:
            increment = 1.0 / max(thread.priority, 1)
            value = vtime[thread.ptid]
            for _ in range(rounds - 1):
                value += increment
            before_last[thread.ptid] = value
            vtime[thread.ptid] = value + increment
        self._system_vtime = max(self._system_vtime,
                                 min(vtime[t.ptid] for t in picked))
        return sorted(picked, key=lambda t: (before_last[t.ptid], t.ptid))

    def fill_metrics(self, registry, prefix: str) -> None:
        """Snapshot-time harvest (nothing is recorded on the hot path)."""
        registry.set(f"{prefix}.system_vtime", round(self._system_vtime, 6))
        registry.set(f"{prefix}.tracked_threads", len(self._vtime))

    def forget(self, ptid: int) -> None:
        """Drop bookkeeping for a retired ptid."""
        self._vtime.pop(ptid, None)


class WeightedRoundRobinIssue:
    """Credit-based weighted round-robin: sort-free hardware arbitration.

    The hardware-faithful counterpart of :class:`PriorityWeightedIssue`:
    where WFQ re-sorts the pool by float virtual times every round, this
    arbiter walks a ptid-ordered ring with a rotation pointer and an
    integer *credit* (deficit) counter per thread -- exactly the
    register-and-comparator structure an SMT pick stage can implement.
    Each pick consumes one credit; when no unpicked thread holds credit
    the arbiter refills every pooled thread by its weight (the thread's
    ``priority``) and keeps walking. Over any refill period a backlogged
    thread therefore issues exactly ``priority`` picks per frame of
    ``sum(priorities)``: steady-state shares are proportional to weight
    (experiment E18 measures this), and no thread starves -- every frame
    serves everyone at least once.

    A pool of uniform weights bypasses the credit walk and runs RR's
    pointer arithmetic directly, so the pick stream is *identical* to
    :class:`RoundRobinIssue` -- even as threads join and leave -- with
    credits left untouched (E18's second claim; the hypothesis suite
    diffs the streams under churn).
    Re-entry: :meth:`note_enqueue` grants a joining thread a fresh
    weight of credit, matching RR's memorylessness; :meth:`forget`
    (called by the core for disabled ptids -- ``wants_forget``) drops
    its counter.

    Fast-forward contracts: uncontended selects pick the whole pool in
    rotation order without touching credits (no contention means no
    fairness accounting), so ``full_pick_uncontended`` holds and
    :meth:`advance_rounds` is a no-op replay, exactly like RR.
    Contended batching is declined (``rotation_invariant = False``):
    with unequal weights the pick pattern is not rotation-periodic, so
    the planner honestly falls back to per-round stepping there.
    """

    name = "weighted-round-robin"
    rotation_invariant = False
    full_pick_uncontended = True
    #: opt-in: the core calls :meth:`forget` when a ptid is disabled
    wants_forget = True

    def __init__(self) -> None:
        self._next = 0
        self._credit: Dict[int, int] = {}
        self._order = _OrderCache()

    @staticmethod
    def _weight(thread: HardwareThread) -> int:
        return thread.priority if thread.priority > 1 else 1

    def note_enqueue(self, thread: HardwareThread) -> None:
        """A (re)joining ptid gets a fresh frame's worth of credit."""
        self._credit[thread.ptid] = self._weight(thread)

    def forget(self, ptid: int) -> None:
        """Drop the credit counter of a disabled/retired ptid."""
        self._credit.pop(ptid, None)

    def select(self, issueable: List[HardwareThread], width: int) -> List[HardwareThread]:
        if not issueable:
            return []
        ordered = self._order.ordered(issueable)
        n = len(ordered)
        start = self._next % n
        if n <= width:
            # uncontended: everyone issues; weights (and credits) are
            # irrelevant when there is nothing to arbitrate. The pick
            # order rotates like RR; the pointer advances by n = 0 mod n,
            # stored normalized (exactly as RR's arithmetic leaves it, so
            # the streams stay identical when the pool later grows)
            self._next = start
            return [ordered[(start + i) % n] for i in range(n)]
        first_weight = self._weight(ordered[0])
        if all(self._weight(t) == first_weight for t in ordered):
            # uniform weights: there is nothing to weight, so the credit
            # machinery is bypassed entirely and the arbiter IS plain RR
            # (same pointer arithmetic, credits untouched). Credits
            # carry cross-round memory RR does not have -- a thread that
            # spent its credit just before the pool changed would be
            # skipped where RR would pick it -- so pick-for-pick
            # equality under churn requires the bypass, not just a
            # never-skipping walk (the hypothesis suite pins this).
            picked = [ordered[(start + i) % n] for i in range(width)]
            self._next = (start + width) % n
            return picked
        credit = self._credit
        picked: List[HardwareThread] = []
        picked_ids = set()
        position = start
        scanned = 0
        while len(picked) < width:
            thread = ordered[position]
            ptid = thread.ptid
            if ptid not in picked_ids:
                remaining = credit.get(ptid)
                if remaining is None:
                    remaining = self._weight(thread)
                if remaining > 0:
                    credit[ptid] = remaining - 1
                    picked.append(thread)
                    picked_ids.add(ptid)
                    position = (position + 1) % n
                    scanned = 0
                    continue
            position = (position + 1) % n
            scanned += 1
            if scanned >= n:
                # frame boundary: no unpicked thread holds credit.
                # Refill everyone by their weight (deficit carry-over:
                # += keeps long-run shares exact under partial frames).
                for other in ordered:
                    credit[other.ptid] = \
                        credit.get(other.ptid, 0) + self._weight(other)
                scanned = 0
        self._next = position
        return picked

    def advance_rounds(self, picked: List[HardwareThread],
                       rounds: int) -> List[HardwareThread]:
        """Replay ``rounds`` uncontended rounds (see RoundRobinIssue).

        Uncontended selects leave both the pointer and the credit map
        untouched, so the replay is stateless and the last round's pick
        order is ``picked`` itself.
        """
        return picked

    def fill_metrics(self, registry, prefix: str) -> None:
        """Snapshot-time harvest (nothing is recorded on the hot path)."""
        registry.set(f"{prefix}.rotation_next", self._next)
        registry.set(f"{prefix}.tracked_threads", len(self._credit))
        registry.set(f"{prefix}.credit_outstanding",
                     sum(self._credit.values()))
