"""SMT issue policies.

Paper, Section 4 ("Support for Thread Scheduling"): "A simple way to
meet this requirement is to execute runnable hardware threads in a
fine-grain, round-robin (RR) manner, which emulates processor sharing
(PS) ... In addition to RR scheduling, we can introduce hardware support
for thread priorities (e.g., threads used for serving time-sensitive
interrupts receive more cycles)."

A policy picks, each issue round, up to ``width`` threads out of the
currently issueable set. Policies are stateful (rotation pointers,
credit counters) but see only ptids, never programs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hw.ptid import HardwareThread


class RoundRobinIssue:
    """Fine-grain RR: rotate through issueable ptids each round."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def note_enqueue(self, thread: HardwareThread) -> None:
        """A ptid became runnable (wakeup/start). RR has no state to fix."""

    def select(self, issueable: List[HardwareThread], width: int) -> List[HardwareThread]:
        if not issueable:
            return []
        ordered = sorted(issueable, key=lambda t: t.ptid)
        n = len(ordered)
        start = self._next % n
        picked = [ordered[(start + i) % n] for i in range(min(width, n))]
        self._next = (start + len(picked)) % n
        return picked


class PriorityWeightedIssue:
    """Virtual-time weighted fair issue: a priority-p thread gets p shares.

    Each pick advances the thread's virtual time by ``1/priority``; the
    ``width`` lowest-virtual-time threads issue each round. Steady-state
    issue rates are exactly proportional to priority and no backlogged
    thread starves (an unserved thread's virtual time never advances, so
    it is eventually the minimum).

    Re-entry (classic WFQ): a thread that was waiting or disabled keeps
    a stale, tiny virtual time; replaying it verbatim would let *any*
    woken thread monopolize the pipeline until its debt "caught up",
    erasing priority distinctions exactly when they matter (a wakeup
    into a busy core). The core therefore calls :meth:`note_enqueue`
    whenever a ptid becomes runnable, which clamps its virtual time to
    the system virtual time (the minimum among recently served
    threads) -- from that shared origin, a priority-p thread advances
    p-times slower and receives p shares.
    """

    name = "priority-weighted"

    def __init__(self) -> None:
        self._vtime: Dict[int, float] = {}
        self._system_vtime = 0.0

    def note_enqueue(self, thread: HardwareThread) -> None:
        """Clamp a (re)joining ptid to the system virtual time."""
        current = self._vtime.get(thread.ptid, self._system_vtime)
        self._vtime[thread.ptid] = max(current, self._system_vtime)

    def select(self, issueable: List[HardwareThread], width: int) -> List[HardwareThread]:
        if not issueable:
            return []
        for thread in issueable:
            self._vtime.setdefault(thread.ptid, self._system_vtime)
        ordered = sorted(issueable, key=lambda t: (self._vtime[t.ptid], t.ptid))
        picked = ordered[:width]
        for thread in picked:
            self._vtime[thread.ptid] += 1.0 / max(thread.priority, 1)
        self._system_vtime = max(self._system_vtime,
                                 min(self._vtime[t.ptid] for t in issueable))
        return picked

    def forget(self, ptid: int) -> None:
        """Drop bookkeeping for a retired ptid."""
        self._vtime.pop(ptid, None)
