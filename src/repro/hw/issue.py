"""SMT issue policies.

Paper, Section 4 ("Support for Thread Scheduling"): "A simple way to
meet this requirement is to execute runnable hardware threads in a
fine-grain, round-robin (RR) manner, which emulates processor sharing
(PS) ... In addition to RR scheduling, we can introduce hardware support
for thread priorities (e.g., threads used for serving time-sensitive
interrupts receive more cycles)."

A policy picks, each issue round, up to ``width`` threads out of the
currently issueable set. Policies are stateful (rotation pointers,
credit counters) but see only ptids, never programs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hw.ptid import HardwareThread


class RoundRobinIssue:
    """Fine-grain RR: rotate through issueable ptids each round.

    The rotation is periodic, which is what makes the core's busy-cycle
    fast-forward possible: when every issueable thread is picked each
    round (no slot contention), repeating the round leaves the rotation
    pointer unchanged, and under contention any ``n`` consecutive rounds
    over a stable ``n``-thread set pick every thread exactly ``width``
    times and return the pointer to its starting value (``n * width`` is
    a multiple of ``n``). Both facts are relied on by
    :meth:`repro.hw.core.HWCore._plan_fast_forward`.
    """

    name = "round-robin"
    #: consecutive identical rounds permute deterministically -- the core
    #: may batch contended rounds in whole rotations (see module note).
    rotation_invariant = True
    #: with ``n <= width``, :meth:`select` always returns all ``n``
    #: threads -- required before the core may defer the select of an
    #: interruptible (lazy) batch to resume time.
    full_pick_uncontended = True

    def __init__(self) -> None:
        self._next = 0

    def note_enqueue(self, thread: HardwareThread) -> None:
        """A ptid became runnable (wakeup/start). RR has no state to fix."""

    def select(self, issueable: List[HardwareThread], width: int) -> List[HardwareThread]:
        if not issueable:
            return []
        ordered = sorted(issueable, key=lambda t: t.ptid)
        n = len(ordered)
        start = self._next % n
        picked = [ordered[(start + i) % n] for i in range(min(width, n))]
        self._next = (start + len(picked)) % n
        return picked

    def advance_rounds(self, picked: List[HardwareThread],
                       rounds: int) -> List[HardwareThread]:
        """Replay ``rounds`` uncontended rounds that pick exactly ``picked``.

        With every issueable thread picked, :meth:`select` advances the
        rotation pointer by ``n (mod n)`` -- a no-op -- and the pick
        order never changes, so the last round's order is ``picked``.
        """
        return picked

    def fill_metrics(self, registry, prefix: str) -> None:
        """Snapshot-time harvest (nothing is recorded on the hot path)."""
        registry.set(f"{prefix}.rotation_next", self._next)


class PriorityWeightedIssue:
    """Virtual-time weighted fair issue: a priority-p thread gets p shares.

    Each pick advances the thread's virtual time by ``1/priority``; the
    ``width`` lowest-virtual-time threads issue each round. Steady-state
    issue rates are exactly proportional to priority and no backlogged
    thread starves (an unserved thread's virtual time never advances, so
    it is eventually the minimum).

    Re-entry (classic WFQ): a thread that was waiting or disabled keeps
    a stale, tiny virtual time; replaying it verbatim would let *any*
    woken thread monopolize the pipeline until its debt "caught up",
    erasing priority distinctions exactly when they matter (a wakeup
    into a busy core). The core therefore calls :meth:`note_enqueue`
    whenever a ptid becomes runnable, which clamps its virtual time to
    the system virtual time (the minimum among recently served
    threads) -- from that shared origin, a priority-p thread advances
    p-times slower and receives p shares.
    """

    name = "priority-weighted"
    #: with ``n <= width`` the ``width`` lowest-virtual-time threads are
    #: all of them: uncontended selects are total (see RoundRobinIssue).
    full_pick_uncontended = True

    def __init__(self) -> None:
        self._vtime: Dict[int, float] = {}
        self._system_vtime = 0.0

    def note_enqueue(self, thread: HardwareThread) -> None:
        """Clamp a (re)joining ptid to the system virtual time."""
        current = self._vtime.get(thread.ptid, self._system_vtime)
        self._vtime[thread.ptid] = max(current, self._system_vtime)

    def select(self, issueable: List[HardwareThread], width: int) -> List[HardwareThread]:
        if not issueable:
            return []
        for thread in issueable:
            self._vtime.setdefault(thread.ptid, self._system_vtime)
        ordered = sorted(issueable, key=lambda t: (self._vtime[t.ptid], t.ptid))
        picked = ordered[:width]
        for thread in picked:
            self._vtime[thread.ptid] += 1.0 / max(thread.priority, 1)
        self._system_vtime = max(self._system_vtime,
                                 min(self._vtime[t.ptid] for t in issueable))
        return picked

    def advance_rounds(self, picked: List[HardwareThread],
                       rounds: int) -> List[HardwareThread]:
        """Replay ``rounds`` uncontended rounds that pick exactly ``picked``.

        Repeats the per-round virtual-time increment with the same
        floating-point operation order as ``rounds`` calls to
        :meth:`select` would use, so fast-forwarded and naive runs stay
        bit-identical. The system-virtual-time update telescopes (the
        per-round minimum is non-decreasing, so only the final round's
        minimum can raise it), and the returned list reproduces the
        *last* round's pick order -- threads with different priorities
        drift apart in virtual time, so the order can change mid-batch.
        """
        vtime = self._vtime
        before_last = {}
        for thread in picked:
            increment = 1.0 / max(thread.priority, 1)
            value = vtime[thread.ptid]
            for _ in range(rounds - 1):
                value += increment
            before_last[thread.ptid] = value
            vtime[thread.ptid] = value + increment
        self._system_vtime = max(self._system_vtime,
                                 min(vtime[t.ptid] for t in picked))
        return sorted(picked, key=lambda t: (before_last[t.ptid], t.ptid))

    def fill_metrics(self, registry, prefix: str) -> None:
        """Snapshot-time harvest (nothing is recorded on the hot path)."""
        registry.set(f"{prefix}.system_vtime", round(self._system_vtime, 6))
        registry.set(f"{prefix}.tracked_threads", len(self._vtime))

    def forget(self, ptid: int) -> None:
        """Drop bookkeeping for a retired ptid."""
        self._vtime.pop(ptid, None)
