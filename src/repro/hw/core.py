"""The proposed CPU core: many ptids multiplexed onto a few SMT slots.

Execution model
---------------
The core is one simulation process. Each *issue round* it picks up to
``smt_width`` issueable ptids (runnable, not mid-instruction) via the
issue policy, executes one instruction for each, and advances one
cycle. A multi-cycle instruction makes its thread busy until the cost
elapses while other ptids keep issuing -- fine-grain interleaving, the
paper's "emulates processor sharing". When no ptid is runnable the core
blocks on a wake signal (there is no idle loop and no timer tick: the
whole point of the design).

Thread management instructions resolve vtids through the caller's TDT
(its ``tdtr`` register names the memory-resident table) with a
TDT cache that only ``invtid`` invalidates. Supervisor-mode ptids with
``tdtr == 0`` address ptids directly -- the boot convention, before any
table exists.

Exceptions never unwind the simulator: they write a descriptor at the
faulting ptid's ``edp`` and disable it (see :mod:`repro.hw.exceptions`).
A fault in a ptid with ``edp == 0`` is the paper's triple-fault
analogue and halts the core.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.arch.costs import CostModel
from repro.arch.registers import RegisterClass
from repro.errors import ConfigError, GuestFault, IsaError, TripleFault
from repro.hw.exceptions import ExceptionDescriptor, ExceptionKind
from repro.hw.issue import RoundRobinIssue
from repro.hw.keys import KeyRegistry
from repro.hw.monitor import MonitorUnit
from repro.hw.ptid import HardwareThread, PtidState
from repro.hw.storage import ThreadStateStore
from repro.hw.tdt import Permission, TdtCache, TdtEntry
from repro.isa.instructions import Instruction, Label, Reg
from repro.isa.program import Program
from repro.mem.memory import Memory
from repro.sim.process import AnyOf, Signal

#: Register that carries the presented secret key in the key security model.
KEY_REGISTER = "r15"


class HWCore:
    """A physical core with ``num_ptids`` software-managed hardware threads."""

    def __init__(self, engine: Any, memory: Memory, core_id: int = 0,
                 num_ptids: int = 64, smt_width: int = 2,
                 costs: Optional[CostModel] = None,
                 issue_policy: Optional[Any] = None,
                 storage: Optional[ThreadStateStore] = None,
                 security_model: str = "tdt",
                 tracer: Optional[Any] = None,
                 fast_forward: bool = True,
                 predecode: bool = True):
        if num_ptids < 1:
            raise ConfigError(f"core needs at least one ptid, got {num_ptids}")
        if smt_width < 1:
            raise ConfigError(f"smt_width must be >= 1, got {smt_width}")
        if security_model not in ("tdt", "keys"):
            raise ConfigError(f"unknown security model {security_model!r}")
        self.engine = engine
        self.memory = memory
        self.core_id = core_id
        self.smt_width = smt_width
        self.costs = costs or CostModel()
        self.issue_policy = issue_policy or RoundRobinIssue()
        self.storage = storage or ThreadStateStore(self.costs)
        self.security_model = security_model
        self.tracer = tracer
        # observability (attach_obs): all None when uninstrumented, and
        # the issue loop picks an entirely unguarded body in that case
        self.timeline: Optional[Any] = None
        self.profile: Optional[Any] = None
        self.metrics: Optional[Any] = None
        self._wakeup_hist: Optional[Any] = None
        self.tdt_cache = TdtCache(self.costs)
        self.keys = KeyRegistry()
        self.threads: List[HardwareThread] = []
        for ptid in range(num_ptids):
            thread = HardwareThread(ptid, self)
            thread_monitor = MonitorUnit(memory.watch_bus, owner=(core_id, ptid))
            thread_monitor.on_wakeup = self._make_wakeup(thread)
            thread.monitor = thread_monitor  # type: ignore[attr-defined]
            self.threads.append(thread)
            self.storage.register(ptid)
        # REPRO_NO_FASTFORWARD=1 forces naive cycle stepping everywhere
        # (the reference mode the equivalence tests diff against)
        self.fast_forward_enabled = (
            bool(fast_forward)
            and os.environ.get("REPRO_NO_FASTFORWARD", "") not in ("1", "true", "yes")
        )
        # REPRO_NO_PREDECODE=1 forces the naive interpreter everywhere
        # (the reference mode the decode-identity gates diff against).
        # An enabled tracer also falls back to naive interpretation:
        # the decoded fast path skips the per-instruction trace emit.
        self.predecode_enabled = (
            bool(predecode)
            and os.environ.get("REPRO_NO_PREDECODE", "") not in ("1", "true", "yes")
            and not getattr(tracer, "enabled", False)
        )
        #: ptid-ordered runnable threads, rebuilt lazily after any state
        #: transition (see HardwareThread._note_transition)
        self._runnable_cache: Optional[List[HardwareThread]] = None
        self.halted = False
        self.halt_reason: Optional[str] = None
        self._wake = Signal(f"core{core_id}-wake")
        self.issue_rounds = 0
        self.instructions_retired = 0
        self.idle_cycles = 0
        self.process = engine.spawn(self._run(), name=f"core{core_id}")
        # The issue loop's own per-cycle resumes go to the engine's step
        # lane so they never show up in next_foreign_event_time(): one
        # core grinding through `yield 1` rounds must not cap every
        # other core's fast-forward horizon at a single cycle.
        self.process.step_ints = True

    # ==================================================================
    # public API (used by Machine, kernels, and tests)
    # ==================================================================
    def thread(self, ptid: int) -> HardwareThread:
        if not 0 <= ptid < len(self.threads):
            raise ConfigError(f"ptid {ptid} out of range on core {self.core_id}")
        return self.threads[ptid]

    def load_program(self, ptid: int, program: Program, pc: int = 0,
                     supervisor: Optional[bool] = None,
                     edp: Optional[int] = None,
                     tdtr: Optional[int] = None) -> HardwareThread:
        """Bind a program to a ptid (setup-time; no cycle cost)."""
        thread = self.thread(ptid)
        thread.program = program
        thread.finished = False
        thread.arch.pc = pc
        thread._fused = None
        thread._decoded = program.decoded(HWCore._DISPATCH) \
            if self.predecode_enabled else None
        if supervisor is not None:
            thread.arch.priv = 1 if supervisor else 0
        if edp is not None:
            thread.arch.edp = edp
        if tdtr is not None:
            thread.arch.tdtr = tdtr
        return thread

    def boot(self, ptid: int) -> None:
        """Make a ptid runnable at setup time, free of charge."""
        thread = self.thread(ptid)
        thread.finished = False
        thread.make_runnable()
        self._note_enqueue(thread)
        self._wake.fire()

    def api_start(self, ptid: int, charge: bool = True) -> int:
        """Software-visible start from outside guest code (device driver
        or behavioral kernel). Returns the modeled start latency."""
        thread = self.thread(ptid)
        latency = 0
        if thread.state is PtidState.DISABLED:
            if charge:
                latency = self.storage.start_latency(ptid, self._idle_ptids())
                thread.busy_until = max(thread.busy_until,
                                        self.engine.now + latency)
            thread.finished = False
            thread.make_runnable(reason="restart")
            thread.starts += 1
            self._note_enqueue(thread)
            self._wake.fire()
        return latency

    def api_stop(self, ptid: int) -> None:
        thread = self.thread(ptid)
        self._materialize_fused(thread)
        thread.monitor.cancel()
        thread.make_disabled()
        thread.stops += 1
        self._note_forget(thread)
        # a stop shrinks the issueable pool: interrupt any in-flight
        # fast-forward batch so the loop re-plans against the new set
        self._wake.fire()

    def set_priority(self, ptid: int, priority: int) -> None:
        if priority < 1:
            raise ConfigError(f"priority must be >= 1, got {priority}")
        self.thread(ptid).priority = priority
        # priorities feed the issue order; re-plan any in-flight batch
        self._wake.fire()

    def runnable_count(self) -> int:
        return sum(1 for t in self.threads if t.runnable)

    def idle(self) -> bool:
        return self.runnable_count() == 0

    def check(self) -> None:
        """Raise if the core triple-faulted (call after a run)."""
        if self.halted:
            raise TripleFault(self.halt_reason or "core halted")

    def attach_obs(self, obs: Any) -> None:
        """Wire a :class:`repro.obs.MachineObs` bundle into this core.

        Must happen before the engine first dispatches the issue loop
        (``Machine.__init__`` does; the loop body picks its
        instrumented/plain variant on first resume).
        """
        self.timeline = obs.timeline
        self.profile = obs.profiler.core(self.core_id)
        self.metrics = obs.registry
        self._wakeup_hist = obs.registry.histogram(
            f"core{self.core_id}.wakeup_latency_cycles")
        self.storage.attach_obs(obs.timeline, self.core_id, self.engine)

    # ==================================================================
    # the issue loop
    # ==================================================================
    def _run(self):
        # One-time fork, evaluated at the first engine dispatch (after
        # Machine.__init__ has had its chance to attach_obs): the plain
        # body is byte-for-byte the uninstrumented loop, so disabled
        # instrumentation costs not even a branch per round.
        if self.profile is None:
            yield from self._run_plain()
        else:
            yield from self._run_instrumented()

    def _run_plain(self):
        engine = self.engine
        threads = self.threads
        RUNNABLE = PtidState.RUNNABLE
        # per-core constants and bound methods, hoisted out of the
        # per-round body (this loop resumes once per simulated cycle)
        ff_enabled = self.fast_forward_enabled
        width = self.smt_width
        select = self.issue_policy.select
        issue_one = self._issue_one
        wake = self._wake
        while not self.halted:
            # ptid-ordered by construction (threads is ptid-ordered);
            # any state transition clears the cache
            runnable = self._runnable_cache
            if runnable is None:
                runnable = [t for t in threads if t.state is RUNNABLE]
                self._runnable_cache = runnable
            if not runnable:
                idle_from = engine.now
                yield wake
                self.idle_cycles += engine.now - idle_from
                continue
            now = engine._now
            issueable = [t for t in runnable if t.busy_until <= now]
            if not issueable:
                next_free = min(t.busy_until for t in runnable)
                yield next_free - now
                continue
            if ff_enabled:
                plan = self._plan_fast_forward(runnable, issueable, now)
                if plan is not None:
                    cycles, lazy, contended = plan
                    if not lazy:
                        done = self._apply_fast_forward(
                            issueable, cycles, contended, now)
                        yield done
                        continue
                    # interruptible batch: a step event (another core's
                    # resume) falls inside the window, so park until the
                    # timeout or a wake and account whatever elapsed
                    yield AnyOf((cycles, wake))
                    elapsed = engine.now - now
                    if elapsed:
                        self._apply_fast_forward(
                            issueable, elapsed, contended, now)
                    continue
            picked = select(issueable, width)
            self.issue_rounds += 1
            for thread in picked:
                issue_one(thread)
            # merged stall: when every still-runnable thread is busy past
            # now+1, resuming at now+1 would only rediscover the stall
            # and park again until the earliest busy_until -- skip the
            # intermediate resume and sleep there directly. (State
            # changes from outside land at their own simulation times
            # either way; the skipped resume had no side effects.)
            runnable = self._runnable_cache
            if runnable:
                next_free = min(t.busy_until for t in runnable)
                delta = next_free - now
                yield delta if delta > 1 else 1
            else:
                yield 1

    def _run_instrumented(self):
        # Mirror of _run_plain with profiler attribution: a pend() is
        # declared before every yield and settled on resume, so every
        # cycle the loop lives through lands in exactly one bucket and
        # the per-core buckets sum to engine.now (obs/profile.py).
        engine = self.engine
        threads = self.threads
        profile = self.profile
        RUNNABLE = PtidState.RUNNABLE
        WAITING = PtidState.WAITING
        while not self.halted:
            runnable = self._runnable_cache
            if runnable is None:
                runnable = [t for t in threads if t.state is RUNNABLE]
                self._runnable_cache = runnable
            if not runnable:
                idle_from = engine.now
                # a wait with parked threads is the paper's mwait block;
                # with none it is true idle (nothing loaded/all stopped)
                if any(t.state is WAITING for t in threads):
                    profile.pend("mwait", idle_from)
                else:
                    profile.pend("idle", idle_from)
                yield self._wake
                profile.settle(engine.now)
                self.idle_cycles += engine.now - idle_from
                continue
            now = engine.now
            issueable = [t for t in runnable if t.busy_until <= now]
            if not issueable:
                next_free = min(t.busy_until for t in runnable)
                profile.pend("stall", now)
                yield next_free - now
                profile.settle(engine.now)
                continue
            if self.fast_forward_enabled:
                plan = self._plan_fast_forward(runnable, issueable, now)
                if plan is not None:
                    cycles, lazy, contended = plan
                    if not lazy:
                        done = self._apply_fast_forward(
                            issueable, cycles, contended, now)
                        profile.pend("fastforward", now)
                        yield done
                        profile.settle(engine.now)
                        continue
                    profile.pend("fastforward", now)
                    yield AnyOf((cycles, self._wake))
                    profile.settle(engine.now)
                    elapsed = engine.now - now
                    if elapsed:
                        self._apply_fast_forward(
                            issueable, elapsed, contended, now)
                    continue
            picked = self.issue_policy.select(issueable, self.smt_width)
            self.issue_rounds += 1
            # Attribution must be a pure function of simulation state,
            # never of whether a batch plan happened to fire (the plan
            # horizon reads the host engine's foreign-event queue, which
            # differs between a single-engine and a sharded run): a
            # round where every issueable thread is mid-`work` -- the
            # exact trigger condition of _plan_fast_forward -- is a
            # work-burn ("fastforward") cycle whether it was batched or
            # stepped. Evaluate before issuing, which decrements.
            burn = True
            for thread in issueable:
                if thread.work_remaining <= 0:
                    burn = False
                    break
            for thread in picked:
                self._issue_one(thread)
            profile.pend("fastforward" if burn else "issue", now)
            yield 1
            profile.settle(engine.now)

    def _plan_fast_forward(self, thread_list, issueable, now: int):
        """Plan a busy-cycle batch that cannot change anything mid-way.

        When every issueable thread is mid-``work``, each upcoming round
        only decrements counters -- no instruction fetch, no memory
        traffic, no traces. The issue pattern is then frozen until (a) a
        burst ends, (b) a busy/starting thread re-joins the pool, (c) a
        foreign engine event fires (anything that can wake or stop a
        thread is a main-queue event), or (d) the ``run(until=...)``
        horizon, past which our catch-up resume would never be
        dispatched. Other cores' per-cycle resumes live in the engine's
        step lane and do *not* bound the batch; instead, if any step
        event falls inside the window the batch is *interruptible*
        (``lazy``): the caller parks on ``AnyOf([cycles, self._wake])``
        and the accounting is applied at resume time for however many
        rounds actually elapsed. Every path that mutates this core's
        thread pool from outside fires ``self._wake``, so a lazy batch
        can never sleep through a state change.

        Returns ``(cycles, lazy, contended)`` or ``None`` when no safe
        batch exists and the round must issue naively.
        """
        min_work = None
        for t in issueable:
            w = t.work_remaining
            if w <= 0:
                return None
            if min_work is None or w < min_work:
                min_work = w
        horizon = min_work
        for t in thread_list:
            b = t.busy_until
            if b > now and b - now < horizon:
                horizon = b - now
        engine = self.engine
        nxt = engine.next_foreign_event_time()
        if nxt is not None and nxt - now < horizon:
            horizon = nxt - now
        until = engine.run_until
        if until is not None and until - now < horizon:
            horizon = until - now
        n = len(issueable)
        width = self.smt_width
        policy = self.issue_policy
        if n <= width:
            # no slot contention: every thread burns one cycle per round
            if horizon < 2:
                return None
            if getattr(policy, "advance_rounds", None) is None:
                return None
            cycles = horizon
            contended = False
        else:
            # contention: only a rotation-invariant policy (round-robin)
            # is provably periodic -- any n consecutive rounds over a
            # stable n-thread set pick every thread exactly `width` times
            if not getattr(policy, "rotation_invariant", False):
                return None
            blocks = min(min_work // width, horizon // n)
            cycles = blocks * n
            if cycles < 2:
                return None
            contended = True
        step = engine._next_step_time()
        lazy = step is not None and step < now + cycles
        if lazy and not contended and not getattr(
                policy, "full_pick_uncontended", False):
            # a lazy batch defers select() to resume time, which is only
            # sound when the policy picks the whole uncontended set
            return None
        return cycles, lazy, contended

    def _apply_fast_forward(self, issueable, rounds: int, contended: bool,
                            now: int) -> int:
        """Account ``rounds`` issue rounds of a planned batch.

        Replays the exact per-round bookkeeping (``cycles_busy``,
        ``issue_rounds``, storage recency order, policy state) naive
        stepping would have produced over cycles ``now .. now+rounds``,
        so a fast-forwarded run is indistinguishable from naive stepping
        except for ``events_processed``. For a lazy batch ``rounds`` may
        be any prefix of the planned cycles (the wake interrupted the
        wait). Returns the cycles consumed (the eager caller yields it).
        """
        policy = self.issue_policy
        n = len(issueable)
        touch = self.storage.touch
        if not contended:
            picked = policy.select(issueable, self.smt_width)
            if len(picked) != n:
                # an opted-in policy left slots empty; the select already
                # charged its state, so finish this one round naively
                # (unreachable from the lazy path, which requires
                # full_pick_uncontended)
                self.issue_rounds += 1
                for thread in picked:
                    self._issue_one(thread)
                return 1
            order = policy.advance_rounds(picked, rounds - 1) \
                if rounds >= 2 else picked
            end = now + rounds
            for t in picked:
                t.work_remaining -= rounds
                t.cycles_busy += rounds
                t.busy_until = end
            for t in order:
                touch(t.ptid)
            self.issue_rounds += rounds
            return rounds
        # contended round robin: replay the pick stream arithmetically.
        # Over `rounds` rounds the policy picks `rounds * width`
        # consecutive rotation positions starting at `_next`; thread j
        # (in ptid order) is picked once per full wrap plus once more if
        # its position falls inside the remainder.
        width = self.smt_width
        total = rounds * width
        base, rem = divmod(total, n)
        ordered = sorted(issueable, key=lambda t: t.ptid)
        start = policy._next % n
        end = now + rounds
        for j, t in enumerate(ordered):
            cnt = base + (1 if (j - start) % n < rem else 0)
            if cnt:
                t.work_remaining -= cnt
                t.cycles_busy += cnt
                t.busy_until = end
        # replay the storage-recency stream of the final picks: the last
        # min(total, n) picks cover distinct threads, so their order is
        # all LRU ever sees
        for k in range(max(0, total - n), total):
            touch(ordered[(start + k) % n].ptid)
        policy._next = (start + total) % n
        self.issue_rounds += rounds
        return rounds

    def _issue_one(self, thread: HardwareThread) -> None:
        if thread.work_remaining > 0:
            # mid-`work`: burn one issue-slot cycle (true processor
            # sharing -- two work-heavy threads on one slot take 2x)
            thread.work_remaining -= 1
            thread.busy_until = self.engine.now + 1
            thread.cycles_busy += 1
            self.storage.touch(thread.ptid)
            return
        decoded = thread._decoded
        if decoded is not None:
            # pre-decoded dispatch (repro.isa.decode): no fetch/raise,
            # no dict probe, no isinstance, no per-issue f-string. The
            # sentinel slot at pc == len (and the bounds check for wild
            # jumps) reproduces the implicit halt.
            pc = thread.arch.pc
            handler = decoded.handlers[pc] if 0 <= pc < decoded.size \
                else None
            if handler is None:
                self._halt_thread(thread)
                return
            now = self.engine.now
            try:
                cost = handler(self, thread)
            except GuestFault as fault:
                self._raise_exception(
                    thread, ExceptionKind.from_guest_fault_kind(fault.kind),
                    address=fault.faulting_address)
                cost = handler.latency
            thread.busy_until = now + cost
            thread.last_issue_time = now
            thread.instructions_executed += 1
            thread.cycles_busy += cost
            self.instructions_retired += 1
            self.storage.touch(thread.ptid)
            return
        if thread.program is None:
            self._halt_thread(thread)
            return
        try:
            instruction = thread.program.fetch(thread.arch.pc)
        except IsaError:
            # running off the end of the program is an implicit halt
            self._halt_thread(thread)
            return
        thread.arch.pc += 1
        cost = max(self._execute(thread, instruction), 1)
        thread.busy_until = self.engine.now + cost
        thread.last_issue_time = self.engine.now
        thread.instructions_executed += 1
        thread.cycles_busy += cost
        self.instructions_retired += 1
        self.storage.touch(thread.ptid)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("issue", f"core{self.core_id} ptid{thread.ptid}"
                        f" {instruction}", cost=cost)

    # ==================================================================
    # instruction semantics
    # ==================================================================
    def _execute(self, thread: HardwareThread, instruction: Instruction) -> int:
        handler = self._DISPATCH.get(instruction.op)
        if handler is None:  # pragma: no cover - OPS and dispatch are in sync
            self._raise_exception(thread, ExceptionKind.ILLEGAL_INSTRUCTION)
            return instruction.spec.latency
        try:
            extra = handler(self, thread, instruction.operands)
        except GuestFault as fault:
            self._raise_exception(
                thread, ExceptionKind.from_guest_fault_kind(fault.kind),
                address=fault.faulting_address)
            return instruction.spec.latency
        return instruction.spec.latency + (extra or 0)

    # --- operand helpers ------------------------------------------------
    @staticmethod
    def _reg(thread: HardwareThread, operand: Reg) -> int:
        return thread.arch.read(operand.name)

    @staticmethod
    def _value(thread: HardwareThread, operand) -> int:
        """Value of an R-or-I operand."""
        if isinstance(operand, Reg):
            return thread.arch.read(operand.name)
        return operand.value

    @staticmethod
    def _target(thread: HardwareThread, operand) -> int:
        """Branch target: label resolved through the thread's program."""
        if isinstance(operand, Label):
            return thread.program.resolve(operand.name)
        return operand.value

    # --- base ALU ---------------------------------------------------------
    def _op_nop(self, thread, ops):
        return 0

    def _op_movi(self, thread, ops):
        thread.arch.write(ops[0].name, ops[1].value)
        return 0

    def _op_mov(self, thread, ops):
        thread.arch.write(ops[0].name, self._reg(thread, ops[1]))
        return 0

    def _binop(self, thread, ops, fn) -> int:
        thread.arch.write(ops[0].name,
                          fn(self._reg(thread, ops[1]), self._reg(thread, ops[2])))
        return 0

    def _op_add(self, thread, ops):
        return self._binop(thread, ops, lambda a, b: a + b)

    def _op_sub(self, thread, ops):
        return self._binop(thread, ops, lambda a, b: a - b)

    def _op_mul(self, thread, ops):
        return self._binop(thread, ops, lambda a, b: a * b)

    def _op_div(self, thread, ops):
        divisor = self._reg(thread, ops[2])
        if divisor == 0:
            self._raise_exception(thread, ExceptionKind.DIV_ZERO)
            return 0
        return self._binop(thread, ops, lambda a, b: a // b)

    def _op_and_(self, thread, ops):
        return self._binop(thread, ops, lambda a, b: a & b)

    def _op_or_(self, thread, ops):
        return self._binop(thread, ops, lambda a, b: a | b)

    def _op_xor(self, thread, ops):
        return self._binop(thread, ops, lambda a, b: a ^ b)

    def _op_addi(self, thread, ops):
        thread.arch.write(ops[0].name, self._reg(thread, ops[1]) + ops[2].value)
        return 0

    def _op_shl(self, thread, ops):
        thread.arch.write(ops[0].name, self._reg(thread, ops[1]) << ops[2].value)
        return 0

    def _op_shr(self, thread, ops):
        thread.arch.write(ops[0].name, self._reg(thread, ops[1]) >> ops[2].value)
        return 0

    # --- memory -----------------------------------------------------------
    def _op_ld(self, thread, ops):
        addr = self._reg(thread, ops[1]) + ops[2].value
        thread.arch.write(ops[0].name, self.memory.load(addr))
        return self.costs.l1_hit_cycles

    def _op_st(self, thread, ops):
        addr = self._reg(thread, ops[0]) + ops[1].value
        self.memory.store(addr, self._reg(thread, ops[2]),
                          source=thread.mem_source)
        coherence = self.memory.watch_bus.coherence
        if coherence is not None:
            # writer-side directory charge: invalidating the sharers of
            # a watched line is not free (0 for untracked lines)
            return self.costs.l1_hit_cycles + coherence.last_write_cycles
        return self.costs.l1_hit_cycles

    def _op_faa(self, thread, ops):
        addr = self._reg(thread, ops[1])
        new = self.memory.fetch_add(
            addr, ops[2].value, source=thread.mem_source)
        thread.arch.write(ops[0].name, new)
        coherence = self.memory.watch_bus.coherence
        if coherence is not None:
            return self.costs.l1_hit_cycles + coherence.last_write_cycles
        return self.costs.l1_hit_cycles

    # --- control flow -------------------------------------------------------
    def _op_jmp(self, thread, ops):
        thread.arch.pc = self._target(thread, ops[0])
        return 0

    def _branch(self, thread, ops, cond) -> int:
        if cond(self._reg(thread, ops[0]), self._reg(thread, ops[1])):
            thread.arch.pc = self._target(thread, ops[2])
        return 0

    def _op_beq(self, thread, ops):
        return self._branch(thread, ops, lambda a, b: a == b)

    def _op_bne(self, thread, ops):
        return self._branch(thread, ops, lambda a, b: a != b)

    def _op_blt(self, thread, ops):
        return self._branch(thread, ops, lambda a, b: a < b)

    def _op_bge(self, thread, ops):
        return self._branch(thread, ops, lambda a, b: a >= b)

    def _op_jal(self, thread, ops):
        thread.arch.write(ops[0].name, thread.arch.pc)  # already advanced
        thread.arch.pc = self._target(thread, ops[1])
        return 0

    def _op_jr(self, thread, ops):
        thread.arch.pc = self._reg(thread, ops[0])
        return 0

    def _op_halt(self, thread, ops):
        self._halt_thread(thread)
        return 0

    # --- modeling pseudo-ops ---------------------------------------------
    def _op_work(self, thread, ops):
        # the first cycle issues now; the remainder occupy the thread's
        # issue slot on subsequent rounds (see _issue_one). Re-arming
        # work_remaining retires any stale fused-run undo record: from
        # here on a positive count means `work`, not a fused run.
        thread.work_remaining = max(ops[0].value - 1, 0)
        thread._fused = None
        return 0

    def _op_fwork(self, thread, ops):
        thread.arch.vector_dirty = True
        thread.work_remaining = max(ops[0].value - 1, 0)
        thread._fused = None
        return 0

    def _op_vmovi(self, thread, ops):
        thread.arch.write(ops[0].name, ops[1].value)
        return 0

    def _op_vadd(self, thread, ops):
        return self._binop(thread, ops, lambda a, b: a + b)

    # --- monitor / mwait ---------------------------------------------------
    def _op_monitor(self, thread, ops):
        # the return is the directory arm cost: joining the line's
        # sharer set (0 on the flat bus, the default)
        return thread.monitor.arm(self._reg(thread, ops[0]))

    def _op_mwait(self, thread, ops):
        if thread.monitor.wait():
            thread.make_waiting()
        return 0

    # --- thread management -------------------------------------------------
    def _op_start(self, thread, ops):
        target, extra = self._authorize(thread, ops[0], Permission.START)
        if target.state is PtidState.DISABLED:
            # the started thread cannot issue until its state is refilled
            # (pipeline depth for RF-resident contexts, bulk transfer
            # from L2/L3 otherwise); the *caller* keeps running
            latency = self.storage.start_latency(target.ptid, self._idle_ptids())
            target.busy_until = max(target.busy_until, self.engine.now + latency)
            target.finished = False
            target.make_runnable(reason="restart")
            target.starts += 1
            self._note_enqueue(target)
            self._wake.fire()
        return extra

    def _op_stop(self, thread, ops):
        target, extra = self._authorize(thread, ops[0], Permission.STOP)
        self._materialize_fused(target)
        # stopping a waiting ptid retires its directory sharer entries
        # (0 on the flat bus)
        disarm = target.monitor.cancel()
        target.make_disabled()
        target.stops += 1
        self._note_forget(target)
        return extra + self.costs.hw_stop_cycles + disarm

    def _op_rpull(self, thread, ops):
        target, extra = self._authorize_register(
            thread, ops[0], ops[2].name, write=False)
        if target.state is not PtidState.DISABLED:
            raise GuestFault("thread-state-fault",
                             f"rpull target ptid {target.ptid} not disabled")
        thread.arch.write(ops[1].name, target.arch.read(ops[2].name))
        return extra + self.costs.rpull_rpush_cycles

    def _op_rpush(self, thread, ops):
        target, extra = self._authorize_register(
            thread, ops[0], ops[1].name, write=True)
        if target.state is not PtidState.DISABLED:
            raise GuestFault("thread-state-fault",
                             f"rpush target ptid {target.ptid} not disabled")
        target.arch.write(ops[1].name, self._reg(thread, ops[2]))
        return extra + self.costs.rpull_rpush_cycles

    def _op_invtid(self, thread, ops):
        target, extra = self._resolve(thread, self._value(thread, ops[0]))
        remote_vtid = self._value(thread, ops[1])
        self.tdt_cache.invalidate(target.arch.tdtr, remote_vtid)
        return extra

    # --- exceptions & security ---------------------------------------------
    def _op_trap(self, thread, ops):
        self._raise_exception(thread, ExceptionKind.SYSCALL,
                              address=ops[0].value)
        return 0

    def _op_privop(self, thread, ops):
        if not thread.supervisor:
            self._raise_exception(thread, ExceptionKind.PRIVILEGE_FAULT,
                                  address=ops[0].value)
        return 0

    def _op_csrr(self, thread, ops):
        name = ops[1].name
        if (thread.arch.register_class(name) is RegisterClass.PRIVILEGED
                and not thread.supervisor):
            self._raise_exception(thread, ExceptionKind.PRIVILEGE_FAULT)
            return 0
        thread.arch.write(ops[0].name, thread.arch.read(name))
        return 0

    def _op_csrw(self, thread, ops):
        name = ops[0].name
        if (thread.arch.register_class(name) is RegisterClass.PRIVILEGED
                and not thread.supervisor):
            self._raise_exception(thread, ExceptionKind.PRIVILEGE_FAULT)
            return 0
        thread.arch.write(name, self._reg(thread, ops[1]))
        return 0

    def _op_setkey(self, thread, ops):
        self.keys.set_key(thread.ptid, self._reg(thread, ops[0]))
        return 0

    _DISPATCH: Dict[str, Callable] = {}

    # ==================================================================
    # vtid resolution and permission checks
    # ==================================================================
    def _resolve(self, thread: HardwareThread,
                 vtid: int) -> Tuple[HardwareThread, int]:
        """vtid -> hardware thread, via the caller's TDT (or the boot
        direct map for supervisors with no TDT). Returns (thread, cycles)."""
        base = thread.arch.tdtr
        if base == 0:
            if thread.supervisor:
                if not 0 <= vtid < len(self.threads):
                    raise GuestFault("permission-fault",
                                     f"direct ptid {vtid} out of range")
                return self.threads[vtid], 0
            raise GuestFault("permission-fault",
                             f"ptid {thread.ptid} has no TDT")
        entry, cycles = self.tdt_cache.lookup(self.memory, base, vtid)
        if (not entry.valid and not thread.supervisor
                and self.security_model == "tdt"):
            # Table 1: the all-zero-permission row is "(invalid)".
            # Supervisors bypass permission bits, so for them the ptid
            # mapping alone suffices. Under the secret-key model the
            # table is a pure vtid->ptid map; authority comes from the
            # presented key, checked by the caller.
            raise GuestFault("permission-fault", f"vtid {vtid} invalid in TDT")
        if not 0 <= entry.ptid < len(self.threads):
            raise GuestFault("permission-fault",
                             f"TDT maps vtid {vtid} to bad ptid {entry.ptid}")
        target = self.threads[entry.ptid]
        target._tdt_entry_cache = entry  # type: ignore[attr-defined]
        return target, cycles

    def _authorize(self, thread: HardwareThread, operand,
                   needed: Permission) -> Tuple[HardwareThread, int]:
        """Resolve a vtid operand and check start/stop permission."""
        vtid = self._value(thread, operand)
        target, cycles = self._resolve(thread, vtid)
        if thread.supervisor:
            return target, cycles
        if self.security_model == "keys":
            presented = thread.arch.read(KEY_REGISTER)
            self.keys.authorize(target.ptid, presented, supervisor=False)
            return target, cycles
        entry: TdtEntry = target._tdt_entry_cache  # set by _resolve
        if not entry.allows(needed):
            raise GuestFault("permission-fault",
                             f"vtid {vtid}: permission {needed!r} denied")
        return target, cycles

    def _authorize_register(self, thread: HardwareThread, operand,
                            reg_name: str, write: bool) -> Tuple[HardwareThread, int]:
        """Resolve a vtid operand and check register-access permission."""
        vtid = self._value(thread, operand)
        target, cycles = self._resolve(thread, vtid)
        reg_class = target.arch.register_class(reg_name)
        if thread.supervisor:
            return target, cycles
        if reg_class is RegisterClass.PRIVILEGED:
            raise GuestFault("permission-fault",
                             f"register {reg_name} is supervisor-only")
        if self.security_model == "keys":
            presented = thread.arch.read(KEY_REGISTER)
            self.keys.authorize(target.ptid, presented, supervisor=False)
            return target, cycles
        entry: TdtEntry = target._tdt_entry_cache
        if not entry.allows_register(reg_class, write=write):
            raise GuestFault("permission-fault",
                             f"vtid {vtid}: register {reg_name} access denied")
        return target, cycles

    # ==================================================================
    # exceptions, halts, wakeups
    # ==================================================================
    def _raise_exception(self, thread: HardwareThread, kind: ExceptionKind,
                         address: int = 0) -> None:
        thread.exceptions_raised += 1
        faulting_pc = thread.arch.pc - 1  # pc already advanced past the instr
        edp = thread.arch.edp
        if edp == 0:
            self._triple_fault(thread, kind)
            return
        descriptor = ExceptionDescriptor.build(
            kind, thread.ptid, faulting_pc, address, self.engine.now)
        descriptor.write(self.memory, edp)
        thread.monitor.cancel()
        thread.make_disabled()
        self._note_forget(thread)
        if self.tracer is not None:
            self.tracer.emit("exception", f"ptid{thread.ptid} {kind.name}",
                             pc=faulting_pc, address=address)

    def _triple_fault(self, thread: HardwareThread, kind: ExceptionKind) -> None:
        """Paper: an exception in a thread with no handler 'indicates a
        serious kernel bug akin to a triple-fault, and can be handled by
        halting or resetting the CPU'."""
        self.halted = True
        self.halt_reason = (f"triple fault: ptid {thread.ptid} raised "
                            f"{kind.name} with no exception handler (edp=0)")
        # freeze every thread at the state naive stepping would show
        for other in self.threads:
            self._materialize_fused(other)
        thread.make_disabled()
        self._wake.fire()

    def _halt_thread(self, thread: HardwareThread) -> None:
        thread.finished = True
        thread.monitor.cancel()
        thread.make_disabled()
        self._note_forget(thread)

    def _materialize_fused(self, thread: HardwareThread) -> None:
        """Rewind an interrupted fused superinstruction (cold path).

        A fused run executes all its register effects on the first pick
        and burns the remaining cycles through ``work_remaining``; an
        external stop (or a core halt) can land mid-burn, where naive
        stepping would only have executed a prefix. Restore the undo
        snapshot, replay the completed prefix, park the pc on the first
        unexecuted instruction, and roll back the pre-credited
        retirement counters -- after this the thread is byte-identical
        to its naive twin.
        """
        fused = thread._fused
        if fused is None:
            return
        thread._fused = None
        if thread.work_remaining <= 0:
            return   # the run had already completed; record was stale
        completed = fused.length - thread.work_remaining
        gprs = thread.arch.gprs
        for index, value in fused.undo:
            gprs[index] = value
        for effect in fused.effects[:completed]:
            effect(gprs)
        thread.arch.pc = fused.start_pc + completed
        rollback = fused.length - completed
        thread.instructions_executed -= rollback
        self.instructions_retired -= rollback
        thread.work_remaining = 0

    def _note_enqueue(self, thread: HardwareThread) -> None:
        note = getattr(self.issue_policy, "note_enqueue", None)
        if note is not None:
            note(thread)

    def _note_forget(self, thread: HardwareThread) -> None:
        # only policies that opt in (the WRR arbiter) see retirements;
        # calling PriorityWeightedIssue.forget here would erase the
        # virtual-time debt its re-entry clamp depends on
        policy = self.issue_policy
        if getattr(policy, "wants_forget", False):
            policy.forget(thread.ptid)

    def _idle_ptids(self) -> List[int]:
        """Contexts safe to demote from the register file."""
        return [t.ptid for t in self.threads if not t.runnable]

    def _make_wakeup(self, thread: HardwareThread):
        def wakeup(_info: dict) -> None:
            if thread.state is PtidState.WAITING:
                thread.make_runnable()
                thread.wakeups += 1
                self._note_enqueue(thread)
                latency = self.storage.start_latency(
                    thread.ptid, self._idle_ptids())
                wake_cost = self.costs.monitor_wakeup_cycles + latency
                thread.busy_until = max(thread.busy_until,
                                        self.engine.now + wake_cost)
                thread.monitor.consume_wakeup()
                if self._wakeup_hist is not None:
                    # notification-to-issueable latency: the monitor
                    # wakeup plus the storage-tier start cost
                    self._wakeup_hist.record(wake_cost)
                self._wake.fire()
            # else: the pending flag makes the next mwait fall through
        return wakeup


# Build the dispatch table once, from the _op_* methods.
HWCore._DISPATCH = {
    name[4:]: getattr(HWCore, name)
    for name in dir(HWCore) if name.startswith("_op_")
}
