"""The Thread Descriptor Table (TDT).

Paper, Section 3.2: "One particularly important privileged register is
the thread descriptor table pointer, or TDT, which maps vtids to ptids
and permissions. ... The 4 permission bits allow the caller to start -
stop - modify some registers - modify most registers of the callee."

The table is memory-resident (two words per entry: ptid, permissions)
and cores cache translations; "Any update to a ptid's TDT must be
followed by an invtid. Requiring explicit invalidation facilitates
hardware caching and virtualization" -- so a stale cache after an
un-invalidated update is *correct* modeled behavior, and tested.

Permission semantics for register modification (our concretization of
"some" vs "most"):

- ``MODIFY_SOME``: general-purpose and vector registers.
- ``MODIFY_MOST``: additionally pc, flags, and edp.
- ``tdtr`` and ``priv`` are never grantable through the TDT; they
  require supervisor mode, matching the paper's "A ptid must be in
  supervisor mode to set this register".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.registers import RegisterClass
from repro.errors import PermissionFault
from repro.mem.memory import WORD_BYTES, Memory

#: Words per TDT entry: [ptid, permissions]
ENTRY_WORDS = 2


class Permission(enum.IntFlag):
    """The 4 permission bits of a TDT entry (Table 1 ordering).

    Table 1's caption reads "start - stop - modify some registers -
    modify most registers", so in ``0b1000`` the leading bit is START.
    """

    NONE = 0b0000
    MODIFY_MOST = 0b0001
    MODIFY_SOME = 0b0010
    STOP = 0b0100
    START = 0b1000
    ALL = 0b1111


@dataclass(frozen=True)
class TdtEntry:
    """One decoded TDT entry."""

    vtid: int
    ptid: int
    permissions: Permission

    @property
    def valid(self) -> bool:
        """Table 1 marks the all-zero-permission row "(invalid)"."""
        return self.permissions != Permission.NONE

    def allows(self, permission: Permission) -> bool:
        return bool(self.permissions & permission)

    def allows_register(self, reg_class: RegisterClass, write: bool = True) -> bool:
        """May the caller access (read via rpull / write via rpush) a
        register of ``reg_class`` on the callee?"""
        if reg_class is RegisterClass.PRIVILEGED:
            return False  # supervisor-only, never via TDT
        if reg_class in (RegisterClass.GENERAL, RegisterClass.VECTOR):
            return self.allows(Permission.MODIFY_SOME | Permission.MODIFY_MOST)
        # pc, flags, control (edp)
        return self.allows(Permission.MODIFY_MOST)


class ThreadDescriptorTable:
    """Software-side helper for building and editing a memory-resident TDT.

    The *authoritative* copy lives in simulated memory at ``base``;
    this object is how kernel code (Python-level) writes it. Hardware
    reads entries via :func:`read_entry` and caches them in
    :class:`TdtCache`.
    """

    def __init__(self, memory: Memory, base: int, capacity: int = 64):
        self.memory = memory
        self.base = base
        self.capacity = capacity

    def entry_addr(self, vtid: int) -> int:
        self._check_vtid(vtid)
        return self.base + vtid * ENTRY_WORDS * WORD_BYTES

    def set_entry(self, vtid: int, ptid: int, permissions: Permission) -> None:
        """Write an entry. Callers must still execute invtid to make the
        update visible through a core's TDT cache."""
        addr = self.entry_addr(vtid)
        self.memory.store(addr, ptid)
        self.memory.store(addr + WORD_BYTES, int(permissions))

    def clear_entry(self, vtid: int) -> None:
        self.set_entry(vtid, 0, Permission.NONE)

    def get_entry(self, vtid: int) -> TdtEntry:
        return read_entry(self.memory, self.base, vtid, self.capacity)

    def _check_vtid(self, vtid: int) -> None:
        if not 0 <= vtid < self.capacity:
            raise PermissionFault(f"vtid {vtid} out of TDT range")


def read_entry(memory: Memory, base: int, vtid: int,
               capacity: Optional[int] = None) -> TdtEntry:
    """Hardware walk of the memory-resident table."""
    if vtid < 0 or (capacity is not None and vtid >= capacity):
        raise PermissionFault(f"vtid {vtid} out of TDT range")
    addr = base + vtid * ENTRY_WORDS * WORD_BYTES
    ptid = memory.load(addr)
    perms = Permission(memory.load(addr + WORD_BYTES) & 0b1111)
    return TdtEntry(vtid, ptid, perms)


class TdtCache:
    """The core's translation cache, invalidated only by ``invtid``.

    Keyed by (table base, vtid) so ptids sharing a TDT share cached
    translations, as hardware would.
    """

    def __init__(self, costs=None):
        from repro.arch.costs import CostModel
        self._entries: Dict[Tuple[int, int], TdtEntry] = {}
        self.costs = costs or CostModel()
        self.hits = 0
        self.misses = 0

    def lookup(self, memory: Memory, base: int, vtid: int) -> Tuple[TdtEntry, int]:
        """Translate; returns (entry, latency_cycles)."""
        key = (base, vtid)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry, self.costs.tdt_lookup_cycles
        self.misses += 1
        entry = read_entry(memory, base, vtid)
        self._entries[key] = entry
        return entry, self.costs.tdt_miss_cycles

    def invalidate(self, base: int, vtid: int) -> bool:
        """Drop one cached translation. Returns True if it was cached."""
        return self._entries.pop((base, vtid), None) is not None

    def invalidate_all(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
