"""Hardware threads (ptids) and their three-state machine.

Paper, Section 3: "At any point, a given ptid can be in one of three
states: runnable, waiting, or disabled. Runnable ptids can execute
instructions on the CPU core. ... A ptid can voluntarily enter the
waiting state through ... monitor/mwait ... a disabled ptid does not
execute instructions until it is restarted by another ptid."
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.arch.state import ArchState
from repro.errors import SimulationError
from repro.obs.timeline import ThreadState


class PtidState(enum.Enum):
    """The paper's three thread states."""

    RUNNABLE = "runnable"
    WAITING = "waiting"
    DISABLED = "disabled"


class HardwareThread:
    """One register-file-resident execution context.

    Fields beyond the architectural state record simulation bookkeeping:
    which program the ptid runs, where its context currently lives in
    the storage hierarchy, its issue priority, and statistics.
    """

    def __init__(self, ptid: int, core: Any, supervisor: bool = False):
        self.ptid = ptid
        self.core = core
        self.state = PtidState.DISABLED
        self.arch = ArchState(supervisor=supervisor)
        self.program: Optional[Any] = None  # isa.Program
        self.priority: int = 1
        self.key: Optional[int] = None  # secret-key security model
        self.finished = False           # halted (vs merely stopped)
        # timing bookkeeping used by the core's issue loop
        self.busy_until: int = 0      # also delays first issue after a start
        self.work_remaining: int = 0  # cycles left of a `work` instruction
        self.last_issue_time: int = 0
        # pre-decoded execution (repro.isa.decode): the program's
        # handler chain (None -> naive interpretation) and the undo
        # record of an in-flight fused superinstruction
        self._decoded = None
        self._fused = None
        #: identity string stamped on this thread's memory traffic
        self.mem_source = f"cpu:core{getattr(core, 'core_id', 0)}.ptid{ptid}"
        # statistics
        self.instructions_executed = 0
        self.cycles_busy = 0
        self.wakeups = 0
        self.starts = 0
        self.stops = 0
        self.exceptions_raised = 0

    # ------------------------------------------------------------------
    # state transitions (invoked by the core; guard invariants here).
    # These three are the only writers of `state`, which makes them the
    # natural chokepoint for the observability timeline: when the core
    # carries one (instrumented machines only; bare test cores may have
    # core=None), every transition opens a span stamped with engine.now.
    # ------------------------------------------------------------------
    def make_runnable(self, reason: str = "") -> None:
        if self.state is PtidState.RUNNABLE:
            return
        if self.finished and reason != "restart":
            raise SimulationError(
                f"ptid {self.ptid} halted; restart it explicitly")
        self.state = PtidState.RUNNABLE
        self._note_transition(ThreadState.RUNNING)

    def make_waiting(self) -> None:
        if self.state is not PtidState.RUNNABLE:
            raise SimulationError(
                f"ptid {self.ptid} cannot wait from state {self.state}")
        self.state = PtidState.WAITING
        self._note_transition(ThreadState.MWAIT)

    def make_disabled(self) -> None:
        self.state = PtidState.DISABLED
        self._note_transition(ThreadState.STOPPED)

    def _note_transition(self, state: ThreadState) -> None:
        core = self.core
        if core is not None:
            # these three methods are the only writers of `state`, so
            # this is also where the core's cached runnable list (an
            # issue-loop fast path) gets invalidated
            core._runnable_cache = None
            if core.timeline is not None:
                core.timeline.transition(core.core_id, self.ptid, state,
                                         core.engine.now)

    # ------------------------------------------------------------------
    @property
    def runnable(self) -> bool:
        return self.state is PtidState.RUNNABLE

    @property
    def supervisor(self) -> bool:
        return self.arch.supervisor

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ptid {self.ptid} {self.state.value} pc={self.arch.pc}"
                f" prio={self.priority}>")
