"""Exceptions as data.

Paper, Section 3: "Events such as page faults that trigger exceptions in
today's CPUs simply write an exception descriptor to memory and disable
the current ptid. A different ptid monitors the exception descriptor to
detect and handle the exception."

A descriptor is six words written at the faulting ptid's ``edp``
(exception descriptor pointer) register:

====  =====================================
word  contents
====  =====================================
0     sequence number (nonzero; doubles as a "descriptor present" flag
      and lets a handler detect overwrites)
1     exception kind code
2     faulting ptid
3     pc of the faulting instruction
4     faulting address / trap code
5     timestamp (cycles)
====  =====================================

Because the descriptor is written through :meth:`Memory.store`, a
handler ptid that armed a monitor on the edp line wakes up exactly like
an I/O thread would -- there is no separate exception-delivery hardware,
which is the point of the design.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.mem.memory import WORD_BYTES, Memory

#: Words per descriptor.
DESCRIPTOR_WORDS = 6

_sequence = itertools.count(1)


class ExceptionKind(enum.IntEnum):
    """Exception kinds; codes are stable for descriptor encoding."""

    DIV_ZERO = 1
    PAGE_FAULT = 2
    ALIGNMENT_FAULT = 3
    ILLEGAL_INSTRUCTION = 4
    PRIVILEGE_FAULT = 5
    PERMISSION_FAULT = 6      # TDT denied a thread-management op
    SYSCALL = 7               # voluntary trap to the supervisor
    THREAD_STATE_FAULT = 8    # rpull/rpush on a non-disabled ptid etc.

    @classmethod
    def from_guest_fault_kind(cls, kind: str) -> "ExceptionKind":
        return {
            "page-fault": cls.PAGE_FAULT,
            "alignment-fault": cls.ALIGNMENT_FAULT,
            "permission-fault": cls.PERMISSION_FAULT,
            "thread-state-fault": cls.THREAD_STATE_FAULT,
        }.get(kind, cls.ILLEGAL_INSTRUCTION)


@dataclass(frozen=True)
class ExceptionDescriptor:
    """Decoded view of one descriptor."""

    seq: int
    kind: ExceptionKind
    ptid: int
    pc: int
    address: int
    timestamp: int

    def write(self, memory: Memory, edp: int) -> None:
        """Serialize to memory at ``edp``.

        The sequence word is written *last* so a monitor waiting on the
        edp line observes a fully formed descriptor: hardware would
        guarantee this ordering.
        """
        memory.store(edp + 1 * WORD_BYTES, int(self.kind), source="hw-exception")
        memory.store(edp + 2 * WORD_BYTES, self.ptid, source="hw-exception")
        memory.store(edp + 3 * WORD_BYTES, self.pc, source="hw-exception")
        memory.store(edp + 4 * WORD_BYTES, self.address, source="hw-exception")
        memory.store(edp + 5 * WORD_BYTES, self.timestamp, source="hw-exception")
        memory.store(edp + 0 * WORD_BYTES, self.seq, source="hw-exception")

    @classmethod
    def read(cls, memory: Memory, edp: int) -> "ExceptionDescriptor":
        words = memory.load_words(edp, DESCRIPTOR_WORDS)
        return cls(seq=words[0], kind=ExceptionKind(words[1]), ptid=words[2],
                   pc=words[3], address=words[4], timestamp=words[5])

    @classmethod
    def build(cls, kind: ExceptionKind, ptid: int, pc: int, address: int,
              timestamp: int) -> "ExceptionDescriptor":
        return cls(seq=next(_sequence), kind=kind, ptid=ptid, pc=pc,
                   address=address, timestamp=timestamp)


def descriptor_present(memory: Memory, edp: int, last_seen_seq: int = 0) -> bool:
    """Has a new descriptor landed at ``edp`` since ``last_seen_seq``?"""
    return memory.load(edp) > last_seen_seq


def acknowledge(memory: Memory, edp: int) -> ExceptionDescriptor:
    """Handler-side: read the descriptor and clear the present flag."""
    descriptor = ExceptionDescriptor.read(memory, edp)
    memory.store(edp, 0, source="handler-ack")
    return descriptor
