"""A multi-core chip: cores sharing one memory system and watch bus.

Ptids are core-local (the paper proposes per-core thread storage);
cross-core coordination happens through shared memory and the
generalized monitor, exactly as it would between cores on real hardware.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.hw.core import HWCore
from repro.hw.storage import ThreadStateStore
from repro.mem.memory import Memory


class Chip:
    """``cores`` HWCores over a shared :class:`Memory`."""

    def __init__(self, engine: Any, memory: Memory, cores: int = 1,
                 num_ptids: int = 64, smt_width: int = 2,
                 costs: Optional[CostModel] = None,
                 security_model: str = "tdt",
                 rf_bytes: int = 64 * 1024,
                 issue_policy_factory=None,
                 tracer: Optional[Any] = None,
                 fast_forward: bool = True,
                 predecode: bool = True):
        if cores < 1:
            raise ConfigError(f"chip needs at least one core, got {cores}")
        self.engine = engine
        self.memory = memory
        self.costs = costs or CostModel()
        self.migrations = 0
        self.cores: List[HWCore] = []
        for core_id in range(cores):
            storage = ThreadStateStore(self.costs, rf_bytes=rf_bytes)
            policy = issue_policy_factory() if issue_policy_factory else None
            self.cores.append(HWCore(
                engine, memory, core_id=core_id, num_ptids=num_ptids,
                smt_width=smt_width, costs=self.costs, issue_policy=policy,
                storage=storage, security_model=security_model, tracer=tracer,
                fast_forward=fast_forward, predecode=predecode))

    def core(self, core_id: int) -> HWCore:
        if not 0 <= core_id < len(self.cores):
            raise ConfigError(f"core {core_id} out of range")
        return self.cores[core_id]

    def migrate(self, from_core: int, from_ptid: int,
                to_core: int, to_ptid: int) -> int:
        """Move a disabled context to a ptid on another core.

        Section 4: the OS scheduler "will also manage the mapping of
        threads to cores in order to improve locality. Since starting
        and stopping threads incurs low overhead..." -- migration is a
        bulk state copy through the shared cache (L3-tier cost), far
        from the page-swap-grade event it is today, but not free either.

        Both ptids must be disabled (like rpull/rpush, state is only
        coherent then). The destination inherits program, architectural
        state, and priority; the source keeps its (now stale) copy,
        exactly like a hardware state transfer would. Returns the
        charged latency in cycles.
        """
        source_core = self.core(from_core)
        dest_core = self.core(to_core)
        if from_core == to_core and from_ptid == to_ptid:
            raise ConfigError("cannot migrate a ptid onto itself")
        source = source_core.thread(from_ptid)
        dest = dest_core.thread(to_ptid)
        from repro.hw.ptid import PtidState
        if source.state is not PtidState.DISABLED:
            raise ConfigError(
                f"migration source ptid {from_ptid} must be disabled")
        if dest.state is not PtidState.DISABLED:
            raise ConfigError(
                f"migration target ptid {to_ptid} must be disabled")
        dest.program = source.program
        dest._fused = None
        dest._decoded = source.program.decoded(type(dest_core)._DISPATCH) \
            if (source.program is not None
                and dest_core.predecode_enabled) else None
        dest.finished = source.finished
        dest.priority = source.priority
        dest.arch.load_snapshot(source.arch.snapshot())
        dest.arch.vector_dirty = source.arch.vector_dirty
        # cross-core transfer traverses the shared cache: L3-tier cost,
        # charged against the destination's first issue
        latency = self.costs.hw_start_l3_cycles
        dest.busy_until = max(dest.busy_until, self.engine.now + latency)
        self.migrations += 1
        return latency

    def check(self) -> None:
        for core in self.cores:
            core.check()

    @property
    def total_instructions(self) -> int:
        return sum(core.instructions_retired for core in self.cores)

    def total_register_file_bytes(self) -> int:
        """The Section 4 arithmetic: per-core RF budget times cores."""
        return sum(core.storage.rf_capacity * core.storage.context_bytes
                   for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Chip cores={len(self.cores)}>"
