"""The proposed hardware threading model (Sections 3 and 4 of the paper).

- :mod:`repro.hw.ptid` -- the hardware-thread record and its three-state
  machine (runnable / waiting / disabled).
- :mod:`repro.hw.tdt` -- the Thread Descriptor Table: memory-resident
  vtid->ptid map with 4 permission bits and an explicit-invalidate cache.
- :mod:`repro.hw.exceptions` -- exception descriptors written to memory
  (exceptions-as-data replaces trap vectors).
- :mod:`repro.hw.monitor` -- the per-ptid monitor unit implementing
  generalized monitor/mwait over the write-watch bus.
- :mod:`repro.hw.storage` -- the thread-state storage hierarchy (register
  file / L2 / L3 tiers with promotion and eviction).
- :mod:`repro.hw.issue` -- SMT issue policies (fine-grain round-robin,
  priority-weighted).
- :mod:`repro.hw.core` -- the core: interprets programs for many ptids,
  multiplexing them onto a few SMT slots.
- :mod:`repro.hw.chip` -- a multi-core chip sharing one memory system.
- :mod:`repro.hw.keys` -- the secret-key alternative to the TDT security
  model sketched in Section 3.2.
"""

from repro.hw.chip import Chip
from repro.hw.core import HWCore
from repro.hw.exceptions import ExceptionDescriptor, ExceptionKind
from repro.hw.issue import PriorityWeightedIssue, RoundRobinIssue
from repro.hw.keys import KeyRegistry
from repro.hw.monitor import MonitorUnit
from repro.hw.ptid import HardwareThread, PtidState
from repro.hw.storage import StorageTier, ThreadStateStore
from repro.hw.tdt import Permission, TdtEntry, ThreadDescriptorTable

__all__ = [
    "Chip",
    "ExceptionDescriptor",
    "ExceptionKind",
    "HWCore",
    "HardwareThread",
    "KeyRegistry",
    "MonitorUnit",
    "Permission",
    "PriorityWeightedIssue",
    "PtidState",
    "RoundRobinIssue",
    "StorageTier",
    "TdtEntry",
    "ThreadDescriptorTable",
    "ThreadStateStore",
]
