"""The secret-key alternative to the TDT security model.

Paper, Section 3.2: "An alternative to the TDT could be a secret-key-
based design. Threads that perform thread management would need to
provide the target thread's secret key if they are not running in
privileged mode. Each thread would set its own key and share it with
other threads using existing software mechanisms."

Implemented so the two models can be compared property-for-property
(experiment E08 asserts the reachable-permission sets match when keys
are distributed to exactly the TDT-authorized parties).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import PermissionFault


class KeyRegistry:
    """Per-core map of ptid -> secret key.

    A thread sets its own key (``setkey``); managers authorize
    operations by presenting the right key. Supervisor-mode callers
    bypass keys, mirroring the TDT model's supervisor bypass.
    """

    def __init__(self) -> None:
        self._keys: Dict[int, int] = {}
        self.checks = 0
        self.denials = 0

    def set_key(self, ptid: int, key: int) -> None:
        """A ptid sets (or rotates) its own key. Key 0 clears it."""
        if key == 0:
            self._keys.pop(ptid, None)
        else:
            self._keys[ptid] = key

    def has_key(self, ptid: int) -> bool:
        return ptid in self._keys

    def authorize(self, target_ptid: int, presented_key: Optional[int],
                  supervisor: bool = False) -> None:
        """Raise :class:`PermissionFault` unless the operation is allowed.

        Rules: supervisors always pass; a target with no key set is
        unmanaged (deny for non-supervisors -- fail closed); otherwise
        the presented key must match.
        """
        self.checks += 1
        if supervisor:
            return
        expected = self._keys.get(target_ptid)
        if expected is None:
            self.denials += 1
            raise PermissionFault(
                f"ptid {target_ptid} has no key set; unprivileged management denied")
        if presented_key != expected:
            self.denials += 1
            raise PermissionFault(f"wrong key for ptid {target_ptid}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<KeyRegistry keys={len(self._keys)} denials={self.denials}>"
