"""The thread-state storage hierarchy.

Paper, Section 4 ("Storage for Thread State"): a small number of
contexts live in large register files (start cost ~ pipeline depth,
~20 cycles); more spill to the private L2 and shared L3 ("a fraction of
a 512KB private L2 cache can store the state of tens of threads, while
a few MB of an L3 cache can support hundreds"), with bulk-transfer
costs of 10-50 cycles. "Combining these three options can support
hundreds to thousands of threads per core."

The store tracks which tier holds each ptid's context, promotes a
context to the register file when the ptid starts (evicting the
least-recently-used idle context), and reports the start latency for
the tier the context came from. Optional pinning models "selecting
which threads are stored closer to the core based on criticality".
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.arch.costs import CostModel
from repro.arch.registers import register_file_capacity, state_bytes
from repro.errors import ConfigError
from repro.obs.timeline import ThreadState


class StorageTier(str, enum.Enum):
    """Where a context currently lives."""

    RF = "rf"
    L2 = "l2"
    L3 = "l3"


class ThreadStateStore:
    """Tiered context storage for one core.

    Capacities default to the paper's arithmetic: a 64 KiB register
    file holds 83 full (784 B) contexts; an L2 slice "tens", the L3
    effectively unbounded ("hundreds").
    """

    def __init__(self, costs: Optional[CostModel] = None,
                 rf_bytes: int = 64 * 1024,
                 l2_slots: int = 48,
                 with_vector: bool = True):
        self.costs = costs or CostModel()
        self.rf_capacity = register_file_capacity(rf_bytes, with_vector)
        if self.rf_capacity < 1:
            raise ConfigError(f"register file of {rf_bytes}B holds no contexts")
        self.l2_capacity = l2_slots
        self.context_bytes = state_bytes(with_vector)
        self._tier: Dict[int, StorageTier] = {}
        self._last_use: Dict[int, int] = {}
        self._pinned: set = set()
        self._use_counter = 0
        # statistics
        self.promotions = 0
        self.demotions = 0
        self.starts_by_tier = {tier: 0 for tier in StorageTier}
        # observability (attach_obs; None on bare stores built by tests
        # and the queueing-only experiments)
        self._timeline = None
        self._obs_core_id = 0
        self._obs_engine = None

    def attach_obs(self, timeline, core_id: int, engine) -> None:
        """Record tier moves on an observability timeline (set by the
        owning core's ``attach_obs``)."""
        self._timeline = timeline
        self._obs_core_id = core_id
        self._obs_engine = engine

    # ------------------------------------------------------------------
    def register(self, ptid: int) -> None:
        """A new context; placed in the lowest tier with space."""
        if ptid in self._tier:
            raise ConfigError(f"ptid {ptid} already registered")
        if self._count(StorageTier.RF) < self.rf_capacity:
            self._tier[ptid] = StorageTier.RF
        elif self._count(StorageTier.L2) < self.l2_capacity:
            self._tier[ptid] = StorageTier.L2
        else:
            self._tier[ptid] = StorageTier.L3
        self._touch(ptid)

    def tier_of(self, ptid: int) -> StorageTier:
        tier = self._tier.get(ptid)
        if tier is None:
            raise ConfigError(f"ptid {ptid} not registered with the store")
        return tier

    def pin(self, ptid: int) -> None:
        """Pin a critical context in the register file.

        Models the paper's criticality-based placement; pinned contexts
        are never chosen as eviction victims.
        """
        self.tier_of(ptid)  # existence check
        self._pinned.add(ptid)
        self._promote(ptid)

    def unpin(self, ptid: int) -> None:
        self._pinned.discard(ptid)

    # ------------------------------------------------------------------
    def start_latency(self, ptid: int, evictable: Optional[List[int]] = None) -> int:
        """Charge for starting ``ptid`` and promote its context to RF.

        ``evictable`` lists ptids whose contexts may be demoted to make
        room (the core passes its currently idle ptids). Returns the
        start latency in cycles for the tier the context came from.
        """
        tier = self.tier_of(ptid)
        self.starts_by_tier[tier] += 1
        latency = self.costs.hw_start_cycles(tier.value)
        if tier is not StorageTier.RF:
            self._make_room(evictable or [])
            self._tier[ptid] = StorageTier.RF
            self.promotions += 1
            if self._timeline is not None:
                self._timeline.instant(self._obs_core_id, ptid,
                                       f"promote-{tier.value}",
                                       self._obs_engine.now)
        self._touch(ptid)
        return latency

    def touch(self, ptid: int) -> None:
        """Record recency (called when the ptid issues instructions)."""
        self._touch(ptid)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _promote(self, ptid: int) -> None:
        if self._tier[ptid] is not StorageTier.RF:
            self._make_room([p for p in self._tier if p != ptid])
            self._tier[ptid] = StorageTier.RF
            self.promotions += 1
        self._touch(ptid)

    def _make_room(self, evictable: List[int]) -> None:
        if self._count(StorageTier.RF) < self.rf_capacity:
            return
        victims = [p for p in evictable
                   if self._tier.get(p) is StorageTier.RF and p not in self._pinned]
        if not victims:
            raise ConfigError(
                "register file full and no evictable context; "
                "increase rf_bytes or mark threads idle")
        victim = min(victims, key=lambda p: self._last_use.get(p, 0))
        if self._count(StorageTier.L2) < self.l2_capacity:
            self._tier[victim] = StorageTier.L2
        else:
            self._tier[victim] = StorageTier.L3
        self.demotions += 1
        if self._timeline is not None:
            # the victim's context left the register file: mark the
            # demotion and flip its (idle) span to the spilled state
            now = self._obs_engine.now
            tier = self._tier[victim].value
            self._timeline.instant(self._obs_core_id, victim,
                                   f"demote-{tier}", now)
            self._timeline.transition(self._obs_core_id, victim,
                                      ThreadState.SPILLED, now)

    def _count(self, tier: StorageTier) -> int:
        return sum(1 for t in self._tier.values() if t is tier)

    def _touch(self, ptid: int) -> None:
        self._use_counter += 1
        self._last_use[ptid] = self._use_counter

    # ------------------------------------------------------------------
    def occupancy(self) -> Dict[str, int]:
        return {tier.value: self._count(tier) for tier in StorageTier}

    def footprint_bytes(self) -> int:
        """Total state bytes across all registered contexts."""
        return len(self._tier) * self.context_bytes

    def __repr__(self) -> str:  # pragma: no cover
        occ = self.occupancy()
        return f"<ThreadStateStore rf={occ['rf']}/{self.rf_capacity} l2={occ['l2']} l3={occ['l3']}>"
