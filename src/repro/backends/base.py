"""The server-backend protocol and its string-keyed registry.

A *backend* is one implementation of the request-in/latency-out server
contract the cluster layer programs against: submit a segmented request
now, call ``on_done`` when its last segment completes, account CPU
busy cycles. Two implementations ship:

- ``"model"`` -- the behavioral
  :class:`~repro.distributed.rpc.RpcServerModel` (queueing servers plus
  the per-transition cost model); cheap, scales to big sweeps;
- ``"isa"`` -- :class:`~repro.backends.machine.MachineBackend`, the
  full ISA-level :class:`~repro.machine.Machine` running
  thread-per-request assembly with monitor/mwait blocking on remote
  calls; expensive, but every overhead is *executed*, not modeled.

Both run on the caller's shared engine, so a cluster can mix fidelity
levels per node and experiment E15 can replay one workload (common
random numbers) against both and compare the tails -- the E02-style
two-layer agreement check, at cluster scale.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.arch.costs import CostModel
from repro.distributed.rpc import RpcServerModel, ServerDesign
from repro.errors import ConfigError
from repro.sim.engine import Engine


@runtime_checkable
class ServerBackend(Protocol):
    """What the cluster layer requires of a server implementation.

    Attributes: ``design`` (the :class:`ServerDesign` being served),
    ``completed`` (finished request count), and ``recorder`` (a
    :class:`~repro.analysis.stats.LatencyRecorder` of per-request
    latencies).
    """

    design: ServerDesign

    def submit(self, request_id: int, segment_cycles: List[float],
               rtt_cycles: int,
               on_done: Optional[Callable[[], None]] = None) -> None:
        """Accept a request now; ``on_done`` fires at its completion."""
        ...

    def cpu_busy_cycles(self) -> int:
        """Total CPU cycles consumed so far (utilization accounting)."""
        ...


BackendFactory = Callable[..., ServerBackend]


def _build_model(engine: Engine, design: ServerDesign,
                 costs: Optional[CostModel], cores: int,
                 resident_threads: Optional[int],
                 coherence: Optional[str]) -> ServerBackend:
    if coherence is not None:
        raise ConfigError(
            "the 'model' backend has no machine to attach a coherence "
            "model to; use backend='isa' with coherence, or drop the "
            "coherence knob")
    return RpcServerModel(engine, design, costs, cores=cores,
                          resident_threads=resident_threads)


def _build_isa(engine: Engine, design: ServerDesign,
               costs: Optional[CostModel], cores: int,
               resident_threads: Optional[int],
               coherence: Optional[str]) -> ServerBackend:
    from repro.backends.machine import MachineBackend
    return MachineBackend(engine, design, costs, cores=cores,
                          resident_threads=resident_threads,
                          coherence=coherence)


#: Backend name -> factory. Register new fidelity levels here.
BACKENDS: Dict[str, BackendFactory] = {
    "model": _build_model,
    "isa": _build_isa,
}


def backend_names() -> Sequence[str]:
    """The registered backend names, in reporting order."""
    return tuple(sorted(BACKENDS))


def create_backend(name: str, engine: Engine, design: ServerDesign, *,
                   costs: Optional[CostModel] = None, cores: int = 1,
                   resident_threads: Optional[int] = None,
                   coherence: Optional[str] = None) -> ServerBackend:
    """Build the named backend on ``engine``.

    ``coherence`` names a watch-bus coherence model for the backend's
    machine (ISA backend only; see
    :class:`~repro.coherence.directory.DirectoryModel`).

    Raises :class:`~repro.errors.ConfigError` on an unknown name, with
    the registered alternatives in the message.
    """
    factory = BACKENDS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown server backend {name!r}; known backends: "
            f"{', '.join(backend_names())} ('model' is the behavioral "
            f"RpcServerModel, 'isa' the full ISA-level machine)")
    return factory(engine, design, costs, cores, resident_threads,
                   coherence)
