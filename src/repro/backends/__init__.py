"""Pluggable server backends: one protocol, several fidelity levels.

See :mod:`repro.backends.base` for the :class:`ServerBackend` protocol
and the registry, :mod:`repro.backends.machine` for the ISA-level
implementation. The behavioral implementation lives where it always
did, in :mod:`repro.distributed.rpc`, and is registered as ``"model"``.
"""

from repro.backends.base import (
    BACKENDS,
    ServerBackend,
    backend_names,
    create_backend,
)
from repro.backends.machine import MachineBackend

__all__ = [
    "BACKENDS",
    "ServerBackend",
    "MachineBackend",
    "backend_names",
    "create_backend",
]
