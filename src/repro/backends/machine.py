"""The ISA-level server backend: requests run as real guest threads.

Where the ``"model"`` backend charges the paper's transition costs
analytically, this backend *executes* them: each admitted request is
assembled into straight-line blocking code (the Section 2 style --
compute, issue the remote call, ``monitor``/``mwait`` on the reply
slot, compute, finish) and bound to a hardware thread of a
:class:`~repro.machine.Machine` built on the cluster's shared engine.
Wakeup costs, issue-slot sharing, and storage-tier start latencies come
out of the simulated core itself.

Per design:

- **hw-threads** -- thread-per-request: every request gets its own
  ptid; RTT gaps block on monitor/mwait and the hardware charges the
  real wakeup cost (``monitor_wakeup_cycles`` + storage start latency).
  No analytic overhead is added -- the machine *is* the cost model.
- **sw-threads** -- same thread-per-request program, but each segment
  carries the software transition tax
  (:meth:`~repro.distributed.rpc.ServerDesign.transition_overhead_cycles`
  at the crowding level observed at submit) as extra ``work`` cycles:
  the scheduler walk and cache refill are CPU cycles the core really
  burns. (The behavioral model re-reads the crowd at each segment;
  freezing it at submit is indistinguishable at the loads E15 runs.)
- **event-loop** -- one worker ptid runs segments to completion from a
  FIFO continuation queue; each segment carries the 50-cycle dispatch
  as ``work``, and head-of-line blocking is physical: the worker cannot
  be reloaded until the running segment halts.

The core issues one instruction per cycle (``smt_width=1``) round-robin
over runnable ptids -- processor sharing, matching the behavioral PS
discipline at one-cycle granularity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.analysis.stats import LatencyRecorder
from repro.arch.costs import CostModel
from repro.distributed.rpc import ServerDesign
from repro.errors import ConfigError
from repro.isa.assembler import AsmTemplate
from repro.machine import Machine, MachineConfig
from repro.sim.engine import Engine

#: Hardware threads per node machine: the concurrent-request ceiling
#: for the thread-per-request designs (overflow queues in FIFO order).
DEFAULT_SLOTS = 32

#: Cycles between a request's DONE store and its slot being reloaded:
#: the ``halt`` after the store must retire before a new program can be
#: bound to the ptid. Deterministic and tiny next to any segment.
_SLOT_DRAIN_CYCLES = 2


#: (shape, req, reply, done) -> parsed-once program template, shared
#: across backends and runs (shape 0 = the one-segment event-loop
#: continuation, n >= 1 = an n-segment thread-per-request program).
#: Only the ``work`` immediates change between requests of the same
#: shape on the same slot, so they are the template's only dynamic
#: holes; the slot's mailbox addresses are baked in as symbols (machine
#: memory layout is deterministic, so the same (shape, bases) tuple
#: recurs across every backend/run and the cache hits globally).
#: Binding the holes skips the text assembler entirely and reuses the
#: shared pre-decoded handler chain.
_TEMPLATES: Dict[tuple, AsmTemplate] = {}


def _request_asm(nsegs: int) -> str:
    """Straight-line blocking code for one whole request."""
    lines = ["    work W0"]
    for index in range(1, nsegs):
        lines += [
            "    movi r1, REPLY",
            "    monitor r1",        # armed before the call: no
            "    movi r2, REQ",      # lost wakeup on a fast reply
            f"    movi r3, {index}",
            "    st r2, 0, r3",      # issue the remote call
            "    mwait",             # simple blocking semantics
            f"    work W{index}",
        ]
    lines += [
        "    movi r4, DONE",
        "    movi r5, 1",
        "    st r4, 0, r5",
        "    halt",
    ]
    return "\n".join(lines)


def _segment_asm() -> str:
    """One run-to-completion event-loop callback."""
    return "\n".join([
        "    work W0",
        "    movi r1, DONE",
        "    movi r2, 1",
        "    st r1, 0, r2",
        "    halt",
    ])


def _template(shape: int, slot: _Slot) -> AsmTemplate:
    key = (shape, slot.req_base, slot.reply_base, slot.done_base)
    template = _TEMPLATES.get(key)
    if template is None:
        source = _segment_asm() if shape == 0 else _request_asm(shape)
        template = AsmTemplate(
            source, name=f"isa-backend.shape{shape}",
            symbols={"REQ": slot.req_base, "REPLY": slot.reply_base,
                     "DONE": slot.done_base},
            dynamic=tuple(f"W{i}" for i in range(max(shape, 1))))
        _TEMPLATES[key] = template
    return template


@dataclass
class _Pending:
    """One request accepted by the backend."""

    request_id: int
    segments: List[int]         # per-segment work immediates, tax included
    rtt_cycles: int
    arrived: int
    on_done: Optional[Callable[[], None]]
    next_segment: int = 0       # event-loop continuation cursor


@dataclass
class _Slot:
    """One worker ptid with its request/reply/done mailboxes."""

    ptid: int
    req_base: int
    reply_base: int
    done_base: int
    current: Optional[_Pending] = field(default=None)
    #: per-shape bound program instances, rebound (not rebuilt) per
    #: request -- a slot serves one request at a time, so reuse is safe
    bound: Dict[int, object] = field(default_factory=dict)


class MachineBackend:
    """Serve segmented requests on a full ISA-level machine."""

    def __init__(self, engine: Engine, design: ServerDesign,
                 costs: Optional[CostModel] = None, cores: int = 1,
                 resident_threads: Optional[int] = None,
                 slots: int = DEFAULT_SLOTS,
                 coherence: Optional[str] = None):
        if cores != 1:
            raise ConfigError(
                f"the 'isa' backend drives a single-core machine, got "
                f"cores={cores}; use cores_per_node=1 or the 'model' "
                f"backend for multi-core nodes")
        if slots < 1:
            raise ConfigError(f"need at least one slot, got {slots}")
        if resident_threads is not None and resident_threads < 0:
            raise ConfigError(
                f"resident_threads must be >= 0, got {resident_threads}")
        self.engine = engine
        self.design = design
        self.costs = costs or CostModel()
        self.resident_threads = resident_threads
        self.recorder = LatencyRecorder(f"{design.name}.isa.latency")
        self.completed = 0
        self.active = 0
        self.peak_concurrency = 0
        #: distributed-tracing sink (a SpanStore); set by the cluster
        #: node when request tracing is active, else stays None
        self.span_sink = None
        if design.name == "event-loop":
            slots = 1           # single-threaded by definition
        self.machine = Machine(
            MachineConfig(cores=1, hw_threads_per_core=slots, smt_width=1,
                          costs=self.costs, coherence=coherence),
            engine=engine)
        # Slots materialize on first use (mailbox allocation + watch
        # subscriptions are the bulk of construction, and a lightly
        # loaded node touches a handful of its 32 slots). The FIFO free
        # deque hands out ptids in ascending order, so the on-demand
        # allocation stream -- and with it every region base address --
        # is identical to eager construction.
        self._slot_budget = slots
        self._slots: List[_Slot] = []
        self._free: Deque[_Slot] = deque()
        #: overflow requests (thread-per-request) or continuations
        #: (event-loop), both strictly FIFO
        self._backlog: Deque[_Pending] = deque()

    def _grow_slot(self) -> _Slot:
        ptid = len(self._slots)
        slot = _Slot(
            ptid=ptid,
            req_base=self.machine.alloc(f"req{ptid}", 64).base,
            reply_base=self.machine.alloc(f"reply{ptid}", 64).base,
            done_base=self.machine.alloc(f"done{ptid}", 64).base)
        self._slots.append(slot)
        bus = self.machine.memory.watch_bus
        if self.design.name != "event-loop":
            bus.subscribe(slot.req_base, self._make_peer(slot),
                          owner=f"net-peer{ptid}")
        bus.subscribe(slot.done_base, self._make_done(slot),
                      owner=f"completion{ptid}")
        return slot

    # ------------------------------------------------------------------
    def submit(self, request_id: int, segment_cycles: List[float],
               rtt_cycles: int,
               on_done: Optional[Callable[[], None]] = None) -> None:
        """A request arrives now (the ServerBackend contract)."""
        if not segment_cycles:
            raise ConfigError("request needs at least one segment")
        self.active += 1
        self.peak_concurrency = max(self.peak_concurrency, self.active)
        work = self._work_cycles(segment_cycles)
        pending = _Pending(
            request_id=request_id,
            segments=work,
            rtt_cycles=max(1, rtt_cycles),
            arrived=self.engine.now,
            on_done=on_done)
        if self.span_sink is not None:
            # everything known analytically at submit: the per-segment
            # tax folded into the work immediates and the remote-call
            # RTT lower bound between segments. What the machine itself
            # charges on top (wakeups, dispatch, slot drain, issue-slot
            # sharing) lands in the trace's queue residual.
            nsegs = len(work)
            tax = self._segment_tax() * nsegs
            self.span_sink.node_demand(
                request_id, sum(work) - tax, tax,
                max(1, rtt_cycles) * (nsegs - 1))
        self._backlog.append(pending)
        self._dispatch()

    def cpu_busy_cycles(self) -> int:
        """Cycles the core's threads actually executed for."""
        return int(sum(t.cycles_busy
                       for t in self.machine.core(0).threads))

    # ------------------------------------------------------------------
    def _segment_tax(self) -> int:
        """The analytic per-segment tax at the crowding level observed
        now (0 for hw-threads: the machine charges its own wakeups)."""
        if self.design.name == "hw-threads":
            return 0
        crowd = 0
        if self.resident_threads is not None:
            crowd = self.resident_threads + max(self.active - 1, 0)
        return self.design.transition_overhead_cycles(self.costs,
                                                      crowd=crowd)

    def _work_cycles(self, segment_cycles: List[float]) -> List[int]:
        """Per-segment ``work`` immediates: demand plus any analytic tax.

        hw-threads adds nothing -- the machine charges its own wakeups.
        """
        tax = self._segment_tax()
        return [max(1, int(round(seg))) + tax for seg in segment_cycles]

    def _dispatch(self) -> None:
        while self._backlog:
            # fresh slots first, recycled ones after -- the same order
            # the eager free deque (0..N-1, completions appended behind)
            # used to hand out, so slot/mailbox assignment is unchanged
            if len(self._slots) < self._slot_budget:
                slot = self._grow_slot()
            elif self._free:
                slot = self._free.popleft()
            else:
                return
            slot.current = self._backlog.popleft()
            self._load_slot(slot)

    def _load_slot(self, slot: _Slot) -> None:
        pending = slot.current
        if self.design.name == "event-loop":
            # every continuation is the same one-segment shape: key 0
            shape = 0
            values = {"W0": pending.segments[pending.next_segment]}
        else:
            shape = len(pending.segments)
            values = {f"W{i}": work
                      for i, work in enumerate(pending.segments)}
        template = _template(shape, slot)
        name = f"{self.design.name}.req{pending.request_id}"
        program = slot.bound.get(shape)
        if program is None:
            program = template.instantiate(values, name=name)
            slot.bound[shape] = program
        else:
            # same shape, new immediates: patch the existing instance
            # (and its decoded chain) rather than rebuild both
            template.rebind(program, values, name=name)
        self.machine.load_program(slot.ptid, program, supervisor=False)
        self.machine.boot(slot.ptid)

    # ------------------------------------------------------------------
    def _make_peer(self, slot: _Slot):
        """The remote side of the mid-request call: replies after RTT."""
        def on_request(_info: dict) -> None:
            pending = slot.current
            if pending is None:     # stale store; cannot happen, but safe
                return
            self.engine.after(pending.rtt_cycles, self.machine.memory.store,
                              slot.reply_base, pending.request_id,
                              "dma:net")
        return on_request

    def _make_done(self, slot: _Slot):
        def on_done(_info: dict) -> None:
            # the halt after this store must retire before the slot can
            # host another program
            self.engine.after(_SLOT_DRAIN_CYCLES, self._drained, slot)
        return on_done

    def _drained(self, slot: _Slot) -> None:
        pending = slot.current
        slot.current = None
        self._free.append(slot)
        if self.design.name == "event-loop":
            pending.next_segment += 1
            if pending.next_segment < len(pending.segments):
                # the remote call between segments: re-enter the FIFO
                # once the reply returns
                self.engine.after(pending.rtt_cycles,
                                  self._continue, pending)
            else:
                self._complete(pending)
        else:
            self._complete(pending)
        self._dispatch()

    def _continue(self, pending: _Pending) -> None:
        self._backlog.append(pending)
        self._dispatch()

    def _complete(self, pending: _Pending) -> None:
        self.active -= 1
        self.completed += 1
        self.recorder.record(self.engine.now - pending.arrived)
        if pending.on_done is not None:
            pending.on_done()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MachineBackend {self.design.name} active={self.active}"
                f" completed={self.completed}>")
