"""RPC server designs over a shared segmented-request workload.

A request is ``segments`` bursts of CPU work separated by remote calls
of ``rtt_cycles`` each (during which the request holds no CPU). The
three designs differ in (a) how the CPU is shared among runnable
segments and (b) what each block/unblock transition costs:

=============  ==============  =======================================
design         CPU discipline  per-transition overhead (CPU cycles)
=============  ==============  =======================================
hw-threads     PS              hardware wakeup (monitor + ptid start)
sw-threads     PS              software: scheduler + switch + pollution
                               on block *and* on wake
event-loop     FIFO            callback dispatch (tens of cycles), but
                               run-to-completion -- long handlers block
                               everyone (head-of-line)
=============  ==============  =======================================

The sw-threads overhead consumes server capacity, so its saturation
point drops below the other two -- the paper's "multiplexing a large
number of software threads onto a small number of hardware threads is
expensive". The event loop matches hw-threads on throughput but is the
"confusing control flow" [78] option and suffers under high service
variability from head-of-line blocking, which the latency distribution
shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    # type-only: importing the module at runtime invites accidental use
    # of the *global* RNG (random.random() etc.), which would break
    # seed-stability -- every draw must come from RngStreams-provided
    # generators passed in explicitly
    import random

from repro.analysis.stats import LatencyRecorder
from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.kernel.sched import (
    FifoServer,
    ProcessorSharingServer,
    QueueingServer,
)
from repro.sim.engine import Engine
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.requests import Request
from repro.workloads.service import ServiceDistribution


#: Crowding normalization: scheduler and pollution scaling are
#: expressed per CROWD_UNIT resident software threads.
CROWD_UNIT = 8
#: Beyond this many resident threads the working sets have evicted the
#: whole cache already -- one more thread cannot pollute further.
CROWD_CACHE_CAP = 64


@dataclass(frozen=True)
class ServerDesign:
    """A named (discipline, overhead-model) pair.

    ``crowd`` is the number of *other* software threads resident on the
    node (idle pool workers plus concurrently active requests). Only
    sw-threads pays for it: the kernel runqueue grows (pick-next and
    queue maintenance scale ~log in runnable threads) and every
    additional resident working set evicts more cache per switch, up to
    :data:`CROWD_CACHE_CAP` where the cache is fully churned. This is
    the paper's Section 1 claim quantified: "multiplexing a large
    number of software threads onto a small number of hardware threads
    is expensive ... suffering many cache misses along the way".
    Hardware threads keep per-context state (no switch, no shared
    runqueue walk) and the event loop runs one stack to completion, so
    neither design's overhead depends on ``crowd``.
    """

    name: str
    discipline: str             # "ps" | "fifo"

    def transition_overhead_cycles(self, costs: CostModel,
                                   crowd: int = 0) -> int:
        """CPU cycles charged per block/unblock transition."""
        if self.name == "hw-threads":
            return costs.hw_wakeup_cycles("rf")
        if self.name == "sw-threads":
            # block: switch away; wake: scheduler + switch back (+ the
            # cache pollution both sides eat)
            base = (costs.sw_switch_cycles
                    + costs.scheduler_cycles + costs.sw_switch_cycles
                    + costs.cache_pollution_cycles)
            if crowd > 0:
                base += int(costs.scheduler_cycles
                            * math.log2(1 + crowd / CROWD_UNIT))
                base += (costs.cache_pollution_cycles
                         * min(crowd, CROWD_CACHE_CAP) // CROWD_UNIT)
            return base
        if self.name == "event-loop":
            return 50  # enqueue continuation + dispatch callback
        raise ConfigError(f"unknown design {self.name!r}")


HW_THREADS = ServerDesign("hw-threads", "ps")
SW_THREADS = ServerDesign("sw-threads", "ps")
EVENT_LOOP = ServerDesign("event-loop", "fifo")


class _InflightRequest:
    """One request's segment walk as a callback chain.

    Stands in for the ``done`` signal the queueing server fires on
    segment completion (it only needs a :meth:`fire` method), so a
    request costs no generator coroutine, no waiter bookkeeping, and
    schedules exactly the engine events the coroutine it replaced did:
    one kick-off at arrival and one RTT timeout between segments.
    """

    __slots__ = ("model", "req_id", "segments", "rtt", "on_done",
                 "arrived", "index")

    def __init__(self, model: "RpcServerModel", req_id: int,
                 segments: list, rtt: int,
                 on_done: Optional[Callable[[], None]]):
        self.model = model
        self.req_id = req_id
        self.segments = segments
        self.rtt = rtt if rtt > 1 else 1
        self.on_done = on_done
        self.arrived = 0
        self.index = 0

    def start(self) -> None:
        model = self.model
        model.active += 1
        if model.active > model.peak_concurrency:
            model.peak_concurrency = model.active
        self.arrived = model.engine._now
        self._offer_segment()

    def _offer_segment(self) -> None:
        model = self.model
        # re-read each segment: the crowding term tracks how many
        # requests are resident *now*, not at arrival
        overhead = model.segment_overhead_cycles()
        seg = int(round(self.segments[self.index]))
        demand = (seg if seg > 1 else 1) + overhead
        if model.span_sink is not None:
            # per segment, because the crowd-scaled overhead is re-read
            # each time: the trace carries the exact tax this segment
            # will pay, not the arrival-time estimate
            model.span_sink.node_demand(self.req_id,
                                        seg if seg > 1 else 1,
                                        overhead, 0)
        model._seg_counter += 1
        model.cpu.offer(Request(
            req_id=model._seg_counter,
            arrival_time=float(model.engine._now),
            service_cycles=demand,
            payload={"done": self}))

    def fire(self, _request: Optional[Request] = None) -> None:
        """Segment done (called by the queueing server's completion)."""
        self.index += 1
        model = self.model
        if self.index < len(self.segments):
            # blocked on the remote call, holding no CPU
            if model.span_sink is not None:
                model.span_sink.node_demand(self.req_id, 0, 0, self.rtt)
            model.engine.after(self.rtt, self._offer_segment)
            return
        model.active -= 1
        model.completed += 1
        model.recorder.record(model.engine._now - self.arrived)
        if self.on_done is not None:
            self.on_done()

class RpcServerModel:
    """One server instance executing segmented requests.

    ``resident_threads`` (``None`` by default, set by the cluster
    layer) models a thread-per-connection worker pool: that many
    software threads stay resident on the node even when idle, and the
    sw-threads per-transition overhead is charged at crowd =
    ``resident_threads`` + concurrently active requests (see
    :meth:`ServerDesign.transition_overhead_cycles`). Cluster nodes
    size the pool to their fan-in -- peers times connections per peer
    -- which is how the transition tax grows with cluster size while
    hw-threads, with per-context hardware state, stays flat. ``None``
    disables crowding entirely (the single-server E09 model).
    """

    def __init__(self, engine: Engine, design: ServerDesign,
                 costs: Optional[CostModel] = None, cores: int = 1,
                 resident_threads: Optional[int] = None):
        if cores < 1:
            raise ConfigError(f"cores must be >= 1, got {cores}")
        self.engine = engine
        self.design = design
        self.costs = costs or CostModel()
        if resident_threads is not None and resident_threads < 0:
            raise ConfigError(
                f"resident_threads must be >= 0, got {resident_threads}")
        self.cores = cores
        self.resident_threads = resident_threads
        self.recorder = LatencyRecorder(f"{design.name}.latency")
        self.completed = 0
        self.active = 0
        self.peak_concurrency = 0
        #: distributed-tracing sink (a SpanStore); set by the cluster
        #: node when request tracing is active, else stays None
        self.span_sink = None
        if design.discipline == "ps":
            self.cpu: QueueingServer = ProcessorSharingServer(
                engine, name=f"{design.name}.cpu", servers=cores)
        elif design.discipline == "fifo":
            if cores != 1:
                raise ConfigError(
                    "the event loop is single-threaded by definition")
            self.cpu = FifoServer(engine, name=f"{design.name}.cpu")
        else:
            raise ConfigError(f"unknown discipline {design.discipline!r}")
        self._seg_counter = 0
        # transition_overhead_cycles is pure in (design, costs, crowd)
        # and both are fixed per model, so memoize per crowd level
        self._overhead_cache: dict = {}

    # ------------------------------------------------------------------
    def submit(self, request_id: int, segment_cycles: list,
               rtt_cycles: int,
               on_done: Optional[Callable[[], None]] = None) -> None:
        """A request arrives now with the given CPU segments.

        ``on_done`` (if given) is called when the last segment
        completes -- the cluster layer uses it to send the response
        back over the fabric without polling.
        """
        if not segment_cycles:
            raise ConfigError("request needs at least one segment")
        handler = _InflightRequest(self, request_id, list(segment_cycles),
                                   rtt_cycles, on_done)
        # kick off on the next event boundary at the current time -- the
        # same interleaving discipline Engine.spawn applied here before
        # the coroutine-per-request path was retired
        self.engine.at(self.engine.now, handler.start)

    def segment_overhead_cycles(self) -> int:
        """Per-transition overhead at the *current* crowding level."""
        crowd = 0
        if self.resident_threads is not None:
            crowd = self.resident_threads + max(self.active - 1, 0)
        cached = self._overhead_cache.get(crowd)
        if cached is None:
            cached = self.design.transition_overhead_cycles(self.costs,
                                                            crowd=crowd)
            self._overhead_cache[crowd] = cached
        return cached

    # ------------------------------------------------------------------
    def cpu_busy_cycles(self) -> int:
        return int(self.cpu.busy_cycles)


class RpcWorkload:
    """Open-loop driver: requests arrive per ``arrivals``, each with
    ``segments`` CPU bursts from ``service`` and fixed ``rtt_cycles``."""

    def __init__(self, engine: Engine, server: RpcServerModel,
                 arrivals: ArrivalProcess, service: ServiceDistribution,
                 rng: random.Random, segments: int = 3,
                 rtt_cycles: int = 15_000, max_requests: int = 2_000):
        if segments < 1:
            raise ConfigError("need at least one segment")
        if max_requests < 1:
            raise ConfigError("need at least one request")
        self.engine = engine
        self.server = server
        self.arrivals = arrivals
        self.service = service
        self.rng = rng
        self.segments = segments
        self.rtt_cycles = rtt_cycles
        self.max_requests = max_requests
        self.issued = 0
        self._schedule()

    def _schedule(self) -> None:
        gaps = self.arrivals.gaps(self.rng)

        def next_arrival() -> None:
            if self.issued >= self.max_requests:
                return
            self.engine.after(max(1, int(round(next(gaps)))), arrive)

        def arrive() -> None:
            self.issued += 1
            # split one service draw across the segments
            total = max(float(self.segments), self.service.sample(self.rng))
            per_segment = [total / self.segments] * self.segments
            self.server.submit(self.issued, per_segment, self.rtt_cycles)
            next_arrival()

        next_arrival()

    # ------------------------------------------------------------------
    def cpu_demand_per_request(self) -> float:
        """Mean CPU cycles one request needs, including overheads."""
        overhead = self.server.design.transition_overhead_cycles(
            self.server.costs)
        return self.service.mean() + self.segments * overhead
