"""Distributed-programming models: how an RPC server hides I/O latency.

Section 2 ("Simpler Distributed Programming"): distributed applications
today pick between "event-based models [that] are more difficult to
work with" and software threads whose multiplexing "requires frequent
scheduler interaction". With many hardware threads, "developers can
assign one hardware thread per request and use simple blocking I/O
semantics without suffering from significant thread scheduling
overheads".

:mod:`repro.distributed.rpc` implements the three server designs over a
common workload -- requests with CPU segments separated by remote calls
-- so E09 can compare throughput and tail latency at equal offered load.
"""

from repro.distributed.rpc import (
    EVENT_LOOP,
    HW_THREADS,
    SW_THREADS,
    RpcServerModel,
    RpcWorkload,
    ServerDesign,
)

__all__ = [
    "ServerDesign",
    "HW_THREADS",
    "SW_THREADS",
    "EVENT_LOOP",
    "RpcServerModel",
    "RpcWorkload",
]
