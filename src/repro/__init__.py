"""repro: behavioral reproduction of *A Case Against (Most) Context Switches*.

The package implements the HotOS '21 proposal by Humphries, Kaffes,
Mazières, and Kozyrakis as a pure-Python behavioral simulator:

- :mod:`repro.sim` -- the discrete-event engine everything runs on.
- :mod:`repro.arch` -- architectural state, register footprints, cost model.
- :mod:`repro.isa` -- a small base ISA plus the paper's seven proposed
  instructions (``monitor``/``mwait``, ``start``/``stop``, ``rpull``/
  ``rpush``, ``invtid``).
- :mod:`repro.hw` -- the hardware threading model: ptids, the thread
  descriptor table (TDT), SMT issue, the thread-state storage hierarchy.
- :mod:`repro.mem` -- memory, caches, the generalized write-watch bus, DMA.
- :mod:`repro.devices` -- NIC, APIC timer, SSD, MSI-X translation.
- :mod:`repro.kernel` -- the baseline context-switching kernel and the
  hardware-thread kernel built on the new model.
- :mod:`repro.hypervisor`, :mod:`repro.microkernel`,
  :mod:`repro.distributed` -- the paper's Section 2 use cases.
- :mod:`repro.workloads`, :mod:`repro.analysis`,
  :mod:`repro.experiments` -- evaluation harness (experiments E01-E12).

Quickstart::

    from repro import build_machine
    machine = build_machine(cores=1, hw_threads_per_core=64)

See ``examples/quickstart.py`` for a complete runnable tour.
"""

from repro._version import __version__
from repro.machine import Machine, MachineConfig, build_machine

__all__ = [
    "Machine",
    "MachineConfig",
    "build_machine",
    "__version__",
]
