"""An untrusted hypervisor, on the ISA-level machine.

Section 2 ("Untrusted Hypervisors"): "With many hardware threads per
core, a hypervisor could be isolated in its own unprivileged hardware
thread. VM-exits would stop the virtual machine's hardware thread and
start the hypervisor's hardware thread. ... Thus, hypervisors still
provide the same functionality with the same performance without
privileged access to the kernel or the hardware."

The demo builds exactly that configuration with *no supervisor-mode
code in the serving path*:

- ptid 0 (guest, user mode): computes, then executes a privileged
  instruction; the hardware writes an exception descriptor to the
  guest's ``edp`` and disables the guest.
- ptid 1 (hypervisor, **user mode**): monitors the guest's edp line,
  wakes on the descriptor write, emulates the instruction, acknowledges
  the descriptor, and restarts the guest -- authorized purely by a TDT
  entry, not by a privilege ring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.tdt import Permission
from repro.machine import Machine, build_machine

GUEST_PTID = 0
HV_PTID = 1

_GUEST_ASM = """
    movi r1, 0
    movi r2, ITERS
loop:
    work GUEST_WORK
    privop 7
    addi r1, r1, 1
    blt r1, r2, loop
    movi r3, DONE
    movi r4, 1
    st r3, 0, r4
    halt
"""

_HV_ASM = """
hv_loop:
    movi r1, EDP
    monitor r1
    movi r5, DONE
    monitor r5
    mwait
    ld r6, r5, 0
    bne r6, r0, hv_done
    ld r2, r1, 0
    beq r2, r0, hv_loop
    work HANDLER_WORK
    st r1, 0, r0
    start GUEST_VTID
    jmp hv_loop
hv_done:
    halt
"""


@dataclass(frozen=True)
class UntrustedHvResult:
    """What one run of the demo produced."""

    exits_handled: int
    guest_iterations: int
    wall_cycles: int
    guest_work_cycles: int
    hv_ran_privileged: bool  # always False: the point of the demo

    @property
    def slowdown(self) -> float:
        return self.wall_cycles / max(self.guest_work_cycles, 1)


class UntrustedHypervisorDemo:
    """Builds and runs the guest + unprivileged-hypervisor machine."""

    def __init__(self, iterations: int = 10, guest_work_cycles: int = 2_000,
                 handler_work_cycles: int = 400, **machine_overrides):
        if iterations < 1:
            raise ConfigError("need at least one guest iteration")
        self.iterations = iterations
        self.guest_work_cycles = guest_work_cycles
        self.handler_work_cycles = handler_work_cycles
        self.machine = build_machine(**machine_overrides)
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        machine = self.machine
        self.edp = machine.alloc("guest-edp", 64)
        self.done = machine.alloc("guest-done", 64)
        # The TDT grants the unprivileged hypervisor full control over
        # the guest: vtid 0 -> guest ptid, all four permission bits.
        tdt = machine.build_tdt("hv-tdt", {0: (GUEST_PTID, Permission.ALL)})
        symbols = {
            "ITERS": self.iterations,
            "GUEST_WORK": self.guest_work_cycles,
            "HANDLER_WORK": self.handler_work_cycles,
            "EDP": self.edp.base,
            "DONE": self.done.base,
            "GUEST_VTID": 0,
        }
        machine.load_asm(GUEST_PTID, _GUEST_ASM, symbols=symbols,
                         supervisor=False, edp=self.edp.base, name="guest")
        machine.load_asm(HV_PTID, _HV_ASM, symbols=symbols,
                         supervisor=False, tdtr=tdt.base, name="hypervisor")

    # ------------------------------------------------------------------
    def run(self, until: int = 10_000_000) -> UntrustedHvResult:
        machine = self.machine
        finish_time = {"at": 0}
        done_watch = machine.memory.watch_bus.watch(self.done.base,
                                                    owner="demo-finish")
        done_watch.signal.add_waiter(
            lambda _info: finish_time.update(at=machine.engine.now))
        machine.boot(GUEST_PTID)
        machine.boot(HV_PTID)
        machine.run(until=until)
        machine.check()
        guest = machine.thread(GUEST_PTID)
        hv = machine.thread(HV_PTID)
        if not guest.finished:
            raise ConfigError(
                f"guest did not finish within {until} cycles "
                f"(iterations={guest.arch.read('r1')})")
        return UntrustedHvResult(
            exits_handled=guest.starts,
            guest_iterations=guest.arch.read("r1"),
            wall_cycles=finish_time["at"],
            guest_work_cycles=self.iterations * self.guest_work_cycles,
            hv_ran_privileged=hv.supervisor,
        )


def run_permission_matrix(**machine_overrides) -> dict:
    """The non-hierarchical privilege example of Section 3.2.

    "thread B might have permission to stop thread A, and thread C
    might have permission to stop thread B, but thread C does not
    necessarily have any permission over thread A. Such a configuration
    is impossible in existing protection-ring-based designs."

    Returns a dict of outcome booleans: ``b_stopped_a``, ``c_stopped_b``,
    ``c_stopped_a`` (the last must be False: C faults instead).
    """
    machine: Machine = build_machine(**machine_overrides)
    # ptids: A=0, B=1, C=2. Each stopper uses vtid 0 in its own table.
    tdt_b = machine.build_tdt("tdt-b", {0: (0, Permission.STOP)})
    tdt_c = machine.build_tdt("tdt-c", {0: (1, Permission.STOP),
                                        1: (0, Permission.NONE)})
    edp_c = machine.alloc("edp-c", 64)
    # A spins forever; B stops A; C stops B then tries to stop A (vtid 1
    # in C's table, which is the invalid all-zero-permission row).
    machine.load_asm(0, "spin:\n    jmp spin", supervisor=False, name="A")
    machine.load_asm(1, """
        stop 0
        halt
    """, supervisor=False, tdtr=tdt_b.base, name="B")
    machine.load_asm(2, """
        work 50
        stop 0
        stop 1
        halt
    """, supervisor=False, tdtr=tdt_c.base, edp=edp_c.base, name="C")
    machine.boot(0)
    machine.boot(1)
    machine.boot(2)
    machine.run(until=100_000)
    machine.check()
    from repro.hw.exceptions import ExceptionDescriptor, descriptor_present
    a, b, c = machine.thread(0), machine.thread(1), machine.thread(2)
    c_faulted = descriptor_present(machine.memory, edp_c.base)
    fault_kind = (ExceptionDescriptor.read(machine.memory, edp_c.base).kind.name
                  if c_faulted else None)
    return {
        "b_stopped_a": a.stops >= 1 and not a.runnable,
        "c_stopped_b": b.stops >= 1,
        "c_stopped_a": a.stops >= 2,
        "c_faulted": c_faulted,
        "c_fault_kind": fault_kind,
    }
