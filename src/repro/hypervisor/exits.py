"""VM-exit cost models and the guest that drives them.

Three ways to leave a virtual machine:

- :class:`InThreadExitPath` -- the hardware VMX transition: save/restore
  guest state within the same hardware thread ("hundreds of
  nanoseconds", Agesen et al. [20]). The guest is frozen for the whole
  round trip.
- :class:`SplitXExitPath` -- SplitX [53]: ship the exit to a hypervisor
  core over shared memory. No VMX transition, but cross-core
  communication plus queueing at the hypervisor core; the guest still
  blocks for synchronous exits.
- :class:`HwThreadExitPath` -- the proposal: the exit stops the guest
  ptid and starts the root-mode ptid on the same core; handling ends
  with a start of the guest ptid. Cost is two ptid starts plus a stop.

:class:`GuestVm` runs a fixed amount of guest work punctuated by exits
and reports the slowdown relative to exit-free execution -- the shape
E05 reproduces.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from typing import Deque, Optional, Tuple

from repro.analysis.stats import LatencyRecorder
from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.process import Signal


class ExitReason(enum.Enum):
    """Why the guest exited (Section 2's examples)."""

    VMCALL = "vmcall"          # explicit hypercall
    WRMSR = "wrmsr"            # privileged instruction
    IO = "io"                  # device access
    EPT_FAULT = "ept-fault"    # nested page fault
    EXTERNAL = "external"      # interrupt delivered to root mode


class InThreadExitPath:
    """Baseline: VMX root-mode transition in the same hardware thread."""

    name = "in-thread"

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None):
        self.engine = engine
        self.costs = costs or CostModel()
        self.exits = 0

    def overhead_cycles(self) -> int:
        """Per-exit overhead excluding handler work (exit + resume)."""
        return self.costs.vm_exit_cycles

    def exit(self, reason: ExitReason, handler_work_cycles: int):
        """Sub-generator: one synchronous exit (guest blocked)."""
        self.exits += 1
        yield self.overhead_cycles() + max(1, handler_work_cycles)


class SplitXExitPath:
    """SplitX: exits shipped to a dedicated hypervisor core.

    The guest writes an exit record into shared memory (cheap), the
    hypervisor core picks it up, handles it, and writes the reply. Per
    exit the guest pays two one-way communication delays plus queueing
    at the single hypervisor core -- fine until the hypervisor core
    saturates, which is SplitX's scaling limit (it also permanently
    consumes that core).
    """

    name = "splitx"

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 comm_cycles: int = 200):
        if comm_cycles < 1:
            raise ConfigError("communication cost must be >= 1 cycle")
        self.engine = engine
        self.costs = costs or CostModel()
        self.comm_cycles = comm_cycles
        self.exits = 0
        self.hv_core_busy_cycles = 0
        self._queue: Deque[Tuple[int, Signal]] = deque()
        self._arrival = Signal("splitx.arrival")
        engine.spawn(self._hypervisor_core(), name="splitx.hvcore")

    def overhead_cycles(self) -> int:
        """Per-exit overhead excluding handler work and queueing."""
        return 2 * self.comm_cycles

    def exit(self, reason: ExitReason, handler_work_cycles: int):
        """Sub-generator: ship the exit and wait for the reply."""
        self.exits += 1
        yield self.comm_cycles  # request cacheline travels to the hv core
        done = Signal("splitx.done")
        self._queue.append((max(1, handler_work_cycles), done))
        self._arrival.fire()
        yield done
        yield self.comm_cycles  # reply travels back

    def _hypervisor_core(self):
        while True:
            while not self._queue:
                yield self._arrival
            work, done = self._queue.popleft()
            yield work
            self.hv_core_busy_cycles += work
            done.fire()


class HwThreadExitPath:
    """Proposed: stop the guest ptid, start the root-mode ptid.

    "VM-exits would stop the virtual machine's hardware thread and
    start the hypervisor's hardware thread." Completion restarts the
    guest ptid, so the round trip is stop + start + work + start.
    """

    name = "hw-thread"

    def __init__(self, engine: Engine, costs: Optional[CostModel] = None,
                 tier: str = "rf"):
        if tier not in ("rf", "l2", "l3"):
            raise ConfigError(f"unknown storage tier {tier!r}")
        self.engine = engine
        self.costs = costs or CostModel()
        self.tier = tier
        self.exits = 0

    def overhead_cycles(self) -> int:
        start = self.costs.hw_start_cycles(self.tier)
        return self.costs.hw_stop_cycles + 2 * start

    def exit(self, reason: ExitReason, handler_work_cycles: int):
        """Sub-generator: one exit via ptid stop/start."""
        self.exits += 1
        yield self.overhead_cycles() + max(1, handler_work_cycles)


class GuestVm:
    """A guest that computes and exits, for measuring slowdown.

    Executes ``total_work_cycles`` of guest compute; every
    ``exit_interval_cycles`` (exponentially distributed around that
    mean when ``rng`` is given) it takes an exit with
    ``handler_work_cycles`` of hypervisor work. The run reports the
    per-exit latency distribution and the slowdown factor
    ``wall_clock / total_work``.
    """

    def __init__(self, engine: Engine, path, total_work_cycles: int,
                 exit_interval_cycles: int, handler_work_cycles: int = 400,
                 reason: ExitReason = ExitReason.VMCALL,
                 rng: Optional[random.Random] = None,
                 name: str = "guest"):
        if total_work_cycles < 1 or exit_interval_cycles < 1:
            raise ConfigError("work and interval must be positive")
        self.engine = engine
        self.path = path
        self.total_work_cycles = total_work_cycles
        self.exit_interval_cycles = exit_interval_cycles
        self.handler_work_cycles = handler_work_cycles
        self.reason = reason
        self.rng = rng
        self.name = name
        self.exit_recorder = LatencyRecorder(f"{name}.exit")
        self.started_at = engine.now
        self.finished_at: Optional[int] = None
        self.process = engine.spawn(self._run(), name=name)

    def _next_interval(self) -> int:
        if self.rng is None:
            return self.exit_interval_cycles
        return max(1, int(self.rng.expovariate(1.0 / self.exit_interval_cycles)))

    def _run(self):
        remaining = self.total_work_cycles
        while remaining > 0:
            burst = min(remaining, self._next_interval())
            yield burst
            remaining -= burst
            if remaining <= 0:
                break
            exit_started = self.engine.now
            yield from self.path.exit(self.reason, self.handler_work_cycles)
            self.exit_recorder.record(self.engine.now - exit_started)
        self.finished_at = self.engine.now

    # ------------------------------------------------------------------
    def wall_cycles(self) -> int:
        if self.finished_at is None:
            raise ConfigError(f"guest {self.name} not finished")
        return self.finished_at - self.started_at

    def slowdown(self) -> float:
        """Wall clock / useful guest work (1.0 = no virtualization tax)."""
        return self.wall_cycles() / self.total_work_cycles
