"""Multiple guests reporting exceptions to one hypervisor ptid.

Section 3.2: "In some cases, multiple ptids will need to report their
exceptions to the same hypervisor ptid, requiring a software-based
queuing design."

The queuing design implemented here keeps one exception-descriptor area
per guest and has the hypervisor monitor *all* of them at once (the ISA
allows it: "A hardware thread can monitor multiple memory locations").
On wakeup the hypervisor scans the descriptor slots round-robin,
services every present descriptor, and re-arms -- so bursts from
several guests coalesce into one wakeup, and no descriptor is lost
because each guest stays disabled until its own slot is acknowledged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.hw.tdt import Permission
from repro.machine import build_machine

_GUEST_ASM = """
    movi r1, 0
    movi r2, ITERS
loop:
    work GUEST_WORK
    privop 7
    addi r1, r1, 1
    blt r1, r2, loop
    movi r3, DONE
    movi r4, 1
    st r3, 0, r4
    halt
"""

# The hypervisor: monitor every guest edp + every done word; on wakeup
# scan the edp slots, emulate + ack + restart each faulted guest, and
# exit when every guest has signalled done.
_HV_PROLOGUE = """
hv_loop:
"""

_HV_MONITOR_SLOT = """
    movi r1, EDP{i}
    monitor r1
    movi r1, DONE{i}
    monitor r1
"""

_HV_SCAN_SLOT = """
    movi r1, EDP{i}
    ld r2, r1, 0
    beq r2, r0, skip{i}
    work HANDLER_WORK
    st r1, 0, r0
    start {i}
skip{i}:
"""

_HV_CHECK_DONE = """
    movi r4, 0
"""

_HV_SUM_DONE_SLOT = """
    movi r1, DONE{i}
    ld r2, r1, 0
    add r4, r4, r2
"""

_HV_EPILOGUE = """
    movi r5, NGUESTS
    blt r4, r5, hv_loop
    halt
"""


def _hv_program(num_guests: int) -> str:
    parts = [_HV_PROLOGUE]
    for i in range(num_guests):
        parts.append(_HV_MONITOR_SLOT.format(i=i))
    parts.append("    mwait\n")
    for i in range(num_guests):
        parts.append(_HV_SCAN_SLOT.format(i=i))
    parts.append(_HV_CHECK_DONE)
    for i in range(num_guests):
        parts.append(_HV_SUM_DONE_SLOT.format(i=i))
    parts.append(_HV_EPILOGUE)
    return "".join(parts)


@dataclass(frozen=True)
class MultiGuestResult:
    """Outcome of one multi-guest run."""

    guests: int
    exits_handled_per_guest: List[int]
    hv_wakeups: int
    wall_cycles: int

    @property
    def total_exits(self) -> int:
        return sum(self.exits_handled_per_guest)

    @property
    def coalescing_ratio(self) -> float:
        """Exits serviced per hypervisor wakeup (>1 = bursts coalesced)."""
        return self.total_exits / max(self.hv_wakeups, 1)


class MultiGuestHypervisor:
    """N guest ptids, one unprivileged hypervisor ptid, one core."""

    def __init__(self, guests: int = 2, iterations: int = 5,
                 guest_work_cycles: int = 1_500,
                 handler_work_cycles: int = 300, **machine_overrides):
        if guests < 1:
            raise ConfigError("need at least one guest")
        if iterations < 1:
            raise ConfigError("need at least one iteration")
        self.guests = guests
        self.iterations = iterations
        self.guest_work_cycles = guest_work_cycles
        self.handler_work_cycles = handler_work_cycles
        overrides = dict(machine_overrides)
        overrides.setdefault("hw_threads_per_core", max(64, guests + 2))
        self.machine = build_machine(**overrides)
        self._build()

    def _build(self) -> None:
        machine = self.machine
        self.hv_ptid = self.guests  # guests occupy ptids 0..N-1
        self.edps = [machine.alloc(f"edp{i}", 64) for i in range(self.guests)]
        self.dones = [machine.alloc(f"done{i}", 64)
                      for i in range(self.guests)]
        tdt = machine.build_tdt(
            "mg-tdt", {i: (i, Permission.ALL) for i in range(self.guests)})
        symbols = {
            "ITERS": self.iterations,
            "GUEST_WORK": self.guest_work_cycles,
            "HANDLER_WORK": self.handler_work_cycles,
            "NGUESTS": self.guests,
        }
        for i in range(self.guests):
            symbols[f"EDP{i}"] = self.edps[i].base
            symbols[f"DONE{i}"] = self.dones[i].base
        for i in range(self.guests):
            machine.load_asm(
                i, _GUEST_ASM,
                symbols={**symbols, "DONE": self.dones[i].base},
                supervisor=False, edp=self.edps[i].base, name=f"guest{i}")
        machine.load_asm(self.hv_ptid, _hv_program(self.guests),
                         symbols=symbols, supervisor=False, tdtr=tdt.base,
                         name="hypervisor")

    def run(self, until: int = 50_000_000) -> MultiGuestResult:
        machine = self.machine
        finish = {"at": 0}
        for done in self.dones:
            machine.memory.watch_bus.subscribe(
                done.base,
                lambda _info: finish.update(at=machine.engine.now),
                owner="mg-finish")
        for i in range(self.guests):
            machine.boot(i)
        machine.boot(self.hv_ptid)
        machine.run(until=until)
        machine.check()
        unfinished = [i for i in range(self.guests)
                      if not machine.thread(i).finished]
        if unfinished:
            raise ConfigError(
                f"guests {unfinished} did not finish within {until} cycles")
        hv = machine.thread(self.hv_ptid)
        return MultiGuestResult(
            guests=self.guests,
            exits_handled_per_guest=[machine.thread(i).starts
                                     for i in range(self.guests)],
            hv_wakeups=hv.wakeups,
            wall_cycles=finish["at"],
        )
