"""Hypervisor models: VM-exits with and without context switches.

Section 2 makes two claims about virtualization:

1. **"No VM-Exits"** -- instead of "wast[ing] hundreds of nanoseconds
   context-switching to root-mode in the same hardware thread", an exit
   "can simply make a specialized root-mode hardware thread runnable".
   :mod:`repro.hypervisor.exits` implements the three designs the paper
   contrasts: in-thread root-mode switches (KVM), SplitX-style remote
   cores, and dedicated hardware threads.
2. **"Untrusted Hypervisors"** -- the hypervisor can live in an
   *unprivileged* hardware thread and still be fast, because VM-exits
   are just stop(guest)+start(hypervisor) and the TDT grants it
   non-hierarchical control over exactly its guests.
   :mod:`repro.hypervisor.untrusted` builds that configuration on the
   ISA-level machine.
"""

from repro.hypervisor.exits import (
    ExitReason,
    GuestVm,
    HwThreadExitPath,
    InThreadExitPath,
    SplitXExitPath,
)
from repro.hypervisor.untrusted import UntrustedHypervisorDemo

__all__ = [
    "ExitReason",
    "InThreadExitPath",
    "SplitXExitPath",
    "HwThreadExitPath",
    "GuestVm",
    "UntrustedHypervisorDemo",
]
