"""Arrival processes.

Every process yields inter-arrival gaps in cycles from :meth:`gaps`;
the consumer (a device model or an experiment driver) adds them to the
current simulation time. All randomness comes from the caller-supplied
``random.Random`` so experiments stay reproducible under
:class:`~repro.sim.rng.RngStreams`.
"""

from __future__ import annotations

import abc
import random
from typing import Iterator

from repro.errors import ConfigError


class ArrivalProcess(abc.ABC):
    """Generator of inter-arrival gaps (cycles, float)."""

    @abc.abstractmethod
    def gaps(self, rng: random.Random) -> Iterator[float]:
        """Yield successive inter-arrival gaps in cycles."""

    @abc.abstractmethod
    def mean_gap_cycles(self) -> float:
        """The long-run mean gap, for load computations."""

    def rate_per_cycle(self) -> float:
        """Long-run arrival rate in events per cycle."""
        return 1.0 / self.mean_gap_cycles()


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate.

    The open-loop process used for the I/O experiments (E02/E03): NIC
    RX, SSD completions, and RPC request streams are classically modeled
    as Poisson.
    """

    def __init__(self, mean_gap_cycles: float):
        if mean_gap_cycles <= 0:
            raise ConfigError(
                f"mean gap must be positive, got {mean_gap_cycles}")
        self._mean = float(mean_gap_cycles)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        while True:
            yield rng.expovariate(1.0 / self._mean)

    def mean_gap_cycles(self) -> float:
        return self._mean

    def __repr__(self) -> str:  # pragma: no cover
        return f"PoissonArrivals(mean_gap={self._mean:.1f})"


class DeterministicArrivals(ArrivalProcess):
    """Fixed-period arrivals -- the APIC timer of Section 2.

    ("the timer in the local APIC writes to the memory address that its
    target hardware thread is waiting on" -- a strictly periodic source.)
    """

    def __init__(self, period_cycles: float):
        if period_cycles <= 0:
            raise ConfigError(f"period must be positive, got {period_cycles}")
        self.period = float(period_cycles)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        while True:
            yield self.period

    def mean_gap_cycles(self) -> float:
        return self.period

    def __repr__(self) -> str:  # pragma: no cover
        return f"DeterministicArrivals(period={self.period:.1f})"


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    Alternates between a *burst* state (fast arrivals) and an *idle*
    state (slow arrivals), with geometrically distributed state lengths.
    Models the "varying I/O load" that Section 2 says complicates core
    allocation for polling designs.
    """

    def __init__(self, burst_gap_cycles: float, idle_gap_cycles: float,
                 mean_burst_events: float = 16.0,
                 mean_idle_events: float = 4.0):
        if burst_gap_cycles <= 0 or idle_gap_cycles <= 0:
            raise ConfigError("gaps must be positive")
        if burst_gap_cycles > idle_gap_cycles:
            raise ConfigError("burst gap must not exceed idle gap")
        if mean_burst_events < 1 or mean_idle_events < 1:
            raise ConfigError("mean state lengths must be >= 1 event")
        self.burst_gap = float(burst_gap_cycles)
        self.idle_gap = float(idle_gap_cycles)
        self.mean_burst_events = float(mean_burst_events)
        self.mean_idle_events = float(mean_idle_events)

    def gaps(self, rng: random.Random) -> Iterator[float]:
        in_burst = True
        while True:
            mean_gap = self.burst_gap if in_burst else self.idle_gap
            leave_prob = 1.0 / (self.mean_burst_events if in_burst
                                else self.mean_idle_events)
            yield rng.expovariate(1.0 / mean_gap)
            if rng.random() < leave_prob:
                in_burst = not in_burst

    def mean_gap_cycles(self) -> float:
        # time-weighted by expected events per state visit
        total_events = self.mean_burst_events + self.mean_idle_events
        total_time = (self.mean_burst_events * self.burst_gap
                      + self.mean_idle_events * self.idle_gap)
        return total_time / total_events

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BurstyArrivals(burst={self.burst_gap:.1f},"
                f" idle={self.idle_gap:.1f})")
