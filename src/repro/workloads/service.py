"""Service-time distributions with controllable variability.

Section 4 of the paper: "The combination of PS scheduling with
thread-per-request will actually provide superior performance for
server workloads with high execution-time variability [46, 80]."
Experiment E12 sweeps that variability; these distributions provide it
with known means and squared coefficients of variation (SCV).
"""

from __future__ import annotations

import abc
import math
import random

from repro.errors import ConfigError


class ServiceDistribution(abc.ABC):
    """A positive service-time distribution (cycles)."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one service time in cycles."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected service time in cycles."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of the service time."""

    def scv(self) -> float:
        """Squared coefficient of variation (variance / mean^2)."""
        mu = self.mean()
        return self.variance() / (mu * mu)

    def cv(self) -> float:
        """Coefficient of variation."""
        return math.sqrt(self.scv())


class Constant(ServiceDistribution):
    """Deterministic service time (SCV = 0)."""

    def __init__(self, cycles: float):
        if cycles <= 0:
            raise ConfigError(f"service time must be positive, got {cycles}")
        self.cycles = float(cycles)

    def sample(self, rng: random.Random) -> float:
        return self.cycles

    def mean(self) -> float:
        return self.cycles

    def variance(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Constant({self.cycles:.0f})"


class Exponential(ServiceDistribution):
    """Exponential service time (SCV = 1) -- the M/M/1 reference point."""

    def __init__(self, mean_cycles: float):
        if mean_cycles <= 0:
            raise ConfigError(f"mean must be positive, got {mean_cycles}")
        self._mean = float(mean_cycles)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        return self._mean * self._mean

    def __repr__(self) -> str:  # pragma: no cover
        return f"Exponential(mean={self._mean:.0f})"


class Bimodal(ServiceDistribution):
    """Short requests with occasional long ones.

    The canonical high-variability server workload (Shinjuku [46] uses
    exactly this shape): probability ``p_long`` of a ``long_cycles``
    request, otherwise ``short_cycles``.
    """

    def __init__(self, short_cycles: float, long_cycles: float,
                 p_long: float = 0.01):
        if short_cycles <= 0 or long_cycles <= 0:
            raise ConfigError("service times must be positive")
        if short_cycles >= long_cycles:
            raise ConfigError("short must be strictly less than long")
        if not 0.0 < p_long < 1.0:
            raise ConfigError(f"p_long must be in (0,1), got {p_long}")
        self.short = float(short_cycles)
        self.long = float(long_cycles)
        self.p_long = float(p_long)

    def sample(self, rng: random.Random) -> float:
        return self.long if rng.random() < self.p_long else self.short

    def mean(self) -> float:
        return self.p_long * self.long + (1.0 - self.p_long) * self.short

    def variance(self) -> float:
        mu = self.mean()
        second = (self.p_long * self.long ** 2
                  + (1.0 - self.p_long) * self.short ** 2)
        return second - mu * mu

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Bimodal(short={self.short:.0f}, long={self.long:.0f},"
                f" p={self.p_long})")


class BoundedPareto(ServiceDistribution):
    """Heavy-tailed service times truncated at ``upper``.

    The "high execution-time variability" regime taken to its extreme;
    bounding keeps the simulation finite and the mean well-defined for
    any shape parameter.
    """

    def __init__(self, lower: float, upper: float, shape: float = 1.1):
        if lower <= 0 or upper <= lower:
            raise ConfigError("need 0 < lower < upper")
        if shape <= 0:
            raise ConfigError(f"shape must be positive, got {shape}")
        self.lower = float(lower)
        self.upper = float(upper)
        self.shape = float(shape)

    def sample(self, rng: random.Random) -> float:
        # inverse-CDF sampling of the truncated Pareto
        a, l, h = self.shape, self.lower, self.upper
        u = rng.random()
        denom = 1.0 - u * (1.0 - (l / h) ** a)
        return l / denom ** (1.0 / a)

    def _raw_moment(self, k: int) -> float:
        a, l, h = self.shape, self.lower, self.upper
        norm = 1.0 - (l / h) ** a
        if abs(a - k) < 1e-12:
            return a * l ** a * math.log(h / l) / norm
        return (a * l ** a / (a - k)
                * (l ** (k - a) - h ** (k - a)) / norm)

    def mean(self) -> float:
        return self._raw_moment(1)

    def variance(self) -> float:
        mu = self.mean()
        return self._raw_moment(2) - mu * mu

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BoundedPareto({self.lower:.0f}, {self.upper:.0f},"
                f" shape={self.shape})")


class LogNormal(ServiceDistribution):
    """Lognormal service time parameterized by mean and SCV.

    Convenient for sweeping variability at a fixed mean: E12 holds the
    mean constant and walks SCV from 0.25 to 16.
    """

    def __init__(self, mean_cycles: float, scv: float = 1.0):
        if mean_cycles <= 0:
            raise ConfigError(f"mean must be positive, got {mean_cycles}")
        if scv <= 0:
            raise ConfigError(f"scv must be positive, got {scv}")
        self._mean = float(mean_cycles)
        self._scv = float(scv)
        self._sigma2 = math.log(1.0 + scv)
        self._mu = math.log(mean_cycles) - self._sigma2 / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, math.sqrt(self._sigma2))

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        return self._scv * self._mean * self._mean

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogNormal(mean={self._mean:.0f}, scv={self._scv})"
