"""Request records and the arrival+service generator.

A :class:`Request` carries the timestamps every experiment needs to
compute latency percentiles: when it arrived, when service began, when
it finished. :class:`RequestGenerator` pre-draws a whole trace so the
same requests can be replayed against *different* systems (baseline vs
proposed) -- paired comparison removes sampling noise from the "who
wins" question, which is the paper's actual claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import ConfigError
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.service import ServiceDistribution


@dataclass
class Request:
    """One unit of work flowing through a simulated system."""

    req_id: int
    arrival_time: float
    service_cycles: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    payload: dict = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Sojourn time: finish - arrival. Raises if not finished."""
        if self.finish_time is None:
            raise ConfigError(f"request {self.req_id} not finished")
        return self.finish_time - self.arrival_time

    @property
    def waiting_time(self) -> float:
        """Queueing delay before service began."""
        if self.start_time is None:
            raise ConfigError(f"request {self.req_id} never started")
        return self.start_time - self.arrival_time

    @property
    def slowdown(self) -> float:
        """Latency normalized by service demand."""
        return self.latency / self.service_cycles


class RequestGenerator:
    """Binds an arrival process to a service distribution."""

    def __init__(self, arrivals: ArrivalProcess,
                 service: ServiceDistribution,
                 rng: random.Random):
        self.arrivals = arrivals
        self.service = service
        self.rng = rng

    def trace(self, count: int, start_time: float = 0.0) -> List[Request]:
        """Pre-draw ``count`` requests with absolute arrival times."""
        if count < 1:
            raise ConfigError(f"need at least one request, got {count}")
        gaps = self.arrivals.gaps(self.rng)
        now = float(start_time)
        out: List[Request] = []
        for req_id in range(count):
            now += next(gaps)
            out.append(Request(req_id=req_id, arrival_time=now,
                               service_cycles=self.service.sample(self.rng)))
        return out

    def stream(self, start_time: float = 0.0) -> Iterator[Request]:
        """Unbounded request stream (for duration-bounded runs)."""
        gaps = self.arrivals.gaps(self.rng)
        now = float(start_time)
        req_id = 0
        while True:
            now += next(gaps)
            yield Request(req_id=req_id, arrival_time=now,
                          service_cycles=self.service.sample(self.rng))
            req_id += 1

    def offered_load(self) -> float:
        """rho = arrival rate x mean service time (single server)."""
        return offered_load(self.arrivals, self.service)


def offered_load(arrivals: ArrivalProcess,
                 service: ServiceDistribution,
                 servers: int = 1) -> float:
    """Utilization the workload would impose on ``servers`` servers."""
    if servers < 1:
        raise ConfigError(f"servers must be >= 1, got {servers}")
    return service.mean() / (arrivals.mean_gap_cycles() * servers)


def gap_for_load(service: ServiceDistribution, load: float,
                 servers: int = 1) -> float:
    """Mean inter-arrival gap that produces utilization ``load``."""
    if not 0.0 < load:
        raise ConfigError(f"load must be positive, got {load}")
    return service.mean() / (load * servers)
