"""Workload generation: arrival processes and service-time distributions.

The paper's use cases are all driven by event streams -- packet
arrivals, timer ticks, syscall invocations, RPC requests. This package
provides the deterministic, seedable generators those experiments share:

- :mod:`repro.workloads.arrivals` -- Poisson / deterministic / bursty
  (two-state MMPP) arrival processes, open and closed loop.
- :mod:`repro.workloads.service` -- service-time distributions with
  controllable coefficient of variation (constant, exponential,
  bimodal, bounded Pareto, lognormal), because Section 4 claims the
  PS + thread-per-request combination wins "for server workloads with
  high execution-time variability".
- :mod:`repro.workloads.requests` -- request records and the generator
  that binds an arrival process to a service distribution.
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
)
from repro.workloads.requests import (
    Request,
    RequestGenerator,
    gap_for_load,
    offered_load,
)
from repro.workloads.service import (
    Bimodal,
    BoundedPareto,
    Constant,
    Exponential,
    LogNormal,
    ServiceDistribution,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "BurstyArrivals",
    "ServiceDistribution",
    "Constant",
    "Exponential",
    "Bimodal",
    "BoundedPareto",
    "LogNormal",
    "Request",
    "RequestGenerator",
    "offered_load",
    "gap_for_load",
]
