"""The discrete-event loop.

Time is a monotonically non-decreasing integer measured in CPU cycles.
Components schedule plain callbacks with :meth:`Engine.at` /
:meth:`Engine.after`, or spawn generator coroutines via
:meth:`Engine.spawn` (see :mod:`repro.sim.process`).

The dispatch loop is the single hottest path in the whole simulator
(every instruction issue, wakeup, and timer rides through it), so
:meth:`Engine.run` pops the heap inline instead of peeking and
re-popping, and the live-event count is a counter maintained by
``at``/``cancel``/dispatch rather than an O(n) heap scan. Cancelled
entries are compacted out of the heap lazily once they outnumber the
live ones.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Queues smaller than this are never compacted (the scan costs more
#: than the dead entries do).
_COMPACT_MIN_QUEUE = 64


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled", "_engine")

    def __init__(self, time: int, fn: Callable[..., Any], args: Tuple[Any, ...],
                 engine: "Optional[Engine]" = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None:
                self._engine._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Engine:
    """A minimal but complete discrete-event engine.

    Determinism: ties in time are broken by insertion order, so a given
    program produces the same event interleaving on every run.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: List[Tuple[int, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._events_processed: int = 0
        self._live: int = 0  # scheduled, not cancelled, not yet dispatched
        self._run_until: Optional[int] = None
        self._processes: "List[Any]" = []  # live Process objects (weak bookkeeping)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks dispatched since construction."""
        return self._events_processed

    @property
    def run_until(self) -> Optional[int]:
        """The ``until`` horizon of the innermost active :meth:`run`.

        ``None`` outside a bounded run. Components that skip ahead in
        time (the core's busy-cycle fast-forward) must not jump past
        this, or their catch-up event would be left undispatched when
        the run stops at the horizon.
        """
        return self._run_until

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        call = ScheduledCall(time, fn, args, self)
        heapq.heappush(self._queue, (time, next(self._seq), call))
        self._live += 1
        return call

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + int(delay), fn, *args)

    def spawn(self, generator: Any, name: Optional[str] = None) -> "Any":
        """Start a generator coroutine as a simulation process.

        Returns the :class:`~repro.sim.process.Process`. Imported lazily to
        break the module cycle.
        """
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def _note_cancel(self) -> None:
        self._live -= 1
        # lazily compact once cancelled entries outnumber live ones.
        # In place: run()/run_until_idle() hold a local alias to the
        # list, so rebinding self._queue mid-run would strand every
        # event scheduled after the compaction in a heap the dispatch
        # loop never looks at.
        queue = self._queue
        dead = len(queue) - self._live
        if dead > len(queue) // 2 and len(queue) >= _COMPACT_MIN_QUEUE:
            queue[:] = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(queue)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next pending event. Returns False if none remain."""
        while self._queue:
            time, _seq, call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            call.fn(*call.args)
            return True
        return False

    def run_until_idle(self) -> int:
        """Drain the queue completely; returns the time of the last event.

        The fast path of :meth:`run`: no horizon or event-budget checks
        in the loop body.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _seq, call = pop(queue)
            if call.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            call.fn(*call.args)
        return self._now

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at exit. When ``until`` is given the
        clock is advanced to exactly ``until`` even if the queue drained
        earlier, so rate computations stay meaningful.
        """
        if until is None and max_events is None:
            return self.run_until_idle()
        prior_until = self._run_until
        self._run_until = int(until) if until is not None else None
        try:
            queue = self._queue
            pop = heapq.heappop
            dispatched = 0
            while queue:
                time, _seq, call = queue[0]
                if call.cancelled:
                    pop(queue)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                pop(queue)
                self._now = time
                self._events_processed += 1
                self._live -= 1
                dispatched += 1
                call.fn(*call.args)
        finally:
            self._run_until = prior_until
        if until is not None and self._now < until:
            self._now = int(until)
        return self._now

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest pending live event, or None when idle."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    # retained alias: older callers/tests peek through the private name
    _peek_time = next_event_time

    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled callbacks (O(1))."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now} pending={self.pending_events}>"
