"""The discrete-event loop.

Time is a monotonically non-decreasing integer measured in CPU cycles.
Components schedule plain callbacks with :meth:`Engine.at` /
:meth:`Engine.after`, or spawn generator coroutines via
:meth:`Engine.spawn` (see :mod:`repro.sim.process`).

The dispatch loop is the single hottest path in the whole simulator
(every instruction issue, wakeup, and timer rides through it), so two
backing stores are provided behind one API, selected by
:class:`EngineConfig` or the ``REPRO_ENGINE_QUEUE`` environment
variable:

- ``"heap"`` -- the reference implementation: one binary heap of
  ``(time, seq, call)`` tuples. Cancellation tombstones the entry and
  the whole heap is lazily compacted once dead entries outnumber live
  ones (a global O(n) heapify each time).
- ``"wheel"`` -- a calendar queue in the hashed-timing-wheel family:
  events hash into per-timestamp buckets (a dict) and a small heap
  orders the distinct timestamps. Same-time events append in O(1),
  cancellation is O(1) tombstoning with *per-bucket* compaction, and a
  bucket whose events are all cancelled is freed immediately -- no
  global churn. This is the default.

Both stores dispatch in exactly ``(time, seq)`` order, where ``seq`` is
a shared monotone counter, so a given program produces byte-identical
event interleavings under either.

Separately from the main queue, the engine keeps a *step lane*
(:meth:`at_step`): a small heap reserved for CPU-core issue-loop
resumes. Step events dispatch merged with the main queue in global
``(time, seq)`` order -- they are invisible only to
:meth:`next_foreign_event_time`, which the core's busy-cycle
fast-forward uses as its batching horizon. A core mid-burst cannot
affect another core except through main-queue events or by firing the
other core's wake signal, so other cores' per-cycle steps must not cap
the batch (see :meth:`repro.hw.core.HWCore._plan_fast_forward`).
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

#: Heap mode: queues smaller than this are never compacted (the scan
#: costs more than the dead entries do).
_COMPACT_MIN_QUEUE = 64

#: Wheel mode: per-bucket compaction threshold -- buckets with fewer
#: dead entries than this are left alone until fully dead.
_COMPACT_MIN_BUCKET = 8

#: Environment override for the backing store ("heap" or "wheel").
QUEUE_ENV = "REPRO_ENGINE_QUEUE"

#: The production default; "heap" is retained as the reference.
DEFAULT_QUEUE = "wheel"


@dataclass(frozen=True)
class EngineConfig:
    """Construction-time engine knobs.

    ``queue`` selects the event-queue backing store: ``"heap"``,
    ``"wheel"``, or ``""`` to fall back to ``REPRO_ENGINE_QUEUE`` and
    then :data:`DEFAULT_QUEUE`.
    """

    queue: str = ""


def resolve_queue(config: Optional[EngineConfig] = None) -> str:
    """The backing store an ``Engine(config)`` call would pick."""
    name = (config.queue if config is not None else "") \
        or os.environ.get(QUEUE_ENV, "") or DEFAULT_QUEUE
    if name not in ("heap", "wheel"):
        raise SimulationError(
            f"unknown engine queue {name!r}: expected 'heap' or 'wheel' "
            f"(via EngineConfig.queue or ${QUEUE_ENV})")
    return name


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled", "step", "_engine")

    def __init__(self, time: int, fn: Callable[..., Any], args: Tuple[Any, ...],
                 engine: "Optional[Engine]" = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.step = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent, and a no-op
        once the call has been dispatched (the dispatch loops drop the
        engine backref so a late cancel cannot skew the live count)."""
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None:
                self._engine._note_cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Engine:
    """A minimal but complete discrete-event engine.

    Determinism: ties in time are broken by insertion order, so a given
    program produces the same event interleaving on every run --
    regardless of the backing store (see module docstring).

    ``Engine(config)`` dispatches to the configured subclass;
    :class:`HeapEngine` and :class:`WheelEngine` can also be
    constructed directly (the A/B equivalence tests do).
    """

    #: Which backing store this class implements (subclass attribute).
    queue_kind = ""

    def __new__(cls, config: Optional[EngineConfig] = None) -> "Engine":
        if cls is Engine:
            cls = _ENGINES[resolve_queue(config)]
        return object.__new__(cls)

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self._now: int = 0
        self._seq = itertools.count()
        self._events_processed: int = 0
        self._live: int = 0  # scheduled, not cancelled, not yet dispatched
        self._run_until: Optional[int] = None
        self._processes: "List[Any]" = []  # live Process objects (weak bookkeeping)
        # The step lane: core issue-loop resumes, merged into dispatch
        # by (time, seq) but excluded from next_foreign_event_time().
        self._steps: List[Tuple[int, int, ScheduledCall]] = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks dispatched since construction."""
        return self._events_processed

    @property
    def run_until(self) -> Optional[int]:
        """The ``until`` horizon of the innermost active :meth:`run`.

        ``None`` outside a bounded run. Components that skip ahead in
        time (the core's busy-cycle fast-forward) must not jump past
        this, or their catch-up event would be left undispatched when
        the run stops at the horizon.
        """
        return self._run_until

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        raise NotImplementedError

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + int(delay), fn, *args)

    def at_step(self, time: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule a CPU-core issue-loop resume at absolute ``time``.

        Identical dispatch semantics to :meth:`at` (global
        ``(time, seq)`` order), but the event lives in the step lane and
        is ignored by :meth:`next_foreign_event_time` -- a stepping core
        is not an *external* deadline for another core's batch.
        """
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        call = ScheduledCall(time, fn, args, self)
        call.step = True
        heapq.heappush(self._steps, (time, next(self._seq), call))
        self._live += 1
        return call

    def after_step(self, delay: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Step-lane variant of :meth:`after`."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at_step(self._now + int(delay), fn, *args)

    def spawn(self, generator: Any, name: Optional[str] = None) -> "Any":
        """Start a generator coroutine as a simulation process.

        Returns the :class:`~repro.sim.process.Process`. Imported lazily to
        break the module cycle.
        """
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def _note_cancel(self, call: ScheduledCall) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # execution (subclass responsibility)
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next pending event. Returns False if none remain."""
        raise NotImplementedError

    def run_until_idle(self) -> int:
        """Drain the queue completely; returns the time of the last event."""
        raise NotImplementedError

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at exit. When ``until`` is given the
        clock is advanced to exactly ``until`` even if the queue drained
        earlier, so rate computations stay meaningful.
        """
        raise NotImplementedError

    def next_foreign_event_time(self) -> Optional[int]:
        """Earliest pending live event *outside the step lane*, or None.

        This is the busy-cycle fast-forward horizon: a batching core
        must stop at the next event that could originate an effect on
        it. Other cores' issue-loop steps are excluded -- their effects
        arrive either as main-queue events (capped here) or by firing
        this core's wake signal (which interrupts the batch).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared queries
    # ------------------------------------------------------------------
    def _next_step_time(self) -> Optional[int]:
        """Earliest live step-lane event, or None. In place: dispatch
        loops alias ``self._steps``, so only heappop mutation is safe
        here (the same discipline as :meth:`_note_cancel`)."""
        steps = self._steps
        while steps and steps[0][2].cancelled:
            heapq.heappop(steps)
        return steps[0][0] if steps else None

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest pending live event, or None when idle.

        Covers both lanes. Safe to call from inside a dispatched
        callback mid-run: cancelled heads are discarded with the same
        in-place discipline as :meth:`_note_cancel`, never by rebinding
        a list the run loop holds an alias to.
        """
        t = self.next_foreign_event_time()
        s = self._next_step_time()
        if s is not None and (t is None or s < t):
            return s
        return t

    # retained alias: older callers/tests peek through the private name
    _peek_time = next_event_time

    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled callbacks (O(1))."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} t={self._now} "
                f"pending={self.pending_events}>")


class HeapEngine(Engine):
    """Reference backing store: one binary heap, lazy global compaction."""

    queue_kind = "heap"

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        super().__init__(config)
        self._queue: List[Tuple[int, int, ScheduledCall]] = []

    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        call = ScheduledCall(time, fn, args, self)
        heapq.heappush(self._queue, (time, next(self._seq), call))
        self._live += 1
        return call

    def _note_cancel(self, call: ScheduledCall) -> None:
        self._live -= 1
        if call.step:
            # step-lane tombstones are rare (an interrupted batch) and
            # few (one per core); dispatch pops them lazily
            return
        # lazily compact once cancelled entries outnumber live ones.
        # In place: run()/run_until_idle() hold a local alias to the
        # list, so rebinding self._queue mid-run would strand every
        # event scheduled after the compaction in a heap the dispatch
        # loop never looks at.
        queue = self._queue
        # dead-entry estimate: _live spans both lanes, and live step
        # events (at most one per core) make this a slight overcount
        dead = len(queue) + len(self._steps) - self._live
        if dead > len(queue) // 2 and len(queue) >= _COMPACT_MIN_QUEUE:
            queue[:] = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(queue)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        queue = self._queue
        steps = self._steps
        while queue or steps:
            if steps and (not queue or steps[0] < queue[0]):
                time, _seq, call = heapq.heappop(steps)
            else:
                time, _seq, call = heapq.heappop(queue)
            if call.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            call._engine = None
            call.fn(*call.args)
            return True
        return False

    def run_until_idle(self) -> int:
        queue = self._queue
        steps = self._steps
        pop = heapq.heappop
        while True:
            # merge the two lanes by (time, seq); seq is shared, so the
            # tuple comparison reproduces the single-queue order exactly
            if steps:
                if queue and queue[0] < steps[0]:
                    time, _seq, call = pop(queue)
                else:
                    time, _seq, call = pop(steps)
            elif queue:
                time, _seq, call = pop(queue)
            else:
                break
            if call.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            self._live -= 1
            call._engine = None
            call.fn(*call.args)
        return self._now

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        if until is None and max_events is None:
            return self.run_until_idle()
        prior_until = self._run_until
        self._run_until = int(until) if until is not None else None
        try:
            queue = self._queue
            steps = self._steps
            pop = heapq.heappop
            dispatched = 0
            while queue or steps:
                if steps and (not queue or steps[0] < queue[0]):
                    src = steps
                else:
                    src = queue
                time, _seq, call = src[0]
                if call.cancelled:
                    pop(src)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                pop(src)
                self._now = time
                self._events_processed += 1
                self._live -= 1
                dispatched += 1
                call._engine = None
                call.fn(*call.args)
        finally:
            self._run_until = prior_until
        if until is not None and self._now < until:
            self._now = int(until)
        return self._now

    def next_foreign_event_time(self) -> Optional[int]:
        # In place, like _note_cancel: run() holds a local alias to
        # self._queue, so cancelled heads are heappop'ed out of the
        # shared list object -- never sliced into a rebound copy.
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None


class WheelEngine(Engine):
    """Calendar-queue backing store: per-timestamp buckets.

    ``_buckets`` maps a timestamp to its ``(seq, call)`` list (append
    order *is* seq order -- the shared counter is monotone), and
    ``_times`` is a heap of distinct timestamps. A timestamp whose
    bucket has been consumed or fully cancelled goes stale in ``_times``
    and is skipped on pop. Dispatch walks the earliest bucket by index
    (``_cur_*``), so same-time events appended by callbacks are picked
    up in seq order, exactly like the reference heap.
    """

    queue_kind = "wheel"

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        super().__init__(config)
        self._buckets: Dict[int, List[Tuple[int, ScheduledCall]]] = {}
        self._bucket_dead: Dict[int, int] = {}
        self._times: List[int] = []
        # dispatch cursor: the bucket currently being walked
        self._cur_time: int = 0
        self._cur_bucket: Optional[List[Tuple[int, ScheduledCall]]] = None
        self._cur_idx: int = 0

    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        if self._cur_bucket is not None and time < self._cur_time:
            # only reachable after a bounded run (max_events / step())
            # stopped mid-bucket: re-close the cursor so the earlier
            # timestamp is ordered ahead of the open bucket's remainder
            self._reclose_cursor()
        call = ScheduledCall(time, fn, args, self)
        seq = next(self._seq)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(seq, call)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((seq, call))
        self._live += 1
        return call

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        # at() inlined (minus the past-time check -- delay >= 0 makes it
        # unreachable): after() is the cluster layers' only scheduling
        # call, hot enough that the extra frame shows up in profiles
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + int(delay)
        if self._cur_bucket is not None and time < self._cur_time:
            self._reclose_cursor()
        call = ScheduledCall(time, fn, args, self)
        seq = next(self._seq)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(seq, call)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((seq, call))
        self._live += 1
        return call

    def _reclose_cursor(self) -> None:
        """Return the open bucket's unwalked remainder to the timestamp
        heap (cold path; see :meth:`at`)."""
        t = self._cur_time
        bucket = self._cur_bucket
        self._cur_bucket = None
        del bucket[:self._cur_idx]
        self._cur_idx = 0
        live = [e for e in bucket if not e[1].cancelled]
        if live:
            bucket[:] = live
            self._bucket_dead.pop(t, None)  # no tombstones left
            heapq.heappush(self._times, t)
        else:
            del self._buckets[t]
            self._bucket_dead.pop(t, None)

    def _note_cancel(self, call: ScheduledCall) -> None:
        self._live -= 1
        if call.step:
            return
        t = call.time
        bucket = self._buckets.get(t)
        if bucket is None:
            return  # bucket already consumed or freed
        dead = self._bucket_dead.get(t, 0) + 1
        if bucket is self._cur_bucket:
            # mid-dispatch: the cursor skips tombstones; compacting now
            # would shift entries under it
            self._bucket_dead[t] = dead
            return
        if dead >= len(bucket):
            # every event at this timestamp is cancelled: free the whole
            # bucket now (its entry in _times goes stale and is skipped)
            del self._buckets[t]
            self._bucket_dead.pop(t, None)
        elif dead >= _COMPACT_MIN_BUCKET and dead > len(bucket) // 2:
            bucket[:] = [e for e in bucket if not e[1].cancelled]
            # drop the key (not a zero) so an otherwise cancellation-free
            # run returns _bucket_dead to empty, the consume sites' guard
            self._bucket_dead.pop(t, None)
        else:
            self._bucket_dead[t] = dead

    # ------------------------------------------------------------------
    def _pop_next(self, limit: Optional[int]
                  ) -> Optional[Tuple[int, ScheduledCall]]:
        """Remove and return the next live ``(time, call)`` across both
        lanes, or None when drained / past ``limit``. All mutations are
        in place (cursor fields, heappop) so the call is re-entrant with
        respect to callbacks scheduling into the open bucket."""
        buckets = self._buckets
        times = self._times
        steps = self._steps
        while True:
            # main-lane head key -------------------------------------
            bucket = self._cur_bucket
            if bucket is not None:
                t = self._cur_time
                idx = self._cur_idx
                n = len(bucket)
                while idx < n and bucket[idx][1].cancelled:
                    idx += 1
                if idx == n:
                    # bucket consumed; only now does its dict entry go.
                    # _bucket_dead is empty unless something cancelled,
                    # so the truth test keeps the cancellation-free hot
                    # path (cluster PS completions) to one dict delete
                    del buckets[t]
                    if self._bucket_dead:
                        self._bucket_dead.pop(t, None)
                    self._cur_bucket = None
                    continue
                self._cur_idx = idx
                main_key: Optional[Tuple[int, int]] = (t, bucket[idx][0])
            else:
                main_key = None
                while times:
                    t0 = times[0]
                    b = buckets.get(t0)
                    if b is None:
                        heapq.heappop(times)  # stale timestamp
                        continue
                    # a leading tombstone's seq is a valid proxy: if it
                    # loses to the step lane we just skip it next pass
                    main_key = (t0, b[0][0])
                    break
            # step-lane head key -------------------------------------
            while steps and steps[0][2].cancelled:
                heapq.heappop(steps)
            if steps:
                head = steps[0]
                if main_key is None or (head[0], head[1]) < main_key:
                    if limit is not None and head[0] > limit:
                        return None
                    heapq.heappop(steps)
                    return head[0], head[2]
            if main_key is None:
                return None
            t = main_key[0]
            if limit is not None and t > limit:
                return None
            if self._cur_bucket is None:
                # open the winning bucket and re-evaluate (leading
                # tombstones, step-lane ties) with the cursor set
                heapq.heappop(times)
                self._cur_time = t
                self._cur_bucket = buckets[t]
                self._cur_idx = 0
                continue
            entry = self._cur_bucket[self._cur_idx]
            self._cur_idx += 1
            return t, entry[1]

    def step(self) -> bool:
        nxt = self._pop_next(None)
        if nxt is None:
            return False
        time, call = nxt
        self._now = time
        self._events_processed += 1
        self._live -= 1
        call._engine = None
        call.fn(*call.args)
        return True

    def run_until_idle(self) -> int:
        # The unbounded drain is the cluster experiments' hot loop, so
        # the empty-step-lane case (no ISA cores on the engine) is
        # dispatched inline instead of through _pop_next -- one bucket
        # walk per event, no per-event function call. Cursor state stays
        # in the instance fields so callbacks that schedule, cancel, or
        # run nested bounded drains observe exactly the _pop_next
        # discipline.
        buckets = self._buckets
        times = self._times
        heappop = heapq.heappop
        while True:
            if self._steps:
                # two-lane merge: delegate to the general dispatcher
                nxt = self._pop_next(None)
                if nxt is None:
                    return self._now
                time, call = nxt
                self._now = time
                self._events_processed += 1
                self._live -= 1
                call._engine = None
                call.fn(*call.args)
                continue
            bucket = self._cur_bucket
            if bucket is None:
                while times:
                    t0 = heappop(times)
                    b = buckets.get(t0)
                    if b is not None:
                        self._cur_time = t0
                        self._cur_bucket = b
                        self._cur_idx = 0
                        break
                else:
                    return self._now
                continue
            idx = self._cur_idx
            if idx < len(bucket):
                call = bucket[idx][1]
                self._cur_idx = idx + 1
                if call.cancelled:
                    continue
                self._now = self._cur_time
                self._events_processed += 1
                self._live -= 1
                call._engine = None
                call.fn(*call.args)
            else:
                del buckets[self._cur_time]
                if self._bucket_dead:  # empty unless something cancelled
                    self._bucket_dead.pop(self._cur_time, None)
                self._cur_bucket = None

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        if until is None and max_events is None:
            return self.run_until_idle()
        prior_until = self._run_until
        limit = int(until) if until is not None else None
        self._run_until = limit
        try:
            if max_events is None:
                self._run_bounded(limit)
            else:
                pop_next = self._pop_next
                dispatched = 0
                while dispatched < max_events:
                    nxt = pop_next(limit)
                    if nxt is None:
                        break
                    time, call = nxt
                    self._now = time
                    self._events_processed += 1
                    self._live -= 1
                    dispatched += 1
                    call._engine = None
                    call.fn(*call.args)
        finally:
            self._run_until = prior_until
        if until is not None and self._now < until:
            self._now = int(until)
        return self._now

    def _run_bounded(self, limit: int) -> None:
        """Horizon-bounded drain, inlined like :meth:`run_until_idle`
        (``run(until=...)`` is how the cluster experiments drive their
        engines). Events past ``limit`` stay in the store untouched."""
        buckets = self._buckets
        times = self._times
        heappop = heapq.heappop
        while True:
            if self._steps:
                nxt = self._pop_next(limit)
                if nxt is None:
                    return
                time, call = nxt
                self._now = time
                self._events_processed += 1
                self._live -= 1
                call._engine = None
                call.fn(*call.args)
                continue
            bucket = self._cur_bucket
            if bucket is None:
                while times:
                    t0 = times[0]
                    b = buckets.get(t0)
                    if b is None:
                        heappop(times)  # stale timestamp
                        continue
                    if t0 > limit:
                        return
                    heappop(times)
                    self._cur_time = t0
                    self._cur_bucket = b
                    self._cur_idx = 0
                    break
                else:
                    return
                continue
            t = self._cur_time
            if t > limit:
                # cursor left open past the horizon by an outer or
                # earlier bounded run
                return
            idx = self._cur_idx
            if idx < len(bucket):
                call = bucket[idx][1]
                self._cur_idx = idx + 1
                if call.cancelled:
                    continue
                self._now = t
                self._events_processed += 1
                self._live -= 1
                call._engine = None
                call.fn(*call.args)
            else:
                del buckets[t]
                if self._bucket_dead:  # empty unless something cancelled
                    self._bucket_dead.pop(t, None)
                self._cur_bucket = None

    def next_foreign_event_time(self) -> Optional[int]:
        bucket = self._cur_bucket
        if bucket is not None:
            # called from inside a dispatched callback: live entries not
            # yet walked at the open timestamp are still pending events
            for i in range(self._cur_idx, len(bucket)):
                if not bucket[i][1].cancelled:
                    return self._cur_time
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            live = buckets.get(t)
            if live is None:
                heapq.heappop(times)  # stale: consumed or fully cancelled
                continue
            # a surviving bucket always holds at least one live entry
            # (_note_cancel frees fully-dead buckets immediately)
            return t
        return None


_ENGINES: Dict[str, type] = {"heap": HeapEngine, "wheel": WheelEngine}
