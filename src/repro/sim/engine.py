"""The discrete-event loop.

Time is a monotonically non-decreasing integer measured in CPU cycles.
Components schedule plain callbacks with :meth:`Engine.at` /
:meth:`Engine.after`, or spawn generator coroutines via
:meth:`Engine.spawn` (see :mod:`repro.sim.process`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Engine:
    """A minimal but complete discrete-event engine.

    Determinism: ties in time are broken by insertion order, so a given
    program produces the same event interleaving on every run.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: List[Tuple[int, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._events_processed: int = 0
        self._processes: "List[Any]" = []  # live Process objects (weak bookkeeping)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks dispatched since construction."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run at absolute ``time``."""
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is t={self._now}"
            )
        call = ScheduledCall(time, fn, args)
        heapq.heappush(self._queue, (time, next(self._seq), call))
        return call

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + int(delay), fn, *args)

    def spawn(self, generator: Any, name: Optional[str] = None) -> "Any":
        """Start a generator coroutine as a simulation process.

        Returns the :class:`~repro.sim.process.Process`. Imported lazily to
        break the module cycle.
        """
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next pending event. Returns False if none remain."""
        while self._queue:
            time, _seq, call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            call.fn(*call.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at exit. When ``until`` is given the
        clock is advanced to exactly ``until`` even if the queue drained
        earlier, so rate computations stay meaningful.
        """
        dispatched = 0
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                break
            next_time = self._peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            if not self.step():
                break
            dispatched += 1
        if until is not None and self._now < until:
            self._now = int(until)
        return self._now

    def _peek_time(self) -> Optional[int]:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled callbacks."""
        return sum(1 for _, _, c in self._queue if not c.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now} pending={self.pending_events}>"
