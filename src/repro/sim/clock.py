"""Cycle/time conversion at a configurable core frequency.

The paper quotes latencies both in cycles ("roughly 20 clock cycles") and
nanoseconds ("3ns to 16ns for a 3GHz CPU"); ``Clock`` keeps the two views
consistent. The default frequency is the paper's 3 GHz.
"""

from __future__ import annotations

from repro.errors import ConfigError

DEFAULT_FREQ_GHZ = 3.0


class Clock:
    """Frequency-aware conversion between cycles and wall-clock time."""

    def __init__(self, freq_ghz: float = DEFAULT_FREQ_GHZ):
        if freq_ghz <= 0:
            raise ConfigError(f"frequency must be positive, got {freq_ghz}")
        self.freq_ghz = float(freq_ghz)

    # ------------------------------------------------------------------
    def ns_to_cycles(self, ns: float) -> int:
        """Nanoseconds to (rounded) cycles: 1 ns at 3 GHz = 3 cycles."""
        return int(round(ns * self.freq_ghz))

    def us_to_cycles(self, us: float) -> int:
        return self.ns_to_cycles(us * 1e3)

    def ms_to_cycles(self, ms: float) -> int:
        return self.ns_to_cycles(ms * 1e6)

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.freq_ghz

    def cycles_to_us(self, cycles: float) -> float:
        return self.cycles_to_ns(cycles) / 1e3

    def cycles_per_second(self) -> float:
        return self.freq_ghz * 1e9

    def rate_to_interarrival_cycles(self, events_per_second: float) -> float:
        """Mean inter-arrival gap in cycles for a given event rate."""
        if events_per_second <= 0:
            raise ConfigError(f"rate must be positive, got {events_per_second}")
        return self.cycles_per_second() / events_per_second

    def __repr__(self) -> str:  # pragma: no cover
        return f"Clock({self.freq_ghz}GHz)"
