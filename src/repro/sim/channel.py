"""Buffered message passing between simulation processes.

``Channel`` models a bounded FIFO queue with blocking ``get`` and
non-blocking ``put`` plus an optional capacity. It is used by the
behavioral kernel models for request queues (syscall queues, IPC
mailboxes, RPC sockets).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.process import Signal


class Channel:
    """A FIFO of messages with a wakeup signal for consumers.

    ``put`` appends and fires the signal; a consumer process does::

        while True:
            msg = yield from chan.get()
            ...

    ``get`` is a sub-generator (``yield from``) so it composes with the
    process protocol without extra machinery.
    """

    def __init__(self, name: str = "", capacity: Optional[int] = None):
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self.signal = Signal(f"chan:{name}")
        self.total_put = 0
        self.total_got = 0
        self.dropped = 0
        self.high_watermark = 0

    # ------------------------------------------------------------------
    def put(self, item: Any) -> bool:
        """Append ``item``; returns False (and counts a drop) if full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.total_put += 1
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)
        self.signal.fire(item)
        return True

    def try_get(self) -> Any:
        """Pop the head or return None if empty."""
        if not self._items:
            return None
        self.total_got += 1
        return self._items.popleft()

    def get(self):
        """Sub-generator: block until an item is available, then pop it.

        Usage inside a process body: ``item = yield from chan.get()``.
        """
        while not self._items:
            yield self.signal
        self.total_got += 1
        return self._items.popleft()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def peek(self) -> Any:
        if not self._items:
            raise SimulationError(f"peek on empty channel {self.name!r}")
        return self._items[0]

    @property
    def empty(self) -> bool:
        return not self._items

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Channel {self.name} depth={len(self._items)}>"
