"""Deterministic, named random streams.

Each consumer (arrival process, service-time sampler, scheduler jitter)
gets its own ``random.Random`` derived from a master seed plus the stream
name, so adding a new consumer never perturbs existing streams -- a
standard trick for reproducible systems simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """Factory of independent named PRNG streams."""

    def __init__(self, master_seed: int = 0xC0FFEE):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Drop all streams and restart from a new master seed."""
        self.master_seed = master_seed
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngStreams(seed={self.master_seed:#x}, streams={len(self._streams)})"
