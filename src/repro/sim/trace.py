"""Structured tracing and counters for simulations.

Components emit ``(time, category, message, payload)`` records through a
shared :class:`Tracer`. Tracing is off by default (zero-cost beyond a
boolean check) and can be enabled globally or per category. Experiments
also use the tracer's counters for cheap aggregate accounting (e.g.
"wasted polling cycles").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: int
    category: str
    message: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {self.payload}" if self.payload else ""
        return f"[{self.time:>12}] {self.category:<16} {self.message}{extra}"


class Tracer:
    """Collects trace events and integer counters.

    ``enabled`` gates record collection; counters are always live because
    experiments depend on them.
    """

    def __init__(self, engine: Any = None, enabled: bool = False,
                 categories: Optional[Set[str]] = None, limit: int = 1_000_000):
        self.engine = engine
        self.enabled = enabled
        self.categories = categories  # None = all
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.counters: Counter = Counter()
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, category: str, message: str, **payload: Any) -> None:
        """Record a trace event if tracing is enabled for ``category``.

        Once ``limit`` events are retained, every further emit that
        *would* have been recorded (enabled, category selected) bumps
        ``dropped`` instead, so ``len(events) + dropped`` is always the
        true emit count for the selected categories.
        """
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        now = self.engine.now if self.engine is not None else 0
        self.events.append(TraceEvent(now, category, message, payload))

    def count(self, counter: str, amount: int = 1) -> None:
        """Bump an aggregate counter (always on)."""
        self.counters[counter] += amount

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer in (a parallel worker's, typically).

        Counters add; events append up to this tracer's ``limit``, with
        overflow -- and the other tracer's own overflow -- counted into
        ``dropped`` so nothing vanishes silently across workers.
        """
        self.counters.update(other.counters)
        self.dropped += other.dropped
        space = self.limit - len(self.events)
        if space >= len(other.events):
            self.events.extend(other.events)
        else:
            kept = max(space, 0)
            self.events.extend(other.events[:kept])
            self.dropped += len(other.events) - kept

    # ------------------------------------------------------------------
    def filter(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()
        self.dropped = 0

    def dump(self, max_lines: int = 100) -> str:
        lines = [str(e) for e in self.events[:max_lines]]
        if len(self.events) > max_lines:
            lines.append(f"... {len(self.events) - max_lines} more events")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tracer events={len(self.events)} counters={len(self.counters)}>"
