"""Generator-coroutine processes on top of the event engine.

A process body is a generator that yields *waitables*:

- ``Timeout(delay)`` (or a bare non-negative ``int``) -- resume after
  ``delay`` cycles; the yield evaluates to ``None``.
- ``Signal`` -- resume when the signal fires; the yield evaluates to the
  value passed to :meth:`Signal.fire`.
- another ``Process`` -- join; the yield evaluates to its result.
- ``AnyOf([w1, w2, ...])`` -- resume when the first waitable completes;
  evaluates to ``(index, value)``.
- ``AllOf([w1, w2, ...])`` -- resume when all complete; evaluates to the
  list of values.

Example::

    def worker(engine, sig):
        yield 10                  # compute for 10 cycles
        value = yield sig         # block until someone fires sig
        return value * 2

Processes terminate by returning (``StopIteration``); the return value is
exposed as :attr:`Process.result` and delivered to joiners.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError


class Timeout:
    """Waitable delay of a fixed number of cycles."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = int(delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(value)`` resumes every current waiter with ``value``. Waiters
    that arrive after a fire block until the *next* fire (edge-triggered,
    like a condition variable -- matching the semantics of a hardware
    write-notification, not a latched flag).
    """

    __slots__ = ("name", "_waiters", "fire_count", "last_value")

    def __init__(self, name: str = ""):
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def add_waiter(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register a resume callback; returns a detach function."""
        self._waiters.append(callback)

        def detach() -> None:
            try:
                self._waiters.remove(callback)
            except ValueError:
                pass

        return detach

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters. Returns the number woken."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name or id(self):#x} waiters={len(self._waiters)}>"


class AnyOf:
    """Waitable combinator: first of several waitables."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf requires at least one waitable")


class AllOf:
    """Waitable combinator: all of several waitables."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AllOf requires at least one waitable")


class Process:
    """A running generator coroutine.

    Never instantiate directly -- use :meth:`Engine.spawn`.
    """

    __slots__ = ("engine", "generator", "name", "alive", "result", "error",
                 "step_ints", "_joiners", "_pending_detach", "_interrupted")

    def __init__(self, engine: Any, generator: Any, name: Optional[str] = None):
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: route this process's timeouts to the engine's step lane --
        #: set by HWCore on its issue loop, whose per-cycle resumes must
        #: not cap other cores' fast-forward horizons (engine.at_step)
        self.step_ints = False
        self._joiners: List[Callable[[Any], None]] = []
        self._pending_detach: List[Callable[[], None]] = []
        self._interrupted = False
        # Kick off on the next event boundary at the current time so that
        # spawn order, not construction nesting, decides interleaving.
        engine.at(engine.now, self._resume, None)

    # ------------------------------------------------------------------
    def join(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(result)`` when the process finishes."""
        if self.alive:
            self._joiners.append(callback)
        else:
            callback(self.result)

    def kill(self) -> None:
        """Terminate the process at its current yield point."""
        if not self.alive:
            return
        for detach in self._pending_detach:
            detach()
        self._pending_detach.clear()
        self.alive = False
        self.generator.close()
        self._finish()

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            waitable = self.generator.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self._finish()
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced to joiners
            self.alive = False
            self.error = exc
            self._finish()
            raise
        self._block_on(waitable)

    def _block_on(self, waitable: Any) -> None:
        self._pending_detach.clear()
        if type(waitable) is int:
            # bare-int timeout: the dominant yield by far (every issue
            # round and service slice), worth skipping the Timeout
            # wrapper and the `after` indirection
            if waitable < 0:
                raise SimulationError(f"negative timeout {waitable}")
            engine = self.engine
            if self.step_ints:
                engine.at_step(engine._now + waitable, self._resume, None)
            else:
                engine.at(engine._now + waitable, self._resume, None)
            return
        if isinstance(waitable, int):
            waitable = Timeout(waitable)
        if isinstance(waitable, Timeout):
            if self.step_ints:
                self.engine.after_step(waitable.delay, self._resume, None)
            else:
                self.engine.after(waitable.delay, self._resume, None)
        elif isinstance(waitable, Signal):
            detach = waitable.add_waiter(self._resume)
            self._pending_detach.append(detach)
        elif isinstance(waitable, Process):
            waitable.join(self._resume)
        elif isinstance(waitable, AnyOf):
            self._block_any(waitable)
        elif isinstance(waitable, AllOf):
            self._block_all(waitable)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported waitable {waitable!r}"
            )

    def _block_any(self, anyof: AnyOf) -> None:
        done = {"fired": False}

        def make_cb(index: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if done["fired"]:
                    return
                done["fired"] = True
                for detach in self._pending_detach:
                    detach()
                self._pending_detach.clear()
                self._resume((index, value))

            return cb

        for i, w in enumerate(anyof.waitables):
            self._attach(w, make_cb(i))

    def _block_all(self, allof: AllOf) -> None:
        remaining = {"n": len(allof.waitables)}
        values: List[Any] = [None] * len(allof.waitables)

        def make_cb(index: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                values[index] = value
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    self._pending_detach.clear()
                    self._resume(values)

            return cb

        for i, w in enumerate(allof.waitables):
            self._attach(w, make_cb(i))

    def _attach(self, waitable: Any, callback: Callable[[Any], None]) -> None:
        if isinstance(waitable, int):
            waitable = Timeout(waitable)
        if isinstance(waitable, Timeout):
            after = self.engine.after_step if self.step_ints else self.engine.after
            call = after(waitable.delay, callback, None)
            self._pending_detach.append(call.cancel)
        elif isinstance(waitable, Signal):
            self._pending_detach.append(waitable.add_waiter(callback))
        elif isinstance(waitable, Process):
            waitable.join(callback)
        else:
            raise SimulationError(f"unsupported waitable in combinator: {waitable!r}")

    def _finish(self) -> None:
        joiners, self._joiners = self._joiners, []
        for callback in joiners:
            callback(self.result)

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"
