"""Discrete-event simulation engine.

A deliberately small simpy-like kernel:

- :class:`~repro.sim.engine.Engine` -- the event loop; time is measured in
  integer CPU cycles.
- :class:`~repro.sim.process.Process` -- generator-based coroutines; a
  process yields :class:`Timeout`, :class:`Signal`, another ``Process``
  (join), or combinators (:class:`AnyOf` / :class:`AllOf`).
- :class:`~repro.sim.channel.Channel` -- buffered message passing between
  processes.
- :class:`~repro.sim.clock.Clock` -- cycle/nanosecond conversion at a
  configurable frequency.
- :class:`~repro.sim.trace.Tracer` -- structured event tracing.
- :class:`~repro.sim.rng.RngStreams` -- named deterministic random streams.

Everything in :mod:`repro.hw`, :mod:`repro.kernel`, and the experiment
harness runs on a single shared ``Engine`` so hardware device models and
behavioral kernel models stay mutually consistent in time.
"""

from repro.sim.channel import Channel
from repro.sim.clock import Clock
from repro.sim.engine import Engine, ScheduledCall
from repro.sim.process import AllOf, AnyOf, Process, Signal, Timeout
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Clock",
    "Engine",
    "Process",
    "ScheduledCall",
    "Signal",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "RngStreams",
]
