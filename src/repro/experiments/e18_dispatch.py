"""E18: interpreter raw speed -- pre-decoded dispatch + O(1) WRR issue.

Supporting evidence for the reproduction's own engineering claims
rather than a paper figure: the ISA-level backend is the expensive half
of every cluster experiment (E15's fidelity jump), so the interpreter's
raw speed bounds how far the evaluation can scale. Two mechanisms are
measured here, both required to be *behaviorally invisible*:

- **pre-decoded handler chains** (``repro.isa.decode``): operands
  resolved once, labels to indices, straight-line ALU runs fused into
  superinstructions. The dispatch table claims byte-identical results
  to the naive interpreter while doing asymptotically less per-cycle
  work -- measured here as retired instructions per engine event (the
  deterministic proxy for dispatch cost; wall-clock lives in
  ``benchmarks/bench_isa_dispatch.py``).
- **credit-based weighted round-robin issue** (Section 4: "hardware
  support for thread priorities"): an O(1) ring-walk arbiter whose
  steady-state shares are exactly proportional to thread weight, and
  which degenerates to plain RR -- same pick stream, same pointer --
  at uniform weights.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.cluster import ClusterConfig, DESIGNS, run_cluster
from repro.experiments.registry import register
from repro.machine import build_machine

#: contended-share weights (sum 7: shares are exact per 7-pick frame)
WEIGHTS = (4, 2, 1)
#: loop body: always-issueable cost-1 instructions (no fusion, no
#: bursts) so the arbiter decides every single cycle
_SPIN = "loop:\n    addi r1, r1, 1\n    jmp loop"
#: fusable straight-line block + backward branch: the decoded path's
#: best case, the naive interpreter's per-instruction worst case
_ALU_LOOP = """
    movi r9, {iters}
    work 1           ; run break: the fused run must START at loop,
                     ; or the back-branch would land mid-run and fall
                     ; back to instruction-at-a-time dispatch
loop:
    movi r2, 7
    addi r2, r2, 5
    xor  r3, r2, r1
    shl  r4, r2, 3
    sub  r5, r4, r3
    or   r6, r5, r2
    and  r7, r6, r4
    mov  r8, r5
    xor  r2, r7, r8
    addi r5, r5, 3
    shr  r6, r5, 1
    addi r1, r1, 1
    bne r1, r9, loop
    halt
"""


def _spin_machine(policy: str, weights, horizon: int):
    machine = build_machine(issue_policy=policy, smt_width=1,
                            hw_threads_per_core=len(weights))
    for ptid, weight in enumerate(weights):
        machine.load_asm(ptid, _SPIN, supervisor=True)
        machine.core(0).set_priority(ptid, weight)
        machine.boot(ptid)
    machine.run(until=horizon)
    return machine


def _spin_profile(policy: str, weights, horizon: int) -> Dict[int, int]:
    machine = _spin_machine(policy, weights, horizon)
    return {ptid: machine.thread(ptid).instructions_executed
            for ptid in range(len(weights))}


def _dispatch_cell(predecode: bool, iters: int) -> Dict[str, int]:
    # the engine-event count IS the measurement here, and it depends on
    # the stepping mode -- so the cell pins fast-forward on (shipped
    # configuration) rather than inherit REPRO_NO_FASTFORWARD, keeping
    # the evaluation byte-identical across stepping modes like every
    # other experiment (whose tables report architectural state only)
    prior = os.environ.pop("REPRO_NO_FASTFORWARD", None)
    try:
        machine = build_machine(predecode=predecode, hw_threads_per_core=2)
        machine.load_asm(0, _ALU_LOOP.format(iters=iters), supervisor=True)
        machine.boot(0)
        machine.run()
    finally:
        if prior is not None:
            os.environ["REPRO_NO_FASTFORWARD"] = prior
    thread = machine.thread(0)
    return {
        "instructions": thread.instructions_executed,
        "cycles": machine.engine.now,
        "events": machine.engine.events_processed,
    }


def _cluster_summary(nodes: int, requests: int, seed: int,
                     predecode: bool) -> Dict[str, float]:
    """One E15-style ISA cell with the decode path toggled by env."""
    config = ClusterConfig(
        nodes=nodes, design=DESIGNS["hw-threads"], policy="round-robin",
        fanout=1, load=0.06, mean_service_cycles=4_000, segments=2,
        rtt_cycles=20_000, requests=requests, threads_per_peer=4,
        backend="isa")
    prior = os.environ.get("REPRO_NO_PREDECODE")
    try:
        if predecode:
            os.environ.pop("REPRO_NO_PREDECODE", None)
        else:
            os.environ["REPRO_NO_PREDECODE"] = "1"
        return dict(run_cluster(config, seed=seed).summary)
    finally:
        if prior is None:
            os.environ.pop("REPRO_NO_PREDECODE", None)
        else:
            os.environ["REPRO_NO_PREDECODE"] = prior


@register("E18", "Interpreter raw speed: pre-decoded dispatch + "
                 "O(1) weighted-round-robin issue",
          'Section 4 ("Support for Thread Scheduling") + evaluation '
          'infrastructure')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    horizon = 14_000 if quick else 70_000
    iters = 200 if quick else 2_000
    requests = 20 if quick else 60
    result = ExperimentResult(
        "E18", "Interpreter raw speed: pre-decoded dispatch + "
               "O(1) weighted-round-robin issue")

    # -- table 1: WRR shares under contention -------------------------
    shares = Table(["ptid", "weight", "instructions", "share",
                    "weight share"],
                   title=f"WRR issue shares, 3 always-runnable threads "
                         f"on 1 slot, {horizon} cycles")
    wrr = _spin_profile("wrr", WEIGHTS, horizon)
    total = sum(wrr.values())
    weight_total = sum(WEIGHTS)
    worst_dev = 0.0
    for ptid, weight in enumerate(WEIGHTS):
        share = wrr[ptid] / total
        target = weight / weight_total
        worst_dev = max(worst_dev, abs(share - target) / target)
        shares.add_row(ptid, weight, wrr[ptid], f"{share:.4f}",
                       f"{target:.4f}")
    result.add_table(shares)

    # -- table 2: WRR degenerates to RR at uniform weights ------------
    uniform_wrr = _spin_profile("wrr", (1, 1, 1), horizon)
    uniform_rr = _spin_profile("rr", (1, 1, 1), horizon)
    degenerate = Table(["ptid", "rr instructions", "wrr instructions"],
                       title="Uniform weights: WRR vs RR, same workload")
    for ptid in uniform_rr:
        degenerate.add_row(ptid, uniform_rr[ptid], uniform_wrr[ptid])
    result.add_table(degenerate)

    # -- table 3: decoded dispatch cost + byte-identity ---------------
    decoded = _dispatch_cell(True, iters)
    naive = _dispatch_cell(False, iters)
    batching = (naive["events"] / decoded["events"]
                if decoded["events"] else float("inf"))
    dispatch = Table(["interpreter", "instructions", "cycles",
                      "engine events", "events/instr"],
                     title=f"Tight ALU loop ({iters} iterations): "
                           f"dispatch work per retired instruction")
    for label, cell in (("pre-decoded", decoded), ("naive", naive)):
        dispatch.add_row(label, cell["instructions"], cell["cycles"],
                         cell["events"],
                         f"{cell['events'] / cell['instructions']:.3f}")
    result.add_table(dispatch)

    cluster_on = _cluster_summary(2, requests, seed, predecode=True)
    cluster_off = _cluster_summary(2, requests, seed, predecode=False)

    result.data["wrr_shares"] = wrr
    result.data["uniform"] = {"rr": uniform_rr, "wrr": uniform_wrr}
    result.data["dispatch"] = {"decoded": decoded, "naive": naive,
                               "event_batching": round(batching, 2)}
    result.data["cluster_identity"] = {"predecode": cluster_on,
                                       "naive": cluster_off}

    # -- claims -------------------------------------------------------
    result.add_claim(
        "WRR issue shares are proportional to thread weights",
        "threads used for serving time-sensitive interrupts receive "
        "more cycles (Section 4)",
        f"weights 4:2:1 -> shares {wrr[0]}:{wrr[1]}:{wrr[2]} "
        f"(worst deviation {100 * worst_dev:.2f}%)",
        Verdict.SUPPORTED if worst_dev < 0.02 else Verdict.REFUTED)
    result.add_claim(
        "at uniform weights WRR is pick-for-pick identical to RR",
        "weighted arbitration must not perturb the PS-emulation "
        "baseline it extends",
        "identical per-thread retirement" if uniform_wrr == uniform_rr
        else f"diverged: {uniform_wrr} vs {uniform_rr}",
        Verdict.SUPPORTED if uniform_wrr == uniform_rr
        else Verdict.REFUTED)
    same_arch = (decoded["instructions"] == naive["instructions"]
                 and decoded["cycles"] == naive["cycles"])
    result.add_claim(
        "pre-decoded dispatch is behaviorally invisible",
        "identical retirement counts and final clock; only engine "
        "events (dispatch work) may drop",
        f"instructions {decoded['instructions']} == "
        f"{naive['instructions']}, cycles {decoded['cycles']} == "
        f"{naive['cycles']}" if same_arch else "MISMATCH",
        Verdict.SUPPORTED if same_arch else Verdict.REFUTED)
    result.add_claim(
        "decoded chains + fusion cut dispatch work >= 3x on ALU code",
        ">= 3x fewer engine events per retired instruction (the "
        "wall-clock counterpart is benchmarks/bench_isa_dispatch.py)",
        f"{batching:.1f}x fewer engine events",
        Verdict.SUPPORTED if batching >= 3.0 else Verdict.PARTIAL)
    result.add_claim(
        "the decode path is byte-invisible at cluster scale",
        "E15-style ISA cell: identical latency summary with the "
        "decode cache on and off",
        "summaries identical" if cluster_on == cluster_off
        else "summaries diverged",
        Verdict.SUPPORTED if cluster_on == cluster_off
        else Verdict.REFUTED)
    return result
