"""E01: Table 1 -- the example Thread Descriptor Table.

Reproduces the paper's only table exactly and then *executes* it: for
every row, an unprivileged caller attempts each thread-management
operation on the callee and the outcome must match the permission bits
("start - stop - modify some registers - modify most registers"),
including the all-zero "(invalid)" row faulting on any use.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.experiments.registry import register
from repro.hw.exceptions import descriptor_present
from repro.hw.ptid import PtidState
from repro.hw.tdt import Permission
from repro.machine import build_machine

#: Table 1 verbatim: vtid -> (ptid, permission bits).
TABLE_1 = {
    0x0: (0x01, Permission(0b1000)),
    0x1: (0x00, Permission(0b0000)),
    0x2: (0x10, Permission(0b1111)),
    0x3: (0x11, Permission(0b1110)),
}

#: The operations the four bits govern, in caption order.
OPERATIONS = ("start", "stop", "modify_some", "modify_most")


def _expected(perms: Permission) -> dict:
    return {
        "start": bool(perms & Permission.START),
        "stop": bool(perms & Permission.STOP),
        "modify_some": bool(perms & (Permission.MODIFY_SOME
                                     | Permission.MODIFY_MOST)),
        "modify_most": bool(perms & Permission.MODIFY_MOST),
    }


_ATTEMPT_ASM = {
    # each program performs exactly one operation on vtid VT, then halts;
    # on denial the caller faults (descriptor at its edp) and never halts
    "start": "start VT\nhalt",
    "stop": "stop VT\nhalt",
    "modify_some": "movi r1, 7\nrpush VT, r2, r1\nhalt",      # GPR write
    "modify_most": "movi r1, 5\nrpush VT, pc, r1\nhalt",      # pc write
}


def _attempt(vtid: int, ptid: int, operation: str) -> bool:
    """Run one unprivileged attempt; True if it was permitted."""
    machine = build_machine(hw_threads_per_core=32)
    tdt = machine.build_tdt("tdt", {vt: (pt, perms)
                                    for vt, (pt, perms) in TABLE_1.items()})
    edp = machine.alloc("caller-edp", 64)
    # the callee ptid must exist and be in the right state for the op:
    # disabled for rpush, runnable for stop, disabled for start
    callee = machine.thread(ptid)
    if operation == "stop":
        machine.load_asm(ptid, "spin:\n    jmp spin", supervisor=False)
        machine.boot(ptid)
    machine.load_asm(31, _ATTEMPT_ASM[operation],
                     symbols={"VT": vtid}, supervisor=False,
                     tdtr=tdt.base, edp=edp.base, name="caller")
    machine.boot(31)
    machine.run(until=20_000)
    machine.check()
    caller = machine.thread(31)
    denied = descriptor_present(machine.memory, edp.base)
    if denied:
        return False
    if not caller.finished:
        raise AssertionError(
            f"caller neither finished nor faulted for {operation} on "
            f"vtid {vtid}")
    # the op executed; spot-check its effect
    if operation == "start":
        assert callee.starts >= 1 or callee.state is not PtidState.DISABLED
    if operation == "stop":
        assert callee.stops >= 1
    return True


@register("E01", "Example Thread Descriptor Table (Table 1)",
          'Section 3.2, Table 1')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    result = ExperimentResult("E01", "Example Thread Descriptor Table")
    layout = Table(["vtid", "ptid", "permissions", "note"],
                   title="Table 1, reproduced")
    outcomes = Table(["vtid"] + [f"{op}?" for op in OPERATIONS],
                     title="Observed enforcement (unprivileged caller)")
    all_match = True
    per_vtid = {}
    for vtid, (ptid, perms) in TABLE_1.items():
        note = "(invalid)" if perms == Permission.NONE else ""
        layout.add_row(f"{vtid:#x}", f"{ptid:#04x}", f"0b{int(perms):04b}",
                       note)
        expected = _expected(perms)
        observed = {op: _attempt(vtid, ptid, op) for op in OPERATIONS}
        per_vtid[vtid] = observed
        all_match = all_match and observed == expected
        outcomes.add_row(f"{vtid:#x}",
                         *["yes" if observed[op] else "DENIED"
                           for op in OPERATIONS])
    result.add_table(layout)
    result.add_table(outcomes)
    result.data["observed"] = per_vtid
    result.data["all_match"] = all_match
    result.add_claim(
        "4 permission bits gate start/stop/modify-some/modify-most",
        "Table 1 semantics", "all 16 vtid x op outcomes match",
        Verdict.SUPPORTED if all_match else Verdict.REFUTED)
    invalid_denied = not any(per_vtid[0x1].values())
    result.add_claim(
        "the all-zero permission row is invalid",
        "row 0x1 '(invalid)'",
        "every operation on vtid 0x1 faults" if invalid_denied
        else "some operation on vtid 0x1 succeeded",
        Verdict.SUPPORTED if invalid_denied else Verdict.REFUTED)
    return result
