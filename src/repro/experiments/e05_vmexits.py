"""E05: "No VM-Exits" -- guest slowdown under the three exit designs.

Sweeps the exit rate (cycles of guest work between exits) and measures
the virtualization tax for: the in-thread VMX transition, the
SplitX-style remote core, and the paper's dedicated root-mode hardware
thread. A second table scales the number of guests sharing a single
SplitX hypervisor core, showing the queueing collapse the hw-thread
design avoids (every guest core has its own root-mode ptid).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.experiments.registry import register
from repro.hypervisor.exits import (
    GuestVm,
    HwThreadExitPath,
    InThreadExitPath,
    SplitXExitPath,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

PATHS = ("in-thread", "splitx", "hw-thread")
HANDLER_WORK = 400


def _make_path(name: str, engine: Engine, costs: CostModel):
    if name == "in-thread":
        return InThreadExitPath(engine, costs)
    if name == "splitx":
        return SplitXExitPath(engine, costs)
    if name == "hw-thread":
        return HwThreadExitPath(engine, costs)
    raise ValueError(name)


def _slowdown(name: str, exit_interval: int, total_work: int,
              costs: CostModel, seed: int) -> Dict:
    engine = Engine()
    path = _make_path(name, engine, costs)
    rng = RngStreams(seed).stream(f"exits.{name}.{exit_interval}")
    guest = GuestVm(engine, path, total_work, exit_interval,
                    handler_work_cycles=HANDLER_WORK, rng=rng)
    engine.run()
    return {
        "slowdown": guest.slowdown(),
        "exit_p50": guest.exit_recorder.pct(50),
        "exits": path.exits,
    }


def _splitx_sharing(guests: int, exit_interval: int, total_work: int,
                    costs: CostModel, seed: int) -> float:
    """Mean slowdown of ``guests`` VMs sharing one SplitX core."""
    engine = Engine()
    path = SplitXExitPath(engine, costs)
    rng_streams = RngStreams(seed)
    vms = [GuestVm(engine, path, total_work, exit_interval,
                   handler_work_cycles=HANDLER_WORK,
                   rng=rng_streams.stream(f"guest{i}"), name=f"guest{i}")
           for i in range(guests)]
    engine.run()
    return sum(vm.slowdown() for vm in vms) / guests


def _hw_sharing(guests: int, exit_interval: int, total_work: int,
                costs: CostModel, seed: int) -> float:
    """Hw-thread design: each guest core has its own root-mode ptid."""
    engine = Engine()
    rng_streams = RngStreams(seed)
    vms = [GuestVm(engine, HwThreadExitPath(engine, costs), total_work,
                   exit_interval, handler_work_cycles=HANDLER_WORK,
                   rng=rng_streams.stream(f"guest{i}"), name=f"guest{i}")
           for i in range(guests)]
    engine.run()
    return sum(vm.slowdown() for vm in vms) / guests


@register("E05", "VM-exit cost: in-thread vs SplitX vs hardware threads",
          'Section 2, "Exception-less System Calls and No VM-Exits"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    total_work = 300_000 if quick else 3_000_000
    intervals = (2_000, 20_000) if quick else (1_000, 3_000, 10_000, 30_000)
    costs = CostModel()
    result = ExperimentResult(
        "E05", "VM-exit cost: in-thread vs SplitX vs hardware threads")

    constants = Table(["path", "per-exit overhead (cyc)", "ns @3GHz"],
                      title="Per-exit overhead (excluding handler work)")
    for name in PATHS:
        overhead = _make_path(name, Engine(), costs).overhead_cycles()
        constants.add_row(name, overhead, overhead / 3.0)
    result.add_table(constants)

    sweep = Table(["exit interval (cyc)"]
                  + [f"{p} slowdown" for p in PATHS],
                  title="Guest slowdown vs exit rate")
    series: Dict[str, Dict[int, Dict]] = {p: {} for p in PATHS}
    for interval in intervals:
        cells = {p: _slowdown(p, interval, total_work, costs, seed)
                 for p in PATHS}
        for path in PATHS:
            series[path][interval] = cells[path]
        sweep.add_row(interval, *[cells[p]["slowdown"] for p in PATHS])
    result.add_table(sweep)

    guest_counts = (1, 4) if quick else (1, 2, 4, 8)
    share_interval = intervals[0]
    share_work = total_work // 4
    sharing = Table(["guests", "splitx slowdown", "hw-thread slowdown"],
                    title=f"Guests sharing one hypervisor "
                          f"(exit interval {share_interval} cyc)")
    sharing_series = {}
    for guests in guest_counts:
        sx = _splitx_sharing(guests, share_interval, share_work, costs, seed)
        hw = _hw_sharing(guests, share_interval, share_work, costs, seed)
        sharing_series[guests] = {"splitx": sx, "hw": hw}
        sharing.add_row(guests, sx, hw)
    result.add_table(sharing)
    result.data["series"] = series
    result.data["sharing"] = sharing_series

    busiest = intervals[0]
    hw_best = all(
        series["hw-thread"][i]["slowdown"]
        <= min(series["in-thread"][i]["slowdown"],
               series["splitx"][i]["slowdown"]) + 1e-9
        for i in intervals)
    result.add_claim(
        "VM-exits as ptid stop/start beat mode switching",
        "simply make a specialized root-mode hardware thread runnable "
        "rather than waste hundreds of nanoseconds",
        f"slowdown at {busiest}-cycle intervals: hw "
        f"{series['hw-thread'][busiest]['slowdown']:.2f}x vs in-thread "
        f"{series['in-thread'][busiest]['slowdown']:.2f}x",
        Verdict.SUPPORTED if hw_best else Verdict.PARTIAL)
    in_thread_cost = InThreadExitPath(Engine(), costs).overhead_cycles()
    result.add_claim(
        "in-thread exits waste hundreds of nanoseconds",
        "hundreds of nanoseconds [20]",
        f"{in_thread_cost} cycles = {in_thread_cost / 3.0:.0f} ns @3GHz",
        Verdict.SUPPORTED if in_thread_cost / 3.0 >= 100 else Verdict.PARTIAL)
    scaling_gap = (sharing_series[guest_counts[-1]]["splitx"]
                   - sharing_series[guest_counts[-1]]["hw"])
    result.add_claim(
        "a shared exit-handling core saturates; per-core root ptids scale",
        "SplitX ships work to a dedicated core",
        f"at {guest_counts[-1]} guests: splitx "
        f"{sharing_series[guest_counts[-1]]['splitx']:.2f}x vs hw "
        f"{sharing_series[guest_counts[-1]]['hw']:.2f}x",
        Verdict.SUPPORTED if scaling_gap > 0 else Verdict.PARTIAL)
    return result
