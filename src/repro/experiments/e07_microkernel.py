"""E07: "Faster Microkernels and Container Proxies".

Ping-pong round-trip cost for the two IPC mechanisms, then a
latency-under-load sweep of a file-system service: the baseline's
scheduler-mediated dispatch both inflates every call and caps service
throughput; direct ptid start gets XPC-class handoffs ("There is no
need to move into kernel space and invoke the scheduler").
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.experiments.registry import register
from repro.microkernel.ipc import DirectStartIpc, SchedulerIpc
from repro.microkernel.services import (
    ClosedLoopClients,
    ServiceClient,
    filesystem_service,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import PoissonArrivals

MECHANISMS = ("scheduler", "direct-start")


def _make_ipc(name: str, engine: Engine, costs: CostModel):
    if name == "scheduler":
        return SchedulerIpc(engine, costs)
    if name == "direct-start":
        return DirectStartIpc(engine, costs)
    raise ValueError(name)


def _under_load(name: str, mean_gap: float, calls: int,
                costs: CostModel, seed: int) -> Dict:
    engine = Engine()
    ipc = _make_ipc(name, engine, costs)
    fs = filesystem_service()
    client = ServiceClient(engine, ipc, fs, "read",
                           PoissonArrivals(mean_gap),
                           RngStreams(seed).stream(f"e07.{name}.{mean_gap}"),
                           max_calls=calls)
    engine.run(max_events=20_000_000)
    if client.completed < calls:
        # saturated: report what completed (with a flag)
        saturated = True
    else:
        saturated = False
    summary = client.recorder.summary()
    return {
        "p50": summary.p50,
        "p99": summary.p99,
        "mean": summary.mean,
        "completed": client.completed,
        "saturated": saturated,
    }


@register("E07", "Microkernel IPC: scheduler-mediated vs direct ptid start",
          'Section 2, "Faster Microkernels and Container Proxies"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    calls = 150 if quick else 1_500
    gaps = (20_000, 6_000) if quick else (30_000, 12_000, 6_000, 4_000)
    costs = CostModel()
    result = ExperimentResult(
        "E07", "Microkernel IPC: scheduler-mediated vs direct ptid start")

    engine = Engine()
    rtt = Table(["mechanism", "null-call RTT (cyc)", "RTT w/ 1k-cyc op"],
                title="Ping-pong round trip (closed form)")
    rtts = {}
    for name in MECHANISMS:
        ipc = _make_ipc(name, engine, costs)
        rtts[name] = ipc.rtt_cycles(0)
        rtt.add_row(name, ipc.rtt_cycles(0), ipc.rtt_cycles(1_000))
    result.add_table(rtt)

    sweep = Table(["mean gap (cyc)"]
                  + [f"{m} p50" for m in MECHANISMS]
                  + [f"{m} p99" for m in MECHANISMS],
                  title=f"fs.read latency under load ({calls} calls/point)")
    series: Dict[str, Dict[float, Dict]] = {m: {} for m in MECHANISMS}
    for gap in gaps:
        cells = {m: _under_load(m, gap, calls, costs, seed)
                 for m in MECHANISMS}
        for mech in MECHANISMS:
            series[mech][gap] = cells[mech]
        sweep.add_row(gap,
                      *[cells[m]["p50"] for m in MECHANISMS],
                      *[cells[m]["p99"] for m in MECHANISMS])
    result.add_table(sweep)

    # closed-loop: N clients in think-call loops; throughput saturates
    # at each mechanism's capacity, exposing the dispatch tax directly
    client_counts = (4,) if quick else (2, 8, 32)
    per_client = 30 if quick else 60
    closed = Table(["clients"]
                   + [f"{m} calls/kcyc" for m in MECHANISMS]
                   + [f"{m} p99" for m in MECHANISMS],
                   title=f"Closed loop, 5k-cycle think time, "
                         f"{per_client} calls/client")
    closed_series: Dict[int, Dict[str, Dict]] = {}
    for clients in client_counts:
        row = {}
        for name in MECHANISMS:
            engine = Engine()
            ipc = _make_ipc(name, engine, costs)
            population = ClosedLoopClients(
                engine, ipc, filesystem_service(), "read",
                clients=clients, think_cycles=5_000,
                rng=RngStreams(seed).stream(f"e07c.{name}.{clients}"),
                calls_per_client=per_client)
            engine.run(max_events=30_000_000)
            row[name] = {
                "throughput": population.throughput_per_kcycle(),
                "p99": population.recorder.pct(99),
            }
        closed_series[clients] = row
        closed.add_row(clients,
                       *[row[m]["throughput"] for m in MECHANISMS],
                       *[row[m]["p99"] for m in MECHANISMS])
    result.add_table(closed)

    result.data["series"] = series
    result.data["rtt"] = rtts
    result.data["closed"] = closed_series

    speedup = rtts["scheduler"] / rtts["direct-start"]
    result.add_claim(
        "direct ptid start replaces kernel entry + scheduler dispatch",
        "no need to move into kernel space and invoke the scheduler",
        f"null-call RTT {rtts['direct-start']} vs {rtts['scheduler']} "
        f"cycles ({speedup:.0f}x)",
        Verdict.SUPPORTED if speedup > 10 else Verdict.PARTIAL)
    direct_faster_everywhere = all(
        series["direct-start"][g]["p99"] < series["scheduler"][g]["p99"]
        for g in gaps)
    result.add_claim(
        "I/O-intensive services improve across the load range",
        "improves performance for I/O-intensive services",
        "direct-start p99 below scheduler p99 at every load point",
        Verdict.SUPPORTED if direct_faster_everywhere else Verdict.PARTIAL)
    most = client_counts[-1]
    closed_wins = (closed_series[most]["direct-start"]["throughput"]
                   > closed_series[most]["scheduler"]["throughput"])
    result.add_claim(
        "closed-loop throughput is higher without the dispatch tax",
        "so far resorted to using dedicated cores (TAS [48], Snap [55])",
        f"at {most} clients: direct "
        f"{closed_series[most]['direct-start']['throughput']:.2f} vs "
        f"scheduler {closed_series[most]['scheduler']['throughput']:.2f} "
        f"calls/kcycle",
        Verdict.SUPPORTED if closed_wins else Verdict.PARTIAL)
    return result
