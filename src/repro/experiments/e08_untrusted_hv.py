"""E08: "Untrusted Hypervisors" -- isolation without privilege.

Runs the ISA-level demo: a guest whose privileged instructions fault
into exception descriptors, handled by a hypervisor ptid that runs
entirely in *user mode*, authorized only by TDT entries. Compares its
virtualization tax with a modeled privileged (in-thread) hypervisor,
and checks the non-hierarchical permission example of Section 3.2
(B > A, C > B, but not C > A).
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.experiments.registry import register
from repro.hypervisor.multiguest import MultiGuestHypervisor
from repro.hypervisor.untrusted import (
    UntrustedHypervisorDemo,
    run_permission_matrix,
)


@register("E08", "Untrusted hypervisor in an unprivileged hardware thread",
          'Section 2, "Untrusted Hypervisors" + Section 3.2')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    iterations = 10 if quick else 100
    guest_work = 2_000
    handler_work = 400
    costs = CostModel()
    result = ExperimentResult(
        "E08", "Untrusted hypervisor in an unprivileged hardware thread")

    demo = UntrustedHypervisorDemo(iterations=iterations,
                                   guest_work_cycles=guest_work,
                                   handler_work_cycles=handler_work)
    outcome = demo.run()

    # the privileged baseline pays a VMX-style transition per exit but
    # skips the descriptor/monitor machinery; same handler work
    privileged_wall = iterations * (guest_work + costs.vm_exit_cycles
                                    + handler_work)
    privileged_slowdown = privileged_wall / (iterations * guest_work)

    table = Table(["hypervisor", "privileged?", "exits", "slowdown"],
                  title=f"Guest running {iterations} x {guest_work}-cycle "
                        f"bursts, one exit each")
    table.add_row("in-thread (model)", "yes (root mode)", iterations,
                  privileged_slowdown)
    table.add_row("hw-thread (ISA-level)", "no (user ptid)",
                  outcome.exits_handled, outcome.slowdown)
    result.add_table(table)

    matrix = run_permission_matrix()
    perm_table = Table(["check", "expected", "observed"],
                       title="Non-hierarchical privilege (Section 3.2)")
    perm_table.add_row("B stops A", "allowed", str(matrix["b_stopped_a"]))
    perm_table.add_row("C stops B", "allowed", str(matrix["c_stopped_b"]))
    perm_table.add_row("C stops A", "denied",
                       f"denied ({matrix['c_fault_kind']})"
                       if not matrix["c_stopped_a"] else "ALLOWED")
    result.add_table(perm_table)

    # Section 3.2's software queuing: several guests, one hypervisor ptid
    guest_counts = (1, 2) if quick else (1, 2, 4)
    mg_iterations = 3 if quick else 8
    queuing = Table(["guests", "exits serviced", "hv wakeups",
                     "exits/wakeup"],
                    title="Multiple ptids reporting to one hypervisor "
                          "ptid (software queuing)")
    queuing_series = {}
    for guests in guest_counts:
        mg = MultiGuestHypervisor(guests=guests,
                                  iterations=mg_iterations).run()
        queuing_series[guests] = mg
        queuing.add_row(guests, mg.total_exits, mg.hv_wakeups,
                        mg.coalescing_ratio)
    result.add_table(queuing)

    result.data["outcome"] = outcome
    result.data["privileged_slowdown"] = privileged_slowdown
    result.data["matrix"] = matrix
    result.data["queuing"] = queuing_series

    result.add_claim(
        "the hypervisor needs no privileged access",
        "without privileged access to the kernel or the hardware",
        f"all {outcome.exits_handled} exits handled by a user-mode ptid",
        Verdict.SUPPORTED
        if not outcome.hv_ran_privileged
        and outcome.exits_handled == iterations else Verdict.REFUTED)
    result.add_claim(
        "same functionality with the same (or better) performance",
        "the same functionality with the same performance",
        f"slowdown {outcome.slowdown:.3f}x vs privileged "
        f"{privileged_slowdown:.3f}x",
        Verdict.SUPPORTED if outcome.slowdown <= privileged_slowdown * 1.05
        else Verdict.PARTIAL)
    nonhier = (matrix["b_stopped_a"] and matrix["c_stopped_b"]
               and not matrix["c_stopped_a"] and matrix["c_faulted"])
    result.add_claim(
        "non-hierarchical privilege is expressible",
        "impossible in existing protection-ring-based designs",
        "B>A and C>B hold while C>A faults with PERMISSION_FAULT",
        Verdict.SUPPORTED if nonhier else Verdict.REFUTED)
    most = guest_counts[-1]
    all_serviced = all(
        mg.total_exits == mg.guests * mg_iterations
        for mg in queuing_series.values())
    result.add_claim(
        "multiple ptids can report exceptions to one hypervisor ptid",
        "requiring a software-based queuing design (Section 3.2)",
        f"{queuing_series[most].total_exits} exits from {most} guests "
        f"serviced in {queuing_series[most].hv_wakeups} wakeups "
        f"({queuing_series[most].coalescing_ratio:.1f} exits/wakeup)",
        Verdict.SUPPORTED if all_serviced else Verdict.REFUTED)
    return result
