"""Parallel experiment runner: fan E01-E16 across worker processes.

Every experiment builds its own :class:`~repro.machine.Machine` (or raw
:class:`~repro.sim.engine.Engine`) from a fixed seed and shares no
state with the others, so running them in separate OS processes is
trivially deterministic: each worker produces exactly the result the
serial loop would have, and only wall-clock changes. Results come back
as pickled :class:`~repro.analysis.report.ExperimentResult` objects in
experiment-id order, so callers cannot tell (other than by the clock)
which runner produced them.

The unit of distribution is the whole experiment. Sweep cells inside an
experiment are also independent, but splitting them would move the
aggregation (tables, claims) across process boundaries for little gain:
the three slowest experiments already land on distinct workers.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ExperimentResult
from repro.errors import ConfigError
from repro.sim.trace import Tracer

#: One worker job: (experiment_id, quick, seed, instrument).
_Job = Tuple[str, bool, Optional[int], bool]


@dataclass
class InstrumentedRun:
    """What :func:`run_instrumented` returns: results in id order, one
    metrics snapshot per experiment, and the workers' tracers merged
    (counters add, events concatenate up to the limit)."""

    results: List[ExperimentResult]
    snapshots: Dict[str, Dict[str, Any]]
    tracer: Tracer = field(default_factory=lambda: Tracer(enabled=True))


def _run_one(job: _Job) -> Tuple[ExperimentResult,
                                 Optional[Dict[str, Any]],
                                 Optional[Tracer]]:
    """Worker entry point: run one experiment by id (module level so it
    pickles under the spawn start method).

    With ``instrument`` set, the experiment runs inside a fresh obs
    session: every machine it builds instruments itself, and the worker
    sends back the session snapshot plus an engine-free tracer merging
    the machines' counters (a live Tracer holds the engine and its
    generator processes, which do not pickle -- Tracer.merge strips
    that)."""
    experiment_id, quick, seed, instrument = job
    from repro.experiments import get_experiment

    experiment = get_experiment(experiment_id)
    kwargs = {"quick": quick} if seed is None else {"quick": quick,
                                                    "seed": seed}
    if not instrument:
        return experiment.run(**kwargs), None, None
    import repro.obs as obs

    with obs.session(experiment_id) as sess:
        result = experiment.run(**kwargs)
    summary = Tracer(enabled=True)
    for machine in sess.machines:
        summary.merge(machine.tracer)
    return result, sess.snapshot(), summary


def _execute(jobs: List[_Job], workers: int) -> List[Tuple]:
    if workers <= 1 or len(jobs) <= 1:
        return [_run_one(job) for job in jobs]
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(_run_one, jobs)


def _plan(experiment_ids: Optional[Sequence[str]],
          workers: Optional[int]) -> Tuple[List, int]:
    from repro.experiments import all_experiments, get_experiment

    if experiment_ids is None:
        experiments = all_experiments()
    else:
        experiments = [get_experiment(eid) for eid in experiment_ids]
    if workers is not None and workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if workers is None:
        workers = os.cpu_count() or 1
    return experiments, min(workers, len(experiments))


def run_parallel(experiment_ids: Optional[Sequence[str]] = None,
                 quick: bool = False, workers: Optional[int] = None,
                 seed: Optional[int] = None) -> List[ExperimentResult]:
    """Run experiments across ``workers`` processes; results in id order.

    ``experiment_ids`` defaults to every registered experiment;
    ``workers`` defaults to the machine's CPU count (capped at the
    number of experiments). ``workers=1`` runs serially in-process,
    which is also the fallback when only one experiment is requested.
    """
    experiments, workers = _plan(experiment_ids, workers)
    jobs: List[_Job] = [(e.experiment_id, quick, seed, False)
                        for e in experiments]
    return [result for result, _snapshot, _tracer
            in _execute(jobs, workers)]


def span_artifacts(results: Sequence[ExperimentResult]
                   ) -> Dict[str, List[Dict[str, Any]]]:
    """The span-tree exemplars published by traced experiments, keyed
    by experiment id (``repro evaluate --spans DIR`` dumps these).

    Experiments that trace requests (E16) retain their tail exemplar
    trees in ``result.data["span_exemplars"]`` -- a ``{design: [tree,
    ...]}`` map.  Because the trees ride inside the pickled result, a
    parallel run ships byte-identical spans to the serial loop's; the
    byte-identity test pins that.  A store-per-run design is deliberate:
    one ambient store across a whole experiment would collide the
    per-service request/attempt ids of its many cluster runs.
    """
    artifacts: Dict[str, List[Dict[str, Any]]] = {}
    for result in results:
        exemplars = result.data.get("span_exemplars")
        if not exemplars:
            continue
        trees: List[Dict[str, Any]] = []
        for design in sorted(exemplars):
            for tree in exemplars[design]:
                trees.append({"label": design, "tree": tree})
        artifacts[result.experiment_id] = trees
    return artifacts


def run_instrumented(experiment_ids: Optional[Sequence[str]] = None,
                     quick: bool = False, workers: Optional[int] = None,
                     seed: Optional[int] = None) -> InstrumentedRun:
    """Like :func:`run_parallel` but with full observability: each
    experiment runs in its own obs session (serial and parallel produce
    identical snapshots -- the session is per-experiment either way)."""
    experiments, workers = _plan(experiment_ids, workers)
    jobs: List[_Job] = [(e.experiment_id, quick, seed, True)
                        for e in experiments]
    run = InstrumentedRun(results=[], snapshots={})
    for job, (result, snapshot, tracer) in zip(jobs, _execute(jobs, workers)):
        run.results.append(result)
        run.snapshots[job[0]] = snapshot
        run.tracer.merge(tracer)
    return run
