"""Parallel experiment runner: fan E01-E13 across worker processes.

Every experiment builds its own :class:`~repro.machine.Machine` (or raw
:class:`~repro.sim.engine.Engine`) from a fixed seed and shares no
state with the others, so running them in separate OS processes is
trivially deterministic: each worker produces exactly the result the
serial loop would have, and only wall-clock changes. Results come back
as pickled :class:`~repro.analysis.report.ExperimentResult` objects in
experiment-id order, so callers cannot tell (other than by the clock)
which runner produced them.

The unit of distribution is the whole experiment. Sweep cells inside an
experiment are also independent, but splitting them would move the
aggregation (tables, claims) across process boundaries for little gain:
the three slowest experiments already land on distinct workers.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import ExperimentResult
from repro.errors import ConfigError


def _run_one(job: Tuple[str, bool, Optional[int]]) -> ExperimentResult:
    """Worker entry point: run one experiment by id (module level so it
    pickles under the spawn start method)."""
    experiment_id, quick, seed = job
    from repro.experiments import get_experiment

    experiment = get_experiment(experiment_id)
    if seed is None:
        return experiment.run(quick=quick)
    return experiment.run(quick=quick, seed=seed)


def run_parallel(experiment_ids: Optional[Sequence[str]] = None,
                 quick: bool = False, workers: Optional[int] = None,
                 seed: Optional[int] = None) -> List[ExperimentResult]:
    """Run experiments across ``workers`` processes; results in id order.

    ``experiment_ids`` defaults to every registered experiment;
    ``workers`` defaults to the machine's CPU count (capped at the
    number of experiments). ``workers=1`` runs serially in-process,
    which is also the fallback when only one experiment is requested.
    """
    from repro.experiments import all_experiments, get_experiment

    if experiment_ids is None:
        experiments = all_experiments()
    else:
        experiments = [get_experiment(eid) for eid in experiment_ids]
    if workers is not None and workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, len(experiments))
    if workers <= 1 or len(experiments) <= 1:
        if seed is None:
            return [experiment.run(quick=quick)
                    for experiment in experiments]
        return [experiment.run(quick=quick, seed=seed)
                for experiment in experiments]
    jobs = [(experiment.experiment_id, quick, seed)
            for experiment in experiments]
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(_run_one, jobs)
