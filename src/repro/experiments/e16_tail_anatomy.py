"""E16: tail anatomy -- what the p99 request actually spent its time on.

E14 shows *that* the software-thread transition tax is amplified by
cluster fan-out; this experiment shows *where* the cycles go.  Every
request is traced end to end (:mod:`repro.obs.spans`): client send,
balancer pick, fabric hop, node admission, backend service, reply hop,
hedged siblings.  The critical path of each completed request
decomposes its latency **exactly** -- cycle for cycle -- into

    hedge_wait + net_request + queue + service + switch_tax
    + blocked + net_response == latency

so the p50-vs-p99 tables below are not estimates: each row is the real
decomposition of the request sitting at that percentile.

The anatomy makes the paper's argument mechanically explicit: at the
median the designs look alike (service + RTT + wire), but the p99
request on a sw-threads cluster pays its tail in *switch tax and the
queueing it induces* -- the per-transition overhead consumes capacity,
so the tax shows up twice, once directly and once as extra waiting.
On hw-threads the tax column is (near) zero and the tail is plain
queueing, which is why the E14 sw/hw ratio ordering reappears here
from the traced latencies alone.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

import repro.obs.spans as spans
from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.cluster import ClusterConfig, DESIGNS, run_cluster, scaled
from repro.experiments.registry import register

#: The designs compared, in reporting order.
DESIGN_NAMES = ("hw-threads", "sw-threads", "event-loop")

MEAN_SERVICE = 5_000        # ~1.7 us at 3 GHz: a microsecond-scale RPC
SEGMENTS = 4                # three remote calls mid-request
RTT = 20_000                # ~6.7 us network round trip
LOAD = 0.06                 # the E14 operating point
POLICY = "random"           # placement without load-awareness
THREADS_PER_PEER = 4        # fan-in worker pool (the sw crowding term)
MAX_FANOUT = 8

#: Percentiles whose requests are dissected.
PERCENTILES = (50.0, 99.0)


def _config(**overrides) -> ClusterConfig:
    defaults = dict(nodes=16, design=DESIGNS["hw-threads"], policy=POLICY,
                    fanout=8, load=LOAD, mean_service_cycles=MEAN_SERVICE,
                    segments=SEGMENTS, rtt_cycles=RTT,
                    threads_per_peer=THREADS_PER_PEER)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _trace(config: ClusterConfig, seed: int) -> spans.SpanStore:
    """One traced run; the store holds every completed request's exact
    critical-path decomposition."""
    with spans.tracing(top_k=8) as store:
        run_cluster(config, seed=seed)
    store.finalize()
    return store


def _requests_for(nodes: int, base: int) -> int:
    """Hold the simulated time span as the cluster grows (E14's rule)."""
    return max(base, base * nodes // 16)


def _net(components: Dict[str, int]) -> int:
    return (components["hedge_wait"] + components["net_request"]
            + components["net_response"])


def _share(components: Dict[str, int], latency: int) -> float:
    return components["switch_tax"] / latency if latency else 0.0


def _taxq_share(components: Dict[str, int], latency: int) -> float:
    """Tax plus the queueing it induces: the per-transition overhead
    consumes server capacity, so under load it is paid twice -- once
    directly and once as the extra waiting behind everyone else's
    transitions."""
    if not latency:
        return 0.0
    return (components["switch_tax"] + components["queue"]) / latency


def _anatomy_rows(table: Table, design_name: str,
                  store: spans.SpanStore) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for percentile in PERCENTILES:
        picked = store.percentile_request(percentile)
        comp = picked["components"]
        latency = picked["latency"]
        key = f"p{percentile:g}"
        out[key] = {"latency": latency, **comp,
                    "tax_share": _share(comp, latency)}
        table.add_row(
            design_name, key, latency, comp["queue"], comp["service"],
            comp["switch_tax"], comp["blocked"], _net(comp),
            f"{100.0 * _share(comp, latency):.1f}%")
    return out


def _conservation(store: spans.SpanStore) -> Tuple[int, int]:
    """(requests checked, violations) -- must come back (N, 0)."""
    bad = 0
    for latency, _seq, _request_id, comp in store.paths():
        if sum(comp.values()) != latency or any(v < 0
                                                for v in comp.values()):
            bad += 1
    return len(store.paths()), bad


@register("E16", "Tail anatomy: critical-path decomposition of the p99",
          'Section 1, "multiplexing ... is expensive" (dissected)')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    node_counts: Tuple[int, ...] = (2, 8, 16) if quick else (2, 4, 8, 16, 32)
    requests = 300 if quick else 900
    result = ExperimentResult(
        "E16", "Tail anatomy: critical-path decomposition of the p99")
    checked_total, bad_total = 0, 0

    # ------------------------------------------------------------------
    # 1. p50 vs p99 anatomy per design (model backend, one mid cluster)
    # ------------------------------------------------------------------
    anatomy_nodes = 16
    anatomy = Table(["design", "pctl", "latency", "queue", "service",
                     "switch tax", "blocked", "net+hedge", "tax share"],
                    title=f"Critical-path anatomy (cyc), {anatomy_nodes} "
                          f"nodes, fanout {min(MAX_FANOUT, anatomy_nodes)}, "
                          f"{POLICY} placement")
    anatomy_series: Dict[str, Dict[str, Dict[str, float]]] = {}
    span_exemplars: Dict[str, list] = {}
    for name in DESIGN_NAMES:
        store = _trace(_config(nodes=anatomy_nodes,
                               design=DESIGNS[name],
                               requests=_requests_for(anatomy_nodes,
                                                      requests)), seed)
        checked, bad = _conservation(store)
        checked_total += checked
        bad_total += bad
        anatomy_series[name] = _anatomy_rows(anatomy, name, store)
        span_exemplars[name] = store.exemplars()
    result.add_table(anatomy)

    # ------------------------------------------------------------------
    # 2. the tax share vs scale, and the E14 ratio from traced latencies
    # ------------------------------------------------------------------
    scale = Table(["nodes", "fanout", "sw tax+queue p50",
                   "sw tax+queue p99", "hw tax+queue p99", "hw p99",
                   "sw p99", "sw/hw"],
                  title="Switch tax + induced queueing, share of the "
                        "critical path vs scale (model backend)")
    scale_series: Dict[int, Dict[str, float]] = {}
    for nodes in node_counts:
        fanout = min(MAX_FANOUT, nodes)
        cells: Dict[str, spans.SpanStore] = {}
        for name in ("hw-threads", "sw-threads"):
            cells[name] = _trace(
                _config(nodes=nodes, fanout=fanout, design=DESIGNS[name],
                        requests=_requests_for(nodes, requests)), seed)
            checked, bad = _conservation(cells[name])
            checked_total += checked
            bad_total += bad

        def taxq(design: str, percentile: float) -> float:
            picked = cells[design].percentile_request(percentile)
            return _taxq_share(picked["components"], picked["latency"])

        hw_p99 = cells["hw-threads"].percentile_request(99.0)["latency"]
        sw_p99 = cells["sw-threads"].percentile_request(99.0)["latency"]
        scale_series[nodes] = {
            "fanout": fanout,
            "sw_taxq_p50": taxq("sw-threads", 50.0),
            "sw_taxq_p99": taxq("sw-threads", 99.0),
            "hw_taxq_p99": taxq("hw-threads", 99.0),
            "hw_p99": hw_p99, "sw_p99": sw_p99,
            "ratio": sw_p99 / hw_p99,
        }
        scale.add_row(nodes, fanout,
                      f"{100 * scale_series[nodes]['sw_taxq_p50']:.1f}%",
                      f"{100 * scale_series[nodes]['sw_taxq_p99']:.1f}%",
                      f"{100 * scale_series[nodes]['hw_taxq_p99']:.1f}%",
                      hw_p99, sw_p99, f"{sw_p99 / hw_p99:.2f}x")
    result.add_table(scale)

    # ------------------------------------------------------------------
    # 3. the ISA backend: the machine pays the tax in executed cycles
    # ------------------------------------------------------------------
    isa_nodes = 2 if quick else 4
    isa_requests = 30 if quick else 100
    isa = Table(["design", "pctl", "latency", "queue", "service",
                 "switch tax", "blocked", "net+hedge", "tax share"],
                title=f"Critical-path anatomy, ISA backend ({isa_nodes} "
                      f"nodes, fanout 1)")
    isa_series: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in ("hw-threads", "sw-threads"):
        store = _trace(_config(nodes=isa_nodes, fanout=1, backend="isa",
                               design=DESIGNS[name], segments=2,
                               mean_service_cycles=4_000,
                               requests=isa_requests,
                               policy="round-robin"), seed + 1)
        checked, bad = _conservation(store)
        checked_total += checked
        bad_total += bad
        isa_series[name] = _anatomy_rows(isa, name, store)
    result.add_table(isa)

    # ------------------------------------------------------------------
    # 4. tracing is sharding-invisible: the span payload is byte-equal
    # ------------------------------------------------------------------
    ident_config = _config(nodes=8, fanout=4, design=DESIGNS["sw-threads"],
                           requests=_requests_for(8, requests))
    payloads = []
    for shards in (1, 2):
        with spans.tracing(top_k=8) as store:
            run_cluster(scaled(ident_config, shards=shards), seed=seed + 2,
                        transport="process")
        payloads.append(json.dumps(store.payload(), sort_keys=True))
    identical = payloads[0] == payloads[1]

    # the retained tail exemplar trees, per design: what `repro
    # evaluate --spans DIR` dumps (JSON + Perfetto) as the CI artifact
    result.data["span_exemplars"] = span_exemplars
    result.data["anatomy"] = anatomy_series
    result.data["scale"] = scale_series
    result.data["isa"] = isa_series
    result.data["node_counts"] = list(node_counts)
    result.data["conservation"] = {"checked": checked_total,
                                   "violations": bad_total}
    result.data["sharding_identical"] = identical

    # ------------------------------------------------------------------
    # claims
    # ------------------------------------------------------------------
    result.add_claim(
        "every traced request decomposes exactly: the seven components "
        "sum to the end-to-end latency, cycle for cycle",
        "a simulation claim the paper's argument rests on implicitly -- "
        "attribution must add up before shares mean anything",
        f"{checked_total} requests checked, {bad_total} violations",
        Verdict.SUPPORTED if bad_total == 0 else Verdict.PARTIAL)

    concentrates = all(
        scale_series[n]["sw_taxq_p99"] > scale_series[n]["sw_taxq_p50"]
        for n in node_counts if n >= 8)
    above_hw = all(
        scale_series[n]["sw_taxq_p99"] > scale_series[n]["hw_taxq_p99"]
        for n in node_counts)
    sw99 = anatomy_series["sw-threads"]["p99"]
    tax_and_queue = _taxq_share(sw99, int(sw99["latency"]))
    result.add_claim(
        "the sw-threads tail is switch-tax anatomy: tax plus the "
        "queueing it induces concentrate in the p99 critical path and "
        "dwarf the hw-threads columns at every scale",
        "multiplexing a large number of software threads onto a small "
        "number of hardware threads is expensive ... suffering many "
        "cache misses along the way",
        f"sw tax+queue p99 share > p50 share at every >=8-node count = "
        f"{concentrates}, > hw share at every count = {above_hw}; "
        f"tax+queue = {100 * tax_and_queue:.0f}% of the p99 path at "
        f"{anatomy_nodes} nodes",
        Verdict.SUPPORTED
        if concentrates and above_hw and tax_and_queue > 0.5
        else Verdict.PARTIAL)

    ratios = [scale_series[n]["ratio"] for n in node_counts]
    ordered = all(b > a for a, b in zip(ratios, ratios[1:]))
    result.add_claim(
        "the traced critical paths reproduce E14's tail amplification: "
        "the sw/hw p99 ratio grows with cluster size",
        "the per-node transition tax is magnified, not averaged away, "
        "by fan-out (E14, re-derived from span trees)",
        "sw/hw p99 ratio vs nodes: "
        + " -> ".join(f"{r:.2f}" for r in ratios),
        Verdict.SUPPORTED if ordered else Verdict.PARTIAL)

    hw_share = isa_series["hw-threads"]["p99"]["tax_share"]
    sw_share = isa_series["sw-threads"]["p99"]["tax_share"]
    result.add_claim(
        "the ISA backend agrees: the executed machine charges sw-threads "
        "a visible tax where hw-threads pays in silicon",
        "the cost of an isolation domain switch need not be paid in "
        "software (Section 2, executed rather than modeled)",
        f"p99 switch-tax share isa: sw {100 * sw_share:.1f}% vs hw "
        f"{100 * hw_share:.1f}% (hw wakeups land in the machine itself)",
        Verdict.SUPPORTED if sw_share > hw_share else Verdict.PARTIAL)

    result.add_claim(
        "distributed tracing is sharding-invisible: a PDES run ships "
        "span fragments home and reproduces the single-engine trace "
        "byte for byte",
        "cross-machine communication is orders of magnitude more "
        "expensive than an intra-machine context switch "
        "(infrastructure claim, as in E14)",
        f"span payloads for shards 1 vs 2 identical = {identical}",
        Verdict.SUPPORTED if identical else Verdict.PARTIAL)
    return result
