"""E11: wakeup-latency tiers vs the software context switch.

Section 4's latency budget, measured on the live model:

- starting a register-file-resident ptid costs ~pipeline depth
  ("roughly 20 clock cycles");
- starting one spilled to L2/L3 adds the bulk transfer ("10 to 50 clock
  cycles (i.e., 3ns to 16ns for a 3GHz CPU)");
- a software context switch costs "hundreds of cycles" before cache
  pollution.

Includes the ablation DESIGN.md calls out: criticality pinning vs LRU
spill, shown by starting a cold thread with and without a pin.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.experiments.registry import register
from repro.hw.storage import ThreadStateStore
from repro.machine import build_machine
from repro.sim.clock import Clock


def _measured_start_latencies(costs: CostModel) -> dict:
    """Start a ptid out of each tier of a live store and record the
    charged latency."""
    store = ThreadStateStore(costs=costs, rf_bytes=2 * 1024, l2_slots=2)
    # 2 KiB RF = 2 full contexts; fill RF with 0,1; L2 with 2,3; rest L3
    for ptid in range(8):
        store.register(ptid)
    tiers = {ptid: store.tier_of(ptid).value for ptid in range(8)}
    lat = {}
    lat["rf"] = store.start_latency(0, evictable=[])
    l2_victim = next(p for p, t in tiers.items() if t == "l2")
    lat["l2"] = store.start_latency(l2_victim, evictable=[1])
    l3_victim = next(p for p, t in tiers.items() if t == "l3")
    lat["l3"] = store.start_latency(l3_victim, evictable=[0, 1])
    return lat


def _isa_wakeup_cycles() -> int:
    """ISA-level: cycles from a store to the woken thread's first
    instruction completing, on the real core."""
    machine = build_machine()
    flag = machine.alloc("flag", 64)
    response = machine.alloc("resp", 64)
    machine.load_asm(0, """
        movi r1, FLAG
        monitor r1
        mwait
        movi r2, RESP
        movi r3, 1
        st r2, 0, r3
        halt
    """, symbols={"FLAG": flag.base, "RESP": response.base},
        supervisor=True, name="waiter")
    times = {}
    machine.memory.watch_bus.subscribe(
        response.base, lambda info: times.setdefault("resp",
                                                     machine.engine.now))
    machine.boot(0)
    machine.run(max_events=200)  # let the waiter block
    wake_at = machine.engine.now + 100
    machine.engine.at(wake_at, machine.memory.store, flag.base, 1, "probe")
    machine.run(until=wake_at + 10_000)
    machine.check()
    if "resp" not in times:
        raise AssertionError("waiter never responded")
    return times["resp"] - wake_at


def _pinning_ablation(costs: CostModel) -> dict:
    """Criticality pinning: a pinned context always starts at RF cost."""
    outcomes = {}
    for pinned in (False, True):
        store = ThreadStateStore(costs=costs, rf_bytes=2 * 1024, l2_slots=4)
        for ptid in range(12):
            store.register(ptid)
        critical = 11  # registered last -> coldest tier
        if pinned:
            store.pin(critical)
        else:
            # unpinned: churn the RF so the critical thread stays cold
            for other in range(2):
                store.start_latency(other, evictable=[critical])
        outcomes["pinned" if pinned else "unpinned"] = store.start_latency(
            critical, evictable=[0, 1])
    return outcomes


@register("E11", "Wakeup latency by storage tier",
          'Section 4, "Storage for Thread State" / '
          '"Support for Thread Scheduling"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    costs = CostModel()
    clock = Clock(3.0)
    result = ExperimentResult("E11", "Wakeup latency by storage tier")

    measured = _measured_start_latencies(costs)
    isa_wakeup = _isa_wakeup_cycles()
    sw_switch = costs.sw_switch_total_cycles(include_pollution=False)

    table = Table(["operation", "cycles", "ns @3GHz", "paper"],
                  title="Thread start / switch latency")
    table.add_row("start ptid (register file)", measured["rf"],
                  clock.cycles_to_ns(measured["rf"]),
                  "roughly 20 clock cycles")
    table.add_row("start ptid (L2 spill)", measured["l2"],
                  clock.cycles_to_ns(measured["l2"]),
                  "+10-50 cycles (3-16 ns)")
    table.add_row("start ptid (L3 spill)", measured["l3"],
                  clock.cycles_to_ns(measured["l3"]),
                  "+10-50 cycles (3-16 ns)")
    table.add_row("mwait wakeup (ISA-level, RF)", isa_wakeup,
                  clock.cycles_to_ns(isa_wakeup), "nanosecond scale")
    table.add_row("software switch + scheduler", sw_switch,
                  clock.cycles_to_ns(sw_switch), "hundreds of cycles")
    result.add_table(table)

    pinning = _pinning_ablation(costs)
    ablation = Table(["policy", "critical-thread start (cyc)"],
                     title="Ablation: criticality pinning vs LRU spill")
    ablation.add_row("LRU (unpinned)", pinning["unpinned"])
    ablation.add_row("pinned to RF", pinning["pinned"])
    result.add_table(ablation)

    result.data["measured"] = measured
    result.data["isa_wakeup"] = isa_wakeup
    result.data["sw_switch"] = sw_switch
    result.data["pinning"] = pinning

    result.add_claim(
        "RF-resident start costs about a pipeline depth",
        "roughly 20 clock cycles in modern processors",
        f"{measured['rf']} cycles",
        Verdict.SUPPORTED if 10 <= measured["rf"] <= 40 else Verdict.PARTIAL)
    transfer_ns = clock.cycles_to_ns(measured["l3"] - measured["rf"])
    result.add_claim(
        "cache-spill transfer adds 10-50 cycles (3-16 ns at 3 GHz)",
        "limited to 10 to 50 clock cycles (i.e., 3ns to 16ns)",
        f"L2 +{measured['l2'] - measured['rf']} cyc, "
        f"L3 +{measured['l3'] - measured['rf']} cyc "
        f"({transfer_ns:.1f} ns)",
        Verdict.SUPPORTED
        if 10 <= measured["l3"] - measured["rf"] <= 50 else Verdict.PARTIAL)
    ratio = sw_switch / measured["rf"]
    result.add_claim(
        "hardware starts are an order of magnitude below software "
        "switches",
        "faster and simpler to start and stop ... than to frequently "
        "multiplex",
        f"software switch {sw_switch} cyc = {ratio:.0f}x an RF start",
        Verdict.SUPPORTED if ratio >= 10 else Verdict.PARTIAL)
    result.add_claim(
        "pinning keeps critical threads at RF start cost",
        "selecting which threads are stored closer to the core based "
        "on criticality",
        f"pinned {pinning['pinned']} vs unpinned {pinning['unpinned']} cyc",
        Verdict.SUPPORTED
        if pinning["pinned"] < pinning["unpinned"] else Verdict.PARTIAL)
    return result
