"""E04: "Exception-less System Calls" without the asynchrony.

The paper's trade-off: in-thread syscalls pay the mode switch
("hundreds of cycles"); FlexSC-style separate kernel threads amortize
it but need "complex asynchronous APIs" -- visible here as per-call
latency inflated by the batching window. The dedicated-hardware-thread
path gets synchronous semantics *and* tiny overhead.

Two tables: per-call cost at varying syscall intensity (user work
between calls), and the per-path overhead constants.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.experiments.registry import register
from repro.kernel.syscalls import (
    FlexScPath,
    HwThreadSyscallPath,
    SyncSyscallPath,
    SyscallRunner,
)
from repro.sim.engine import Engine

KERNEL_WORK = 300

PATHS = ("sync", "flexsc", "hw-thread")


def _make_path(name: str, engine: Engine, costs: CostModel):
    if name == "sync":
        return SyncSyscallPath(engine, costs)
    if name == "flexsc":
        return FlexScPath(engine, costs)
    if name == "hw-thread":
        return HwThreadSyscallPath(engine, costs)
    raise ValueError(name)


def _run_one(name: str, user_work: int, iterations: int,
             costs: CostModel) -> Dict:
    engine = Engine()
    path = _make_path(name, engine, costs)
    runner = SyscallRunner(engine, path, iterations,
                           user_work_cycles=user_work,
                           kernel_work_cycles=KERNEL_WORK)
    engine.run()
    return {
        "p50": runner.recorder.pct(50),
        "overhead_frac": runner.overhead_fraction(),
        "total": runner.total_cycles(),
        "path_overhead": path.overhead_cycles(),
    }


@register("E04", "Exception-less syscalls via dedicated hardware threads",
          'Section 2, "Exception-less System Calls and No VM-Exits"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    iterations = 100 if quick else 1_000
    user_works = (500, 5_000) if quick else (200, 500, 2_000, 10_000)
    costs = CostModel()
    result = ExperimentResult(
        "E04", "Exception-less syscalls via dedicated hardware threads")

    constants = Table(["path", "per-call overhead (cyc)", "API"],
                      title="Per-call overhead constants")
    constants.add_row("sync in-thread",
                      SyncSyscallPath(Engine(), costs).overhead_cycles(),
                      "synchronous")
    constants.add_row("FlexSC batched",
                      FlexScPath(Engine(), costs).overhead_cycles(),
                      "asynchronous (batch window)")
    constants.add_row("dedicated hw thread",
                      HwThreadSyscallPath(Engine(), costs).overhead_cycles(),
                      "synchronous")
    result.add_table(constants)

    sweep = Table(["user work (cyc)"]
                  + [f"{p} p50" for p in PATHS]
                  + [f"{p} ovh%" for p in PATHS],
                  title=f"Per-call latency and overhead fraction, "
                        f"{iterations} calls, kernel work {KERNEL_WORK} cyc")
    series: Dict[str, Dict[int, Dict]] = {p: {} for p in PATHS}
    for user_work in user_works:
        cells = {p: _run_one(p, user_work, iterations, costs) for p in PATHS}
        for path in PATHS:
            series[path][user_work] = cells[path]
        sweep.add_row(user_work,
                      *[cells[p]["p50"] for p in PATHS],
                      *[100.0 * cells[p]["overhead_frac"] for p in PATHS])
    result.add_table(sweep)
    result.data["series"] = series

    hw = series["hw-thread"]
    sync = series["sync"]
    flexsc = series["flexsc"]
    heaviest = user_works[0]
    result.add_claim(
        "mode switches cost hundreds of cycles per syscall",
        "can take hundreds of cycles [46, 69]",
        f"sync path charges {costs.mode_switch_cycles} cycles per call",
        Verdict.SUPPORTED if costs.mode_switch_cycles >= 100
        else Verdict.REFUTED)
    hw_beats_sync = all(hw[w]["p50"] < sync[w]["p50"] for w in user_works)
    result.add_claim(
        "dedicated hw-thread syscalls avoid the mode-switch overhead",
        "avoiding the mode switching overheads",
        f"p50 at {heaviest}-cycle user work: hw {hw[heaviest]['p50']:.0f} "
        f"vs sync {sync[heaviest]['p50']:.0f} cycles",
        Verdict.SUPPORTED if hw_beats_sync else Verdict.REFUTED)
    sync_latency_beats_flexsc = all(
        flexsc[w]["p50"] > sync[w]["p50"] for w in user_works)
    result.add_claim(
        "separate kernel threads need async batching (FlexSC) and "
        "suffer per-call delays",
        "requires complex asynchronous APIs ... excessive delays",
        f"FlexSC p50 {flexsc[heaviest]['p50']:.0f} vs sync "
        f"{sync[heaviest]['p50']:.0f} cycles for a synchronous caller",
        Verdict.SUPPORTED if sync_latency_beats_flexsc else Verdict.PARTIAL)
    return result
