"""E12: hardware PS scheduling + thread-per-request under variability.

Section 4: fine-grain hardware round robin "emulates processor sharing
(PS)" and "[t]he combination of PS scheduling with thread-per-request
will actually provide superior performance for server workloads with
high execution-time variability [46, 80]".

Sweep 1 (variability): p99 latency of FIFO vs PS at fixed load while
the service-time SCV rises -- the crossover where PS starts winning is
the claim's shape.

Sweep 2 (the RR-quantum ablation from DESIGN.md): software RR must
choose between a coarse quantum (approaching FIFO's tail) and a fine
quantum (switch overhead consuming the server); hardware RR with a
zero-cost switch gets the fine-grain limit for free.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.experiments.registry import register
from repro.kernel.sched import (
    FifoServer,
    ProcessorSharingServer,
    RoundRobinServer,
    feed_trace,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.requests import RequestGenerator, gap_for_load
from repro.workloads.service import LogNormal

MEAN_SERVICE = 1_000
LOAD = 0.7


def _trace(scv: float, requests: int, seed: int, tag: str):
    service = LogNormal(MEAN_SERVICE, scv=scv)
    gap = gap_for_load(service, LOAD)
    rng = RngStreams(seed).stream(f"e12.{tag}.{scv}")
    return RequestGenerator(PoissonArrivals(gap), service, rng).trace(requests)


def _serve(server_factory, trace) -> Dict:
    engine = Engine()
    server = server_factory(engine)
    feed_trace(engine, server, trace)
    engine.run()
    summary = server.recorder.summary()
    return {"p50": summary.p50, "p99": summary.p99, "mean": summary.mean,
            "overhead": getattr(server, "overhead_cycles", 0)}


@register("E12", "PS + thread-per-request under service variability",
          'Section 4, "Support for Thread Scheduling"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    requests = 400 if quick else 4_000
    scvs = (0.25, 8.0) if quick else (0.25, 1.0, 4.0, 16.0)
    costs = CostModel()
    result = ExperimentResult(
        "E12", "PS + thread-per-request under service variability")

    sweep = Table(["service SCV", "FIFO p99", "PS p99", "PS wins?"],
                  title=f"p99 latency (cyc) at load {LOAD}, "
                        f"{requests} requests/point")
    series: Dict[str, Dict[float, Dict]] = {"fifo": {}, "ps": {}}
    for scv in scvs:
        trace = _trace(scv, requests, seed, "var")
        fifo = _serve(lambda e: FifoServer(e), trace)
        trace = _trace(scv, requests, seed, "var")  # fresh copies
        ps = _serve(lambda e: ProcessorSharingServer(e), trace)
        series["fifo"][scv] = fifo
        series["ps"][scv] = ps
        sweep.add_row(scv, fifo["p99"], ps["p99"],
                      "yes" if ps["p99"] < fifo["p99"] else "no")
    result.add_table(sweep)

    # ablation: RR quantum sweep with software vs hardware switch cost
    sw_cost = costs.sw_switch_total_cycles(include_pollution=False)
    quanta = (100, 2_000) if quick else (50, 200, 1_000, 5_000)
    high_scv = scvs[-1]
    ablation = Table(["quantum (cyc)", "sw-RR p99", "hw-RR p99",
                      "sw overhead (cyc)"],
                     title=f"RR quantum ablation at SCV {high_scv}: "
                           f"switch cost {sw_cost} (sw) vs 0 (hw)")
    ablation_series: Dict[int, Dict] = {}
    for quantum in quanta:
        trace = _trace(high_scv, requests, seed, "abl")
        sw = _serve(lambda e, q=quantum: RoundRobinServer(
            e, quantum=q, switch_cost=sw_cost), trace)
        trace = _trace(high_scv, requests, seed, "abl")
        hw = _serve(lambda e, q=quantum: RoundRobinServer(
            e, quantum=q, switch_cost=0), trace)
        ablation_series[quantum] = {"sw": sw, "hw": hw}
        ablation.add_row(quantum, sw["p99"], hw["p99"], sw["overhead"])
    result.add_table(ablation)
    result.data["series"] = series
    result.data["ablation"] = ablation_series

    high = scvs[-1]
    low = scvs[0]
    ps_wins_high = series["ps"][high]["p99"] < series["fifo"][high]["p99"]
    result.add_claim(
        "PS beats FIFO under high execution-time variability",
        "superior performance for server workloads with high "
        "execution-time variability [46, 80]",
        f"p99 at SCV {high}: PS {series['ps'][high]['p99']:.0f} vs FIFO "
        f"{series['fifo'][high]['p99']:.0f} cycles",
        Verdict.SUPPORTED if ps_wins_high else Verdict.REFUTED)
    fifo_fine_low = (series["fifo"][low]["p99"]
                     <= series["ps"][low]["p99"] * 1.5)
    result.add_claim(
        "at low variability FIFO is competitive (PS is not a free lunch)",
        "PS emulation targets high-variability workloads",
        f"p99 at SCV {low}: FIFO {series['fifo'][low]['p99']:.0f} vs PS "
        f"{series['ps'][low]['p99']:.0f} cycles",
        Verdict.SUPPORTED if fifo_fine_low else Verdict.PARTIAL)
    fine, coarse = quanta[0], quanta[-1]
    hw_fine_best = (ablation_series[fine]["hw"]["p99"]
                    <= ablation_series[coarse]["hw"]["p99"])
    sw_fine_costly = (ablation_series[fine]["sw"]["p99"]
                      > ablation_series[fine]["hw"]["p99"])
    result.add_claim(
        "fine-grain RR needs hardware: software switch costs poison "
        "small quanta",
        "execute runnable hardware threads in a fine-grain, round-robin "
        "manner",
        f"p99 at quantum {fine}: sw-RR "
        f"{ablation_series[fine]['sw']['p99']:.0f} vs hw-RR "
        f"{ablation_series[fine]['hw']['p99']:.0f} cycles",
        Verdict.SUPPORTED if hw_fine_best and sw_fine_costly
        else Verdict.PARTIAL)
    return result
