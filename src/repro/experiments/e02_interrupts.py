"""E02: "No More Interrupts" -- mwait dispatch vs IDT interrupt delivery.

Two measurements of the same APIC-timer event stream:

1. **ISA-level**: a real handler ptid on the simulated core runs the
   paper's loop (monitor the counter word, mwait, respond); the
   measured write-to-response latency comes out of the machine itself.
2. **Behavioral, paired**: the IDT path (IRQ entry/exit + scheduler +
   context switch + cache pollution) and the hardware-thread path
   consume identical tick streams; the table reports per-event delivery
   latency and the speedup.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.devices.timer import ApicTimer
from repro.experiments.registry import register
from repro.kernel.interrupts import HwThreadDispatch, IdtInterruptPath
from repro.machine import build_machine
from repro.sim.engine import Engine

_HANDLER_ASM = """
handler_loop:
    movi r1, COUNTER
    monitor r1
    mwait
    ld r2, r1, 0
    movi r3, RESPONSE
    st r3, 0, r2
    movi r4, TICKS
    blt r2, r4, handler_loop
    halt
"""


def _isa_level_latencies(ticks: int, period: int) -> List[int]:
    """Write-to-response latency measured on the real core."""
    machine = build_machine()
    counter = machine.alloc("tick-counter", 64)
    response = machine.alloc("tick-response", 64)
    machine.load_asm(0, _HANDLER_ASM,
                     symbols={"COUNTER": counter.base,
                              "RESPONSE": response.base,
                              "TICKS": ticks},
                     supervisor=True, name="tick-handler")
    write_times: List[int] = []
    response_times: List[int] = []
    machine.memory.watch_bus.subscribe(
        counter.base,
        lambda info: write_times.append(machine.engine.now),
        owner="probe-counter")
    machine.memory.watch_bus.subscribe(
        response.base,
        lambda info: response_times.append(machine.engine.now),
        owner="probe-response")
    timer = ApicTimer(machine.engine, machine.memory, counter.base,
                      period_cycles=period, max_ticks=ticks)
    machine.boot(0)
    timer.start()
    machine.run(until=(ticks + 2) * period + 100_000)
    machine.check()
    if len(response_times) < ticks:
        raise AssertionError(
            f"handler responded to {len(response_times)}/{ticks} ticks")
    return [resp - write for write, resp
            in zip(write_times, response_times)]


def _behavioral_latencies(ticks: int, period: int,
                          costs: CostModel) -> dict:
    """Paired IDT vs hw-thread delivery over identical tick streams."""
    results = {}
    for world in ("idt", "hw"):
        engine = Engine()
        # a scratch memory word for the hw dispatch to watch
        from repro.mem.memory import Memory
        memory = Memory()
        word = memory.alloc("tick", 64)
        if world == "idt":
            path = IdtInterruptPath(engine, costs)
            timer = ApicTimer(engine, memory, word.base, period,
                              legacy_irq=path.raise_irq, max_ticks=ticks)
        else:
            path = HwThreadDispatch(engine, memory, word.base, costs)
            timer = ApicTimer(engine, memory, word.base, period,
                              max_ticks=ticks)
        timer.start()
        engine.run(until=(ticks + 2) * period + 100_000)
        results[world] = path.recorder.samples
    return results


@register("E02", "Interrupt elimination: mwait dispatch vs IDT delivery",
          'Section 2, "No More Interrupts"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    ticks = 20 if quick else 200
    period = 10_000
    costs = CostModel()
    result = ExperimentResult(
        "E02", "Interrupt elimination: mwait dispatch vs IDT delivery")

    isa = _isa_level_latencies(ticks, period)
    behavioral = _behavioral_latencies(ticks, period, costs)
    idt_summary = summarize(behavioral["idt"])
    hw_summary = summarize(behavioral["hw"])
    isa_summary = summarize(isa)

    table = Table(["delivery path", "events", "mean (cyc)", "p99 (cyc)",
                   "vs IDT"],
                  title="Timer-event delivery latency")
    speedup = idt_summary.mean / hw_summary.mean
    table.add_row("IDT interrupt (baseline)", idt_summary.count,
                  idt_summary.mean, idt_summary.p99, "1.0x")
    table.add_row("hw-thread mwait (model)", hw_summary.count,
                  hw_summary.mean, hw_summary.p99, f"{speedup:.1f}x")
    table.add_row("hw-thread mwait (ISA-level)", isa_summary.count,
                  isa_summary.mean, isa_summary.p99,
                  f"{idt_summary.mean / isa_summary.mean:.1f}x")
    result.add_table(table)

    result.data["idt_mean"] = idt_summary.mean
    result.data["hw_mean"] = hw_summary.mean
    result.data["isa_mean"] = isa_summary.mean
    result.data["speedup"] = speedup

    result.add_claim(
        "events dispatch without jumping into an IRQ context",
        "eliminate IRQ entry/exit + scheduler + switch",
        f"{speedup:.0f}x lower delivery latency "
        f"({hw_summary.mean:.0f} vs {idt_summary.mean:.0f} cycles)",
        Verdict.SUPPORTED if speedup > 5 else Verdict.PARTIAL)
    agree = (0.2 * hw_summary.mean <= isa_summary.mean
             <= 5 * hw_summary.mean)
    result.add_claim(
        "the cost model matches the ISA-level machine",
        "same order of magnitude",
        f"model {hw_summary.mean:.0f} vs ISA {isa_summary.mean:.0f} cycles",
        Verdict.SUPPORTED if agree else Verdict.PARTIAL)
    return result
