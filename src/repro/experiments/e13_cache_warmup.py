"""E13: "Managing Non-register State" -- caches after a wakeup.

Section 4 concedes that register state is only part of the cost:
"Misses in caches and TLBs can lead to significant performance loss and
even thrashing as numerous hardware threads start and stop", and offers
two mitigations plus a design rule:

1. **pinning** -- "pin the most critical instructions/data/translations
   (few KBytes) for performance-sensitive threads in caches" [66];
2. **prefetching** -- "warm up caches of all types as soon as threads
   become runnable";
3. **stay on-chip** -- misses served by L2/L3 are tolerable, "however,
   L3 misses served by off-chip memory lead to severe performance
   losses".

The experiment wakes a handler whose working set was evicted by an
interfering thread and measures the first post-wake working-set
traversal under each policy, then quantifies the on-chip/off-chip gap.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.experiments.registry import register
from repro.mem.cache import CacheHierarchy
from repro.mem.tlb import Tlb

HANDLER_SET_BYTES = 4 * 1024      # "few KBytes" of critical state
INTERFERENCE_BYTES = 32 * 1024 * 1024  # streams through everything
HANDLER_BASE = 0x100000
INTERFERENCE_BASE = 0x4000000


def _post_wake_walk(policy: str, costs: CostModel) -> Dict:
    """Cycles for the handler's first working-set pass after a wake."""
    caches = CacheHierarchy(costs)
    # handler runs once: its set becomes resident everywhere
    caches.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)
    if policy == "pinned":
        caches.pin(HANDLER_BASE, HANDLER_SET_BYTES)
    # handler blocks; other threads stream a large buffer through the
    # hierarchy, evicting everything unpinned
    caches.walk_working_set(INTERFERENCE_BASE, INTERFERENCE_BYTES)
    if policy == "prefetch":
        # the wake signal triggers a hardware prefetch of the set
        caches.warm(HANDLER_BASE, HANDLER_SET_BYTES)
    cycles = caches.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)
    return {"cycles": cycles, "stats": caches.stats()}


def _hot_reference(costs: CostModel) -> int:
    """The walk with everything L1-resident (the lower bound)."""
    caches = CacheHierarchy(costs)
    caches.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)
    return caches.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)


def _tier_walks(costs: CostModel) -> Dict[str, int]:
    """Working-set pass with the set resident at each depth."""
    walks = {}
    # on-chip: resident in L3 only (flush the inner levels)
    caches = CacheHierarchy(costs)
    caches.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)
    caches.l1.flush()
    caches.l2.flush()
    walks["on-chip (L3)"] = caches.walk_working_set(HANDLER_BASE,
                                                    HANDLER_SET_BYTES)
    # off-chip: completely cold hierarchy
    cold = CacheHierarchy(costs)
    walks["off-chip (DRAM)"] = cold.walk_working_set(HANDLER_BASE,
                                                     HANDLER_SET_BYTES)
    return walks


def _tlb_post_wake(policy: str) -> int:
    """Translation cycles for the handler's first post-wake pass."""
    tlb = Tlb(entries=64, ways=4)
    tlb.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)
    if policy == "pinned":
        tlb.pin(HANDLER_BASE, HANDLER_SET_BYTES)
    tlb.walk_working_set(INTERFERENCE_BASE, INTERFERENCE_BYTES,
                         stride=4096)
    if policy == "prefetch":
        tlb.warm(HANDLER_BASE, HANDLER_SET_BYTES)
    return tlb.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)


def _tlb_hot() -> int:
    tlb = Tlb(entries=64, ways=4)
    tlb.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)
    return tlb.walk_working_set(HANDLER_BASE, HANDLER_SET_BYTES)


@register("E13", "Cache state across wakeups: pinning and prefetch",
          'Section 4, "Managing Non-register State"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    costs = CostModel()
    result = ExperimentResult(
        "E13", "Cache state across wakeups: pinning and prefetch")

    hot = _hot_reference(costs)
    cells = {policy: _post_wake_walk(policy, costs)
             for policy in ("none", "prefetch", "pinned")}

    table = Table(["policy", "post-wake walk (cyc)", "vs hot"],
                  title=f"First {HANDLER_SET_BYTES // 1024} KiB working-set "
                        f"pass after interference")
    table.add_row("hot (no interference)", hot, "1.0x")
    for policy in ("none", "prefetch", "pinned"):
        cycles = cells[policy]["cycles"]
        table.add_row(policy, cycles, f"{cycles / hot:.1f}x")
    result.add_table(table)

    tlb_hot = _tlb_hot()
    tlb_cells = {p: _tlb_post_wake(p) for p in ("none", "prefetch",
                                                "pinned")}
    tlb_table = Table(["policy", "post-wake translations (cyc)", "vs hot"],
                      title="The TLB half ('caches and TLBs')")
    tlb_table.add_row("hot (no interference)", tlb_hot, "1.0x")
    for policy in ("none", "prefetch", "pinned"):
        tlb_table.add_row(policy, tlb_cells[policy],
                          f"{tlb_cells[policy] / tlb_hot:.1f}x")
    result.add_table(tlb_table)

    tiers = _tier_walks(costs)
    tier_table = Table(["residency", "walk (cyc)", "vs hot"],
                       title="Where the misses are served matters")
    for name, cycles in tiers.items():
        tier_table.add_row(name, cycles, f"{cycles / hot:.1f}x")
    result.add_table(tier_table)

    result.data["hot"] = hot
    result.data["cells"] = {p: cells[p]["cycles"] for p in cells}
    result.data["tiers"] = tiers
    result.data["tlb_hot"] = tlb_hot
    result.data["tlb_cells"] = tlb_cells

    cold_penalty = cells["none"]["cycles"] / hot
    result.add_claim(
        "wakeup thrashing is real: an evicted working set costs a lot",
        "Misses in caches and TLBs can lead to significant performance "
        "loss and even thrashing",
        f"cold post-wake walk is {cold_penalty:.0f}x the hot pass",
        Verdict.SUPPORTED if cold_penalty > 5 else Verdict.PARTIAL)
    prefetch_ok = cells["prefetch"]["cycles"] <= hot * 1.05
    pinned_ok = cells["pinned"]["cycles"] <= hot * 1.05
    result.add_claim(
        "prefetch-on-wake restores hot performance",
        "prefetching techniques that warm up caches of all types as "
        "soon as threads become runnable",
        f"prefetch {cells['prefetch']['cycles']} vs hot {hot} cycles",
        Verdict.SUPPORTED if prefetch_ok else Verdict.PARTIAL)
    result.add_claim(
        "pinning keeps critical state resident through interference",
        "pin the most critical instructions/data/translations (few "
        "KBytes) ... [66]",
        f"pinned {cells['pinned']['cycles']} vs hot {hot} cycles",
        Verdict.SUPPORTED if pinned_ok else Verdict.PARTIAL)
    onchip = tiers["on-chip (L3)"]
    offchip = tiers["off-chip (DRAM)"]
    tlb_mitigated = (tlb_cells["none"] > 2 * tlb_hot
                     and tlb_cells["prefetch"] == tlb_hot
                     and tlb_cells["pinned"] == tlb_hot)
    result.add_claim(
        "the TLB thrashes and heals the same way as the caches",
        "Misses in caches and TLBs ... warm up caches of all types",
        f"TLB cold pass {tlb_cells['none'] / tlb_hot:.1f}x hot; prefetch "
        f"and pinning both restore 1.0x",
        Verdict.SUPPORTED if tlb_mitigated else Verdict.PARTIAL)
    result.add_claim(
        "off-chip misses are the severe case; on-chip is tolerable",
        "L3 misses served by off-chip memory lead to severe "
        "performance losses",
        f"off-chip walk {offchip / hot:.0f}x hot vs on-chip "
        f"{onchip / hot:.0f}x hot",
        Verdict.SUPPORTED if offchip > 2 * onchip else Verdict.PARTIAL)
    return result
