"""E15: backend agreement -- behavioral model vs ISA machine, at scale.

The E02-style two-layer check, lifted from one server to a cluster:
small clusters run the *same* workload (common random numbers -- the
arrival, service, placement, and network streams are keyed off the
design- and backend-independent ``workload_label``) once per server
backend:

- ``"model"`` -- the behavioral :class:`~repro.distributed.rpc.
  RpcServerModel` every cluster experiment uses;
- ``"isa"`` -- :class:`~repro.backends.machine.MachineBackend`: each
  node is a full ISA-level machine executing thread-per-request
  assembly with monitor/mwait blocking on remote calls.

If the cost model is honest, per-design p50/p99 agree across the
fidelity jump and the paper's headline ordering -- the sw-threads
transition tax inflates the tail that hw-threads avoids -- survives it.
Load is kept low so latency is dominated by service + RTT + network
draws (identical across backends), making any modeling error stand out
directly rather than be laundered through queueing amplification.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.cluster import ClusterConfig, DESIGNS, run_cluster
from repro.experiments.registry import register

#: The designs compared, in reporting order.
DESIGN_NAMES = ("hw-threads", "sw-threads", "event-loop")
#: Both fidelity levels of the same server contract.
BACKEND_NAMES = ("model", "isa")

MEAN_SERVICE = 4_000        # ~1.3 us at 3 GHz: a microsecond-scale RPC
SEGMENTS = 2                # one remote call mid-request
RTT = 20_000                # ~6.7 us network round trip
LOAD = 0.06                 # low load: latency, not queueing, dominates
POLICY = "round-robin"      # deterministic placement
THREADS_PER_PEER = 4        # fan-in worker pool (the sw crowding term)

#: Agreement bar for the fidelity jump, matching E02's spirit but
#: tighter: cluster latency is dominated by shared draws, so the
#: backends must land within 2x of each other on every quantile.
AGREEMENT_FACTOR = 2.0


def _config(nodes: int, design_name: str, backend: str,
            requests: int) -> ClusterConfig:
    return ClusterConfig(
        nodes=nodes, design=DESIGNS[design_name], policy=POLICY,
        fanout=1, load=LOAD, mean_service_cycles=MEAN_SERVICE,
        segments=SEGMENTS, rtt_cycles=RTT, requests=requests,
        threads_per_peer=THREADS_PER_PEER, backend=backend)


def _cell(nodes: int, design_name: str, backend: str, requests: int,
          seed: int) -> Dict[str, float]:
    result = run_cluster(_config(nodes, design_name, backend, requests),
                         seed=seed)
    summary = result.summary
    return {"p50": summary["p50"], "p99": summary["p99"],
            "completed": summary["completed"],
            "conserved": summary["conserved"]}


def _ratio(isa: float, model: float) -> float:
    return isa / model if model else float("inf")


@register("E15", "Backend agreement: behavioral model vs ISA machine "
                 "at cluster scale",
          'Section 2 + Section 4 ("Simpler Distributed Programming")')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    node_counts: Tuple[int, ...] = (2,) if quick else (2, 4)
    requests = 30 if quick else 100
    result = ExperimentResult(
        "E15", "Backend agreement: behavioral model vs ISA machine "
               "at cluster scale")

    cells: Dict[int, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for nodes in node_counts:
        cells[nodes] = {}
        for design_name in DESIGN_NAMES:
            cells[nodes][design_name] = {
                backend: _cell(nodes, design_name, backend, requests,
                               seed)
                for backend in BACKEND_NAMES}

    # -- table 1: per-design quantiles, model vs ISA ------------------
    agreement = Table(
        ["nodes", "design", "model p50", "isa p50", "model p99",
         "isa p99", "p99 isa/model"],
        title="Backend agreement: same workload, both fidelity levels")
    deviations: List[float] = []
    for nodes in node_counts:
        for design_name in DESIGN_NAMES:
            model = cells[nodes][design_name]["model"]
            isa = cells[nodes][design_name]["isa"]
            ratio = _ratio(isa["p99"], model["p99"])
            deviations.append(max(ratio, 1.0 / ratio))
            agreement.add_row(nodes, design_name,
                              round(model["p50"]), round(isa["p50"]),
                              round(model["p99"]), round(isa["p99"]),
                              f"{ratio:.3f}x")
    result.add_table(agreement)

    # -- table 2: does the headline ordering survive the jump? --------
    ordering = Table(
        ["nodes", "sw/hw p99 (model)", "sw/hw p99 (isa)",
         "ordering agrees"],
        title="The transition-tax ordering across the fidelity jump")
    sw_hw: Dict[str, List[float]] = {b: [] for b in BACKEND_NAMES}
    for nodes in node_counts:
        row = {}
        for backend in BACKEND_NAMES:
            hw = cells[nodes]["hw-threads"][backend]["p99"]
            sw = cells[nodes]["sw-threads"][backend]["p99"]
            row[backend] = _ratio(sw, hw)
            sw_hw[backend].append(row[backend])
        ordering.add_row(nodes, f"{row['model']:.2f}x",
                         f"{row['isa']:.2f}x",
                         (row["model"] > 1.0) == (row["isa"] > 1.0))
    result.add_table(ordering)

    result.data["node_counts"] = list(node_counts)
    result.data["designs"] = list(DESIGN_NAMES)
    result.data["backends"] = list(BACKEND_NAMES)
    result.data["cells"] = cells
    result.data["worst_p99_deviation"] = max(deviations)
    result.data["sw_hw_ratios"] = sw_hw

    # -- claims -------------------------------------------------------
    worst = max(deviations)
    result.add_claim(
        "the cost model matches the ISA-level machine, at cluster scale",
        f"per-design cluster p99 within {AGREEMENT_FACTOR:.0f}x across "
        f"the fidelity jump",
        f"worst p99 deviation {worst:.3f}x over "
        f"{len(deviations)} (nodes, design) cells",
        Verdict.SUPPORTED if worst <= AGREEMENT_FACTOR
        else Verdict.PARTIAL)

    ordering_holds = all(
        ratio > 1.0 for backend in BACKEND_NAMES
        for ratio in sw_hw[backend])
    result.add_claim(
        "the sw-threads transition tax survives the fidelity jump",
        "sw/hw tail ordering identical whether costs are modeled or "
        "executed",
        f"sw/hw p99 model {min(sw_hw['model']):.2f}-"
        f"{max(sw_hw['model']):.2f}x, "
        f"isa {min(sw_hw['isa']):.2f}-{max(sw_hw['isa']):.2f}x",
        Verdict.SUPPORTED if ordering_holds else Verdict.PARTIAL)

    all_conserved = all(
        cells[n][d][b]["conserved"] and cells[n][d][b]["completed"] > 0
        for n in node_counts for d in DESIGN_NAMES
        for b in BACKEND_NAMES)
    result.add_claim(
        "conservation holds on every backend",
        "admitted == completed + in-flight on behavioral and ISA nodes "
        "alike",
        f"all {len(node_counts) * len(DESIGN_NAMES) * len(BACKEND_NAMES)}"
        f" runs conserved with completions",
        Verdict.SUPPORTED if all_conserved else Verdict.REFUTED)
    return result
