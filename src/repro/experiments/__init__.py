"""The evaluation harness: experiments E01-E18.

The paper is a HotOS vision paper with one table (the example TDT) and
no measured figures; its evaluation surface is the set of quantitative
claims in Sections 2-4. Each module here turns one claim (or Table 1)
into a runnable experiment that produces an
:class:`~repro.analysis.report.ExperimentResult` with printable tables
and paper-vs-measured claim records. DESIGN.md Section 4 is the index.

Usage::

    from repro.experiments import get_experiment, all_experiments
    result = get_experiment("E03").run(quick=True)
    print(result.render())

Every ``run`` accepts ``quick=True`` (smaller workloads for CI and
pytest-benchmark loops) and a ``seed`` for the RNG streams.
"""

from repro.experiments.registry import (
    Experiment,
    all_experiments,
    get_experiment,
    register,
)

# importing the modules registers them
from repro.experiments import (  # noqa: E402  (registration imports)
    e01_tdt,
    e02_interrupts,
    e03_fast_io,
    e04_syscalls,
    e05_vmexits,
    e06_fp_registers,
    e07_microkernel,
    e08_untrusted_hv,
    e09_distributed,
    e10_state_storage,
    e11_wakeup_latency,
    e12_scheduling,
    e13_cache_warmup,
    e14_cluster,
    e15_backend_agreement,
    e16_tail_anatomy,
    e17_coherence,
    e18_dispatch,
)

__all__ = [
    "Experiment",
    "register",
    "get_experiment",
    "all_experiments",
]
