"""E06: "Access to All Registers in the Kernel".

Kernels avoid FP/vector instructions because touching them inflates
every context switch: the FXSAVE area grows the per-thread footprint
from 272 to 784 bytes and adds save/restore cycles to each mode switch.
With a dedicated kernel hardware thread, kernel FP use costs the
*kernel thread's own* state only -- the application's syscall latency
is untouched.

Measured here: (a) the state-footprint arithmetic, (b) syscall cost
with an FP-using kernel on both paths, (c) an ISA-level check that
``fwork``/vector instructions dirty the footprint of only the executing
ptid.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.arch.registers import (
    X86_64_BASE_STATE_BYTES,
    X86_64_FULL_STATE_BYTES,
)
from repro.experiments.registry import register
from repro.kernel.syscalls import (
    HwThreadSyscallPath,
    SyncSyscallPath,
    SyscallRunner,
)
from repro.machine import build_machine
from repro.sim.engine import Engine

KERNEL_WORK = 300
USER_WORK = 500


def _syscall_p50(path_name: str, kernel_uses_fp: bool, iterations: int,
                 costs: CostModel) -> float:
    engine = Engine()
    if path_name == "sync":
        path = SyncSyscallPath(engine, costs, kernel_uses_fp=kernel_uses_fp)
    else:
        path = HwThreadSyscallPath(engine, costs,
                                   kernel_uses_fp=kernel_uses_fp)
    runner = SyscallRunner(engine, path, iterations,
                           user_work_cycles=USER_WORK,
                           kernel_work_cycles=KERNEL_WORK)
    engine.run()
    return runner.recorder.pct(50)


def _isa_fp_isolation() -> dict:
    """Run FP work in one ptid, integer work in another; check that
    only the FP ptid's architectural footprint grew."""
    machine = build_machine()
    machine.load_asm(0, """
        vmovi v0, 42
        fwork 100
        halt
    """, supervisor=True, name="fp-kernel")
    machine.load_asm(1, """
        movi r1, 7
        work 100
        halt
    """, supervisor=False, name="int-app")
    machine.boot(0)
    machine.boot(1)
    machine.run(until=10_000)
    machine.check()
    return {
        "kernel_dirty": machine.thread(0).arch.vector_dirty,
        "app_dirty": machine.thread(1).arch.vector_dirty,
        "kernel_bytes": machine.thread(0).arch.footprint_bytes(),
        "app_bytes": machine.thread(1).arch.footprint_bytes(),
    }


@register("E06", "Kernel FP/vector use without syscall-latency cost",
          'Section 2, "Access to All Registers in the Kernel"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    iterations = 100 if quick else 1_000
    costs = CostModel()
    result = ExperimentResult(
        "E06", "Kernel FP/vector use without syscall-latency cost")

    footprint = Table(["state", "bytes", "paper"],
                      title="Per-thread register-state footprint")
    footprint.add_row("base x86-64", X86_64_BASE_STATE_BYTES, "272 B")
    footprint.add_row("with SSE/FXSAVE", X86_64_FULL_STATE_BYTES, "784 B")
    result.add_table(footprint)

    sweep = Table(["path", "kernel FP", "syscall p50 (cyc)", "penalty"],
                  title=f"Syscall latency with an FP-using kernel "
                        f"({iterations} calls)")
    cells = {}
    for path_name in ("sync", "hw-thread"):
        base = _syscall_p50(path_name, False, iterations, costs)
        with_fp = _syscall_p50(path_name, True, iterations, costs)
        cells[path_name] = {"base": base, "fp": with_fp}
        sweep.add_row(path_name, "no", base, "--")
        sweep.add_row(path_name, "yes", with_fp,
                      f"+{with_fp - base:.0f} cyc")
    result.add_table(sweep)

    isolation = _isa_fp_isolation()
    isa_table = Table(["ptid", "vector dirty", "footprint (B)"],
                      title="ISA-level: FP state is per-ptid")
    isa_table.add_row("kernel (fwork/vmovi)",
                      str(isolation["kernel_dirty"]),
                      isolation["kernel_bytes"])
    isa_table.add_row("app (integer only)",
                      str(isolation["app_dirty"]),
                      isolation["app_bytes"])
    result.add_table(isa_table)
    result.data["cells"] = cells
    result.data["isolation"] = isolation

    result.add_claim(
        "FP/vector use grows per-thread state 272 B -> 784 B",
        "272 bytes ... up to 784 bytes if SSE3 vector extensions are used",
        f"{X86_64_BASE_STATE_BYTES} B -> {X86_64_FULL_STATE_BYTES} B",
        Verdict.SUPPORTED
        if (X86_64_BASE_STATE_BYTES, X86_64_FULL_STATE_BYTES) == (272, 784)
        else Verdict.REFUTED)
    sync_penalty = cells["sync"]["fp"] - cells["sync"]["base"]
    hw_penalty = cells["hw-thread"]["fp"] - cells["hw-thread"]["base"]
    result.add_claim(
        "kernel FP use penalizes in-thread syscalls but not hw-thread ones",
        "without affecting the system call invocation latency",
        f"FP penalty: sync +{sync_penalty:.0f} cyc, hw-thread "
        f"+{hw_penalty:.0f} cyc",
        Verdict.SUPPORTED if sync_penalty > 0 and hw_penalty == 0
        else Verdict.REFUTED)
    isolated = (isolation["kernel_dirty"] and not isolation["app_dirty"]
                and isolation["kernel_bytes"] > isolation["app_bytes"])
    result.add_claim(
        "FP state belongs to the hardware thread that used it",
        "kernel code can run in one hardware thread and application "
        "code in a different hardware thread",
        "only the FP-using ptid's footprint grew to 784 B",
        Verdict.SUPPORTED if isolated else Verdict.REFUTED)
    return result
