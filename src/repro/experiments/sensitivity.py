"""Sensitivity analysis: how robust are the paper's conclusions to the
cost constants?

Every experiment reads its latencies from one
:class:`~repro.arch.costs.CostModel`, whose defaults come from the
paper's own text and citations. A fair question about any behavioral
reproduction is whether the headline orderings survive if those
constants are wrong. This module sweeps the disputed constants and
locates the *break-even points*:

- how cheap would a mode switch have to get before dedicated-ptid
  syscalls stop paying? (E04's ordering)
- how expensive may a hardware thread start become before mwait I/O
  loses to interrupt coalescing? (E03's ordering)
- how small must the scheduler+switch tax be before scheduler-mediated
  IPC matches direct start? (E07's ordering)

The answers (the baseline must improve by 1-2 orders of magnitude
before any conclusion flips) are what make the shape reproduction
trustworthy despite the low-fidelity substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.errors import ConfigError
from repro.microkernel.ipc import DirectStartIpc, SchedulerIpc
from repro.sim.engine import Engine


@dataclass(frozen=True)
class BreakEven:
    """Result of a break-even search on one cost constant."""

    constant: str
    default_value: int
    break_even_value: Optional[int]   # None = never flips in range
    searched_range: tuple
    margin: float                     # default / break-even (safety factor)


def _binary_search_flip(lo: int, hi: int,
                        proposed_wins: Callable[[int], bool]) -> Optional[int]:
    """Smallest value in [lo, hi] where the proposal still wins.

    ``proposed_wins(v)`` must be monotone in ``v`` (the constant is a
    baseline cost: the bigger it is, the better the proposal looks).
    Returns None when the proposal wins even at ``lo``.
    """
    if proposed_wins(lo):
        return None
    if not proposed_wins(hi):
        raise ConfigError(
            f"proposal never wins in [{lo}, {hi}]; widen the range")
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if proposed_wins(mid):
            hi = mid
        else:
            lo = mid
    return hi


def syscall_break_even(costs: Optional[CostModel] = None) -> BreakEven:
    """How cheap must the mode switch get before sync syscalls match
    the dedicated-ptid path?"""
    base = costs or CostModel()
    hw_overhead = (base.rpull_rpush_cycles + base.hw_start_rf_cycles
                   + base.monitor_wakeup_cycles)

    def proposed_wins(mode_switch: int) -> bool:
        return hw_overhead < base.scaled(
            mode_switch_cycles=mode_switch).syscall_sync_cycles()

    flip = _binary_search_flip(1, base.mode_switch_cycles, proposed_wins)
    return BreakEven(
        constant="mode_switch_cycles",
        default_value=base.mode_switch_cycles,
        break_even_value=flip,
        searched_range=(1, base.mode_switch_cycles),
        margin=(base.mode_switch_cycles / flip) if flip else float("inf"),
    )


def io_wakeup_break_even(costs: Optional[CostModel] = None) -> BreakEven:
    """How expensive may an RF ptid start get before the mwait wakeup
    stops beating the interrupt chain?"""
    base = costs or CostModel()
    idt_chain = base.baseline_io_wakeup_cycles()

    def proposal_loses(hw_start: int) -> bool:
        return base.scaled(
            hw_start_rf_cycles=hw_start).hw_wakeup_cycles("rf") >= idt_chain

    # invert the search: find the largest start cost that still wins
    lo, hi = base.hw_start_rf_cycles, idt_chain * 2
    if proposal_loses(lo):
        flip = lo
    else:
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if proposal_loses(mid):
                hi = mid
            else:
                lo = mid
        flip = hi
    return BreakEven(
        constant="hw_start_rf_cycles",
        default_value=base.hw_start_rf_cycles,
        break_even_value=flip,
        searched_range=(base.hw_start_rf_cycles, idt_chain * 2),
        margin=flip / base.hw_start_rf_cycles,
    )


def ipc_break_even(costs: Optional[CostModel] = None) -> BreakEven:
    """How small must the scheduler pass get before scheduler IPC
    matches direct start on a null call?"""
    base = costs or CostModel()
    engine = Engine()
    direct_rtt = DirectStartIpc(engine, base).rtt_cycles(0)

    def proposed_wins(scheduler: int) -> bool:
        scaled = base.scaled(scheduler_cycles=scheduler,
                             sw_switch_cycles=0,
                             cache_pollution_cycles=0,
                             mode_switch_cycles=0)
        return SchedulerIpc(Engine(), scaled).rtt_cycles(0) > direct_rtt

    flip = _binary_search_flip(0, base.scheduler_cycles, proposed_wins)
    return BreakEven(
        constant="scheduler_cycles (all other IPC taxes zeroed)",
        default_value=base.scheduler_cycles,
        break_even_value=flip,
        searched_range=(0, base.scheduler_cycles),
        margin=(base.scheduler_cycles / flip) if flip else float("inf"),
    )


def run_sensitivity(costs: Optional[CostModel] = None) -> List[BreakEven]:
    """All break-even searches."""
    return [
        syscall_break_even(costs),
        io_wakeup_break_even(costs),
        ipc_break_even(costs),
    ]


def sensitivity_table(results: Optional[List[BreakEven]] = None) -> Table:
    """The searches rendered as a printable table."""
    results = results if results is not None else run_sensitivity()
    table = Table(["constant", "paper default", "break-even",
                   "safety margin"],
                  title="Cost-model sensitivity: where the conclusions flip")
    for record in results:
        table.add_row(record.constant, record.default_value,
                      record.break_even_value
                      if record.break_even_value is not None else "never",
                      f"{record.margin:.1f}x"
                      if record.margin != float("inf") else "inf")
    return table
