"""E03: "Fast I/O without Inefficient Polling".

The paper's triangle, measured end-to-end through the NIC model: a
Poisson RX stream is served by (a) an interrupt-driven thread, (b) a
dedicated polling core, and (c) an mwait-ing hardware thread. The load
sweep shows the claimed shape:

- mwait tracks polling's latency at every load point;
- interrupts pay their wakeup chain, visible at low and mid load;
- polling burns a core (wasted cycles ~ the whole idle budget), mwait
  and interrupts burn almost none.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.tables import Table
from repro.devices.nic import Nic
from repro.experiments.registry import register
from repro.kernel.io import (
    InterruptIoServer,
    MwaitIoServer,
    PollingIoServer,
)
from repro.machine import build_machine
from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
)

SERVICE_CYCLES = 800  # per-packet application work


def _idle_gap_for_mean(target_mean_gap: float, burst_gap: float,
                       mean_burst_events: float,
                       mean_idle_events: float) -> float:
    """Idle-state gap so the MMPP's overall mean matches the target."""
    total_events = mean_burst_events + mean_idle_events
    return (target_mean_gap * total_events
            - mean_burst_events * burst_gap) / mean_idle_events


def _run_one(design: str, load: float, packets: int, seed: int,
             arrivals: ArrivalProcess = None) -> Dict:
    """One (design, load) cell: real NIC + the chosen server."""
    machine = build_machine(seed=seed)
    nic = Nic(machine.engine, machine.memory, machine.dma)
    if design == "interrupt":
        server = InterruptIoServer(machine.engine, machine.costs)
    elif design == "polling":
        server = PollingIoServer(machine.engine, machine.costs)
    elif design == "mwait":
        server = MwaitIoServer(machine.engine, machine.costs)
    else:
        raise ValueError(design)

    def on_tail_write(info: dict) -> None:
        while True:
            packet = nic.rx.consume()
            if packet is None:
                break
            server.deliver(packet["seq"], SERVICE_CYCLES)

    machine.memory.watch_bus.subscribe(nic.rx.tail_addr, on_tail_write,
                                       owner="rx-driver")
    mean_gap = SERVICE_CYCLES / load
    if arrivals is None:
        arrivals = PoissonArrivals(mean_gap)
    nic.start_rx(arrivals, machine.rngs.stream("rx"),
                 max_packets=packets)
    horizon = int(packets * mean_gap * 4) + 2_000_000
    machine.run(until=horizon)
    if design == "polling":
        server.finalize()
    stats = server.stats()
    if stats.completed < packets:
        raise AssertionError(
            f"{design}@{load}: served {stats.completed}/{packets}")
    elapsed = machine.engine.now
    return {
        "p50": stats.p50_latency,
        "p99": stats.p99_latency,
        "mean": stats.mean_latency,
        "wasted_frac": stats.wasted_cycles / elapsed,
        "completed": stats.completed,
    }


@register("E03", "Fast I/O: interrupts vs polling vs mwait",
          'Section 2, "Fast I/O without Inefficient Polling"')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    loads = (0.2, 0.6) if quick else (0.1, 0.3, 0.5, 0.7, 0.9)
    packets = 150 if quick else 1_000
    designs = ("interrupt", "polling", "mwait")
    result = ExperimentResult(
        "E03", "Fast I/O: interrupts vs polling vs mwait")
    table = Table(["load"] + [f"{d} p99" for d in designs]
                  + [f"{d} waste%" for d in designs],
                  title=f"RX latency (cycles) and wasted-core fraction, "
                        f"{packets} packets/point")
    series: Dict[str, Dict[float, Dict]] = {d: {} for d in designs}
    for load in loads:
        cells = {d: _run_one(d, load, packets, seed) for d in designs}
        for design in designs:
            series[design][load] = cells[design]
        table.add_row(load,
                      *[cells[d]["p99"] for d in designs],
                      *[100.0 * cells[d]["wasted_frac"] for d in designs])
    result.add_table(table)
    result.data["series"] = series
    result.data["loads"] = list(loads)

    # Section 2's second objection to polling: "polling threads waste
    # one or more cores and complicate core allocation under varying
    # I/O load". Bursty (two-state MMPP) traffic at the same mean load:
    # interrupts pay a wakeup chain at every burst start, polling burns
    # the idle gaps, mwait does neither.
    burst_load = 0.3
    bursty = BurstyArrivals(
        burst_gap_cycles=SERVICE_CYCLES * 1.25,
        idle_gap_cycles=_idle_gap_for_mean(
            SERVICE_CYCLES / burst_load, SERVICE_CYCLES * 1.25,
            mean_burst_events=24, mean_idle_events=8),
        mean_burst_events=24, mean_idle_events=8)
    bursty_cells = {d: _run_one(d, burst_load, packets, seed + 1,
                                arrivals=bursty)
                    for d in designs}
    bursty_table = Table(["design", "p50", "p99", "wasted core %"],
                         title=f"Bursty traffic (MMPP), mean load "
                               f"{burst_load}, {packets} packets")
    for design in designs:
        cell = bursty_cells[design]
        bursty_table.add_row(design, cell["p50"], cell["p99"],
                             100.0 * cell["wasted_frac"])
    result.add_table(bursty_table)
    result.data["bursty"] = bursty_cells

    # claims, evaluated at the lightest load (worst case for interrupts)
    low = loads[0]
    mwait_close_to_polling = all(
        series["mwait"][ld]["p50"]
        <= series["polling"][ld]["p50"] + 2 * SERVICE_CYCLES
        for ld in loads)
    result.add_claim(
        "mwait I/O achieves polling-like latency",
        "a waiting thread can quickly start running to process the event",
        f"p50 at load {low}: mwait {series['mwait'][low]['p50']:.0f} vs "
        f"polling {series['polling'][low]['p50']:.0f} cycles",
        Verdict.SUPPORTED if mwait_close_to_polling else Verdict.PARTIAL)
    interrupt_worse = all(
        series["interrupt"][ld]["mean"] > series["mwait"][ld]["mean"]
        for ld in loads)
    result.add_claim(
        "interrupt delivery is the slow path",
        "expensive transition to a hard IRQ context",
        "interrupt mean latency above mwait at every load",
        Verdict.SUPPORTED if interrupt_worse else Verdict.PARTIAL)
    polling_wasteful = all(
        series["polling"][ld]["wasted_frac"]
        > 10 * max(series["mwait"][ld]["wasted_frac"], 1e-9)
        for ld in loads)
    result.add_claim(
        "polling wastes one or more cores; mwait does not",
        "polling threads waste one or more cores",
        f"wasted-core fraction at load {low}: polling "
        f"{100 * series['polling'][low]['wasted_frac']:.0f}% vs mwait "
        f"{100 * series['mwait'][low]['wasted_frac']:.2f}%",
        Verdict.SUPPORTED if polling_wasteful else Verdict.PARTIAL)
    bursty_ok = (bursty_cells["mwait"]["mean"]
                 < bursty_cells["interrupt"]["mean"]
                 and bursty_cells["mwait"]["wasted_frac"]
                 < 0.1 * bursty_cells["polling"]["wasted_frac"])
    result.add_claim(
        "under varying (bursty) load mwait keeps both advantages",
        "polling threads ... complicate core allocation under varying "
        "I/O load [55, 63]",
        f"bursty: mwait mean {bursty_cells['mwait']['mean']:.0f} vs "
        f"interrupt {bursty_cells['interrupt']['mean']:.0f} cyc; waste "
        f"{100 * bursty_cells['mwait']['wasted_frac']:.1f}% vs polling "
        f"{100 * bursty_cells['polling']['wasted_frac']:.0f}%",
        Verdict.SUPPORTED if bursty_ok else Verdict.PARTIAL)
    return result
