"""Experiment registry.

Modules register themselves at import time; benchmarks, tests, and the
examples look experiments up by id so there is exactly one definition
of what (say) E03 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.report import ExperimentResult
from repro.errors import ConfigError

RunFn = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    experiment_id: str
    title: str
    paper_anchor: str       # e.g. 'Section 2, "No More Interrupts"'
    run: RunFn

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.experiment_id}: {self.title} ({self.paper_anchor})"


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_anchor: str):
    """Decorator: register ``run`` under ``experiment_id``."""

    def decorator(run: RunFn) -> RunFn:
        if experiment_id in _REGISTRY:
            raise ConfigError(f"experiment {experiment_id} already registered")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id, title, paper_anchor, run)
        return run

    return decorator


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment; raises with the known ids on a miss."""
    experiment = _REGISTRY.get(experiment_id)
    if experiment is None:
        raise ConfigError(
            f"no experiment {experiment_id!r}; known: {sorted(_REGISTRY)}")
    return experiment


def all_experiments() -> List[Experiment]:
    """All registered experiments, ordered by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]
