"""E14: the transition tax at datacenter scale.

E09 showed one server; this experiment composes many of them into a
simulated datacenter (:mod:`repro.cluster`) and measures what the
paper's per-node argument becomes *at scale*:

1. **Fan-in tax** -- a thread-per-connection node keeps a worker pool
   proportional to the cluster size resident; sw-threads' per-transition
   overhead grows with that crowd (runqueue + cache pollution), so its
   effective utilization climbs with the node count while hw-threads
   stays flat.
2. **Tail at scale** -- cluster response time is the max over fanned-out
   shards, so the cluster p99 probes ever deeper per-node quantiles;
   combined with (1) the sw/hw p99 ratio *grows* with cluster size.
3. **Load balancing** -- load-aware policies (JSQ, power-of-two) trim
   the sw tail but do not recover hw-threads' distribution; the
   event loop tracks hw-threads (no resident-pool tax), at the usual
   programmability cost.
4. **Replication** -- hedged requests mask lossy links: without them,
   fan-out multiplies the chance that some shard dies.

All randomness flows through named RNG streams keyed off the workload
(not the design): hw and sw clusters face identical arrivals, service
draws, and placements -- common random numbers, so the ratio columns
measure the design, not sampling noise.
"""

from __future__ import annotations

import json
from typing import Dict, Sequence, Tuple

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.stats import LatencyRecorder
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.cluster import (
    DESIGNS,
    ClusterConfig,
    LinkSpec,
    run_cluster,
    scaled,
)
from repro.experiments.registry import register

MEAN_SERVICE = 5_000        # ~1.7 us at 3 GHz: a microsecond-scale RPC
SEGMENTS = 4
RTT = 20_000
LOAD = 0.06                 # offered load of the *base* service per node
MAX_FANOUT = 8
POLICY = "random"           # placement without load-awareness or smoothing
THREADS_PER_PEER = 4


def _base_config(**overrides) -> ClusterConfig:
    defaults = dict(nodes=2, design=DESIGNS["hw-threads"], policy=POLICY,
                    fanout=2, load=LOAD, mean_service_cycles=MEAN_SERVICE,
                    segments=SEGMENTS, rtt_cycles=RTT,
                    threads_per_peer=THREADS_PER_PEER)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _cell(config: ClusterConfig, seed: int, runs: int) -> Dict:
    """Pool ``runs`` deterministic replications of one configuration."""
    pooled = LatencyRecorder(config.label())
    totals = {"issued": 0, "completed": 0, "dropped": 0, "hedges": 0,
              "rejected": 0, "wire_drops": 0}
    conserved = True
    for offset in range(runs):
        result = run_cluster(config, seed=seed + offset)
        summary = result.summary
        conserved = conserved and summary["conserved"]
        for key in totals:
            totals[key] += summary[key]
        pooled.record_many(result.service.recorder.samples)
    stats = pooled.summary() if pooled.count else None
    return {
        "p50": stats.p50 if stats else float("inf"),
        "p99": stats.p99 if stats else float("inf"),
        "conserved": conserved,
        **totals,
    }


def _requests_for(nodes: int, base: int) -> int:
    """Hold the simulated time span as the cluster grows: the arrival
    gap shrinks ~1/nodes past the fan-out cap, so the request count
    must grow with it or large clusters run too briefly to show their
    stationary tail."""
    return max(base, base * nodes // 16)


@register("E14", "Cluster tail latency: the transition tax at scale",
          'Section 2, "Simpler Distributed Programming" (at scale)')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    node_counts: Tuple[int, ...] = (2, 8, 16) if quick else (2, 4, 8, 16, 32)
    requests = 200 if quick else 600
    runs = 2 if quick else 3
    costs = CostModel()
    result = ExperimentResult(
        "E14", "Cluster tail latency: the transition tax at scale")

    # ------------------------------------------------------------------
    # 1. the fan-in tax (analytic: why utilization climbs with scale)
    # ------------------------------------------------------------------
    tax = Table(["nodes", "resident sw threads",
                 "sw tax/transition (cyc)", "sw eff. util",
                 "hw eff. util"],
                title=f"Fan-in tax ({THREADS_PER_PEER} worker threads per "
                      f"peer, base load {LOAD}/node)")
    tax_series: Dict[int, Dict[str, float]] = {}
    for nodes in node_counts:
        resident = THREADS_PER_PEER * nodes
        overhead = {
            name: DESIGNS[name].transition_overhead_cycles(
                costs, crowd=resident if name == "sw-threads" else 0)
            for name in ("hw-threads", "sw-threads")}
        util = {name: LOAD * (MEAN_SERVICE + SEGMENTS * overhead[name])
                / MEAN_SERVICE
                for name in overhead}
        tax_series[nodes] = {"resident": resident,
                             "sw_overhead": overhead["sw-threads"],
                             "sw_util": util["sw-threads"],
                             "hw_util": util["hw-threads"]}
        tax.add_row(nodes, resident, overhead["sw-threads"],
                    round(util["sw-threads"], 3),
                    round(util["hw-threads"], 3))
    result.add_table(tax)

    # ------------------------------------------------------------------
    # 2. tail at scale: p99 vs node count, fanned out
    # ------------------------------------------------------------------
    tail_table = Table(["nodes", "fanout", "hw p99", "sw p99",
                        "sw/hw ratio", "conserved"],
                       title=f"Cluster p99 (cyc) vs node count "
                             f"({POLICY} placement, "
                             f"{runs}x{requests}+ requests/cell)")
    tail_series: Dict[int, Dict[str, float]] = {}
    for nodes in node_counts:
        fanout = min(MAX_FANOUT, nodes)
        cells = {}
        for name in ("hw-threads", "sw-threads"):
            config = _base_config(nodes=nodes, fanout=fanout,
                                  design=DESIGNS[name],
                                  requests=_requests_for(nodes, requests))
            cells[name] = _cell(config, seed, runs)
        ratio = cells["sw-threads"]["p99"] / cells["hw-threads"]["p99"]
        conserved = (cells["hw-threads"]["conserved"]
                     and cells["sw-threads"]["conserved"])
        tail_series[nodes] = {"fanout": fanout,
                              "hw_p99": cells["hw-threads"]["p99"],
                              "sw_p99": cells["sw-threads"]["p99"],
                              "ratio": ratio,
                              "conserved": conserved}
        tail_table.add_row(nodes, fanout,
                           round(cells["hw-threads"]["p99"]),
                           round(cells["sw-threads"]["p99"]),
                           round(ratio, 2), conserved)
    result.add_table(tail_table)

    # ------------------------------------------------------------------
    # 3. load-balancing policies and the third design
    # ------------------------------------------------------------------
    lb_nodes = 8 if quick else 16
    # placement needs slack (fanout < nodes) or every policy degenerates
    # to broadcast
    lb_fanout = min(MAX_FANOUT, lb_nodes // 2)
    lb_table = Table(["policy"]
                     + [f"{name} p99" for name in
                        ("hw-threads", "sw-threads", "event-loop")],
                     title=f"p99 (cyc) by balancing policy "
                           f"({lb_nodes} nodes, fanout {lb_fanout})")
    lb_series: Dict[str, Dict[str, float]] = {}
    for policy in ("random", "round-robin", "jsq", "p2c"):
        cells = {}
        for name in ("hw-threads", "sw-threads", "event-loop"):
            config = _base_config(nodes=lb_nodes, fanout=lb_fanout,
                                  design=DESIGNS[name], policy=policy,
                                  requests=requests)
            cells[name] = _cell(config, seed + 1, runs)
        lb_series[policy] = {name: cells[name]["p99"] for name in cells}
        lb_table.add_row(policy, *[round(cells[name]["p99"])
                                   for name in cells])
    result.add_table(lb_table)

    # ------------------------------------------------------------------
    # 4. lossy links: fan-out multiplies loss, hedging masks it
    # ------------------------------------------------------------------
    hedge_nodes = 8 if quick else 16
    hedge_fanout = min(MAX_FANOUT, hedge_nodes)
    lossy = LinkSpec(drop_prob=0.01)
    hedge_after = 8 * RTT
    hedge_table = Table(["hedging", "completed", "dropped", "hedges",
                         "p99"],
                        title=f"hw-threads over 1%-lossy links "
                              f"({hedge_nodes} nodes, fanout "
                              f"{hedge_fanout})")
    hedge_series: Dict[str, Dict[str, float]] = {}
    for label, after in (("off", None), ("on", hedge_after)):
        config = _base_config(nodes=hedge_nodes, fanout=hedge_fanout,
                              requests=requests, link=lossy,
                              hedge_after=after)
        cell = _cell(config, seed + 2, runs)
        hedge_series[label] = cell
        hedge_table.add_row(label, cell["completed"], cell["dropped"],
                            cell["hedges"], round(cell["p99"]))
    result.add_table(hedge_table)

    # ------------------------------------------------------------------
    # 5. parallel-in-time sharding: PDES workers are invisible in the
    #    results (the guaranteed link latency is exploitable lookahead)
    # ------------------------------------------------------------------
    shard_nodes = 16 if quick else 256
    shard_fanout = min(MAX_FANOUT, shard_nodes)
    shard_requests = _requests_for(shard_nodes, requests if quick else 300)
    shard_table = Table(["shards", "mode", "windows", "completed", "p50",
                         "p99", "identical"],
                        title=f"Conservative PDES sharding (hw-threads, "
                              f"{POLICY} placement, {shard_nodes} nodes, "
                              f"fanout {shard_fanout}, process workers)")
    shard_series: Dict[int, Dict[str, object]] = {}
    baseline = None
    for shards in (1, 2, 4):
        config = _base_config(nodes=shard_nodes, fanout=shard_fanout,
                              requests=shard_requests, shards=shards)
        run_result = run_cluster(config, seed=seed + 3,
                                 transport="process")
        summary = run_result.summary
        stats = run_result.service.recorder.summary()
        pdes = getattr(run_result.service, "pdes", {})
        fingerprint = (json.dumps(summary, sort_keys=True),
                       stats.p50, stats.p99)
        if baseline is None:
            baseline = fingerprint
        identical = fingerprint == baseline
        shard_series[shards] = {
            "mode": pdes.get("mode", "single"),
            "windows": pdes.get("windows", 0),
            "completed": summary["completed"],
            "p50": stats.p50,
            "p99": stats.p99,
            "identical": identical,
        }
        shard_table.add_row(shards, pdes.get("mode", "-"),
                            pdes.get("windows", 0), summary["completed"],
                            round(stats.p50), round(stats.p99), identical)
    result.add_table(shard_table)

    result.data["tax"] = tax_series
    result.data["tail"] = tail_series
    result.data["policies"] = lb_series
    result.data["hedge"] = hedge_series
    result.data["sharding"] = shard_series
    result.data["node_counts"] = list(node_counts)

    # ------------------------------------------------------------------
    # claims
    # ------------------------------------------------------------------
    ratios = [tail_series[n]["ratio"] for n in node_counts]
    growing = all(b > a for a, b in zip(ratios, ratios[1:]))
    deep = [n for n in node_counts if tail_series[n]["fanout"] >= 8]
    amplified = all(tail_series[n]["ratio"] > 2.0 for n in deep)
    result.add_claim(
        "the software-thread transition tax is amplified, not averaged "
        "away, by cluster fan-out",
        "multiplexing a large number of software threads onto a small "
        "number of hardware threads is expensive",
        "sw/hw p99 ratio vs nodes: "
        + " -> ".join(f"{r:.2f}" for r in ratios),
        Verdict.SUPPORTED if growing and amplified else Verdict.PARTIAL)

    best_policy = min(lb_series, key=lambda p: lb_series[p]["sw-threads"])
    best_sw = lb_series[best_policy]["sw-threads"]
    best_hw = lb_series[best_policy]["hw-threads"]
    cannot_buy_back = all(
        lb_series[policy]["sw-threads"] > lb_series[policy]["hw-threads"]
        for policy in lb_series)
    result.add_claim(
        "no load-balancing policy buys back the transition tax",
        "even switching between software threads in the same protection "
        "level incurs hundreds of cycles of overhead",
        f"best sw policy ({best_policy}) p99 {best_sw:.0f} vs hw "
        f"{best_hw:.0f} cycles",
        Verdict.SUPPORTED if cannot_buy_back else Verdict.PARTIAL)

    el_close = all(
        lb_series[policy]["event-loop"]
        <= 2.0 * lb_series[policy]["hw-threads"]
        for policy in lb_series)
    result.add_claim(
        "hw threads keep blocking-I/O semantics at event-loop "
        "performance, per node and at scale",
        "use simple blocking I/O semantics without suffering from "
        "significant thread scheduling overheads",
        f"event-loop p99 within 2x of hw-threads under every policy "
        f"at {lb_nodes} nodes",
        Verdict.SUPPORTED if el_close else Verdict.PARTIAL)

    masked = (hedge_series["on"]["dropped"] < hedge_series["off"]["dropped"]
              and hedge_series["on"]["hedges"] > 0)
    result.add_claim(
        "replication (hedged requests) masks lossy links that fan-out "
        "otherwise multiplies",
        "cheap thread-per-request blocking I/O extends to a hedge "
        "thread per straggling shard (Section 2 model, summarized)",
        f"dropped requests {hedge_series['off']['dropped']} -> "
        f"{hedge_series['on']['dropped']} with hedging "
        f"({hedge_series['on']['hedges']} hedges)",
        Verdict.SUPPORTED if masked else Verdict.PARTIAL)

    invisible = all(cell["identical"] for cell in shard_series.values())
    result.add_claim(
        "conservative PDES sharding is invisible in the results",
        "cross-machine communication is orders of magnitude more "
        "expensive than an intra-machine context switch -- the same "
        "asymmetry the simulator exploits as guaranteed lookahead "
        "(infrastructure claim)",
        f"shards 1/2/4 over {shard_nodes} nodes: summaries and latency "
        f"quantiles byte-identical = {invisible}",
        Verdict.SUPPORTED if invisible else Verdict.PARTIAL)
    return result
