"""E17: the coherence subsystem, measured.

The paper prices monitor/mwait and the TDT *inside* one machine and
waves at the datacenter ("the distributed system formed by the
machines in a datacenter" -- Section 5). This experiment runs the
three scaling questions the coherence subsystem models:

1. **Sharer scaling** -- monitor on any line rides the cache-coherence
   protocol, so a write to a line with S armed watchers pays the
   directory's invalidation fan-out and the S wakeups arrive as
   *serialized* forwards. Table: S vs writer cost and first/last
   wakeup latency on the live ISA machine with ``coherence="directory"``.

2. **Remote mwait vs callback wakeup** -- an RDMA-style remote store
   into a watched mailbox line wakes a parked ptid at hardware cost;
   today's cluster stack wakes it through the software chain (IRQ +
   scheduler + context switch, the sw-threads transition tax). Both
   deliveries ride the same fabric with common random numbers, so the
   p50/p99 gap isolates the wakeup path.

3. **TDT miss amplification under fan-out** -- one ``invtid`` against
   a flat per-machine TDT costs one 40-cycle rewalk; against a sharded
   TDT it costs every caller shard holding the entry a cross-shard
   refetch. The amplification grows with the fan-out F.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import ExperimentResult, Verdict
from repro.analysis.stats import percentile
from repro.analysis.tables import Table
from repro.arch.costs import CostModel
from repro.cluster.fabric import Fabric
from repro.coherence.remote import RemoteStoreFabric
from repro.coherence.tdt_shard import ShardedTdt
from repro.distributed.rpc import SW_THREADS
from repro.experiments.registry import register
from repro.machine import build_machine
from repro.mem.memory import Memory
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

WAITER_ASM = """
    movi r1, FLAG
    monitor r1
    mwait
    movi r2, RESP
    movi r3, 1
    st r2, 0, r3
    halt
"""

# re-arming mailbox server: wake on a remote store, echo the payload
# into the response line (which the measurement subscribes to), park
MAILBOX_ASM = """
loop:
    movi r1, MBOX
    monitor r1
    mwait
    ld r2, r1, 0
    movi r3, RESP
    st r3, 0, r2
    jmp loop
"""


# ----------------------------------------------------------------------
# part 1: sharer-count vs wakeup latency
# ----------------------------------------------------------------------
def _sharer_sweep(sharers: int) -> Dict[str, int]:
    """S waiters parked on one flag line; one store wakes them all."""
    machine = build_machine(coherence="directory")
    flag = machine.alloc("flag", 64)
    wake_times: Dict[int, int] = {}
    for index in range(sharers):
        response = machine.alloc(f"resp{index}", 64)
        machine.load_asm(index, WAITER_ASM,
                         symbols={"FLAG": flag.base, "RESP": response.base},
                         supervisor=True, name=f"waiter{index}")
        machine.memory.watch_bus.subscribe(
            response.base,
            lambda info, index=index: wake_times.setdefault(
                index, machine.engine.now))
        machine.boot(index)
    machine.run(max_events=50_000)  # park every waiter on mwait
    wake_at = machine.engine.now + 100
    machine.engine.at(wake_at, machine.memory.store, flag.base, 1, "probe")
    # the flag store is the last *shared* write before wake_at + 1 (the
    # waiters' response stores land after the forward delay), so the
    # directory's last_write_cycles at wake_at + 1 is the writer's bill
    writer: Dict[str, int] = {}
    machine.engine.at(wake_at + 1, lambda: writer.setdefault(
        "cycles", machine.coherence.last_write_cycles))
    machine.run(until=wake_at + 200_000)
    machine.check()
    if len(wake_times) != sharers:
        raise AssertionError(
            f"only {len(wake_times)}/{sharers} waiters responded")
    return {
        "sharers": sharers,
        "writer_cycles": writer["cycles"],
        "first_wake": min(wake_times.values()) - wake_at,
        "last_wake": max(wake_times.values()) - wake_at,
    }


# ----------------------------------------------------------------------
# part 2: remote mwait vs rpc-callback wakeup across the fabric
# ----------------------------------------------------------------------
def _remote_mode(nodes: int, rounds: int, mode: str, seed: int,
                 costs: CostModel) -> Dict[str, List[int]]:
    """One client pings every node once per round; per-sample wakeup
    latency and wire delay. Both modes send one message per node per
    round on identically named per-link streams, so the fabric draws
    are common random numbers and the latency gap is pure wakeup path.
    """
    engine = Engine()
    rngs = RngStreams(seed)
    prefix = f"e17.rm.n{nodes}"
    fabric = Fabric(engine,
                    stream_factory=lambda link:
                    rngs.stream(f"{prefix}.net.{link}"))
    send_at: List[int] = []
    latencies: List[int] = []
    wires: List[int] = []
    gap = 50_000  # cycles between rounds: every waiter re-parks first

    if mode == "rdma":
        remote = RemoteStoreFabric(fabric)
        machines = []
        pending: List[int] = []  # send times awaiting a response, FIFO
        for index in range(nodes):
            machine = build_machine(engine=engine, coherence="directory")
            mailbox = machine.alloc("mbox", 64)
            response = machine.alloc("resp", 64)
            machine.load_asm(0, MAILBOX_ASM,
                             symbols={"MBOX": mailbox.base,
                                      "RESP": response.base},
                             supervisor=True, name=f"server{index}")
            machine.memory.watch_bus.subscribe(
                response.base,
                lambda info: latencies.append(engine.now - pending.pop(0)))
            remote.register(f"node{index}", machine.memory, mailbox.base)
            machine.boot(0)
            machines.append(machine)
        engine.run(max_events=200 * nodes)  # park every mailbox server

        def send_round(round_id: int) -> None:
            for index in range(nodes):
                pending.append(engine.now)
                delivery = remote.remote_store("client", f"node{index}",
                                               0, round_id + 1)
                wires.append(delivery - engine.now)

        start = engine.now + 1_000
        for round_id in range(rounds):
            engine.at(start + round_id * gap, send_round, round_id)
        engine.run(until=start + rounds * gap + 200_000)
        for machine in machines:
            machine.check()
    else:
        overhead = SW_THREADS.transition_overhead_cycles(costs)

        def record(sent_at: int) -> None:
            latencies.append(engine.now - sent_at)

        def deliver(sent_at: int) -> None:
            # the callback path: the fabric hands the payload to the
            # host stack, which pays the software wakeup chain before
            # the application thread runs (distributed/rpc.py's
            # sw-threads transition tax)
            engine.after(overhead, record, sent_at)

        def send_round(round_id: int) -> None:
            for index in range(nodes):
                sent_at = engine.now
                delivery = fabric.send_traced("client", f"node{index}",
                                              deliver, sent_at)
                wires.append(delivery - sent_at)

        start = engine.now + 1_000
        for round_id in range(rounds):
            engine.at(start + round_id * gap, send_round, round_id)
        engine.run(until=start + rounds * gap + 200_000)

    if len(latencies) != nodes * rounds:
        raise AssertionError(
            f"{mode}: {len(latencies)}/{nodes * rounds} wakeups recorded")
    return {"latencies": latencies, "wires": wires, "send_at": send_at}


# ----------------------------------------------------------------------
# part 3: TDT miss amplification under fan-out
# ----------------------------------------------------------------------
def _tdt_amplification(fanout: int, shards: int, rounds: int,
                       costs: CostModel) -> Dict[str, float]:
    """F caller shards keep a hot descriptor set cached; one invtid per
    round measures the per-invalidation refetch bill, sharded vs flat.
    """
    hot = list(range(16))
    population = 256

    def churn_cost(n_shards: int) -> float:
        memories = [Memory(size_bytes=1 << 16) for _ in range(n_shards)]
        tdt = ShardedTdt.build(memories, population=population, costs=costs)
        callers = [caller % n_shards for caller in range(fanout)]
        for caller in callers:           # warm every caller's caches
            for vtid in hot:
                tdt.resolve(caller, vtid)
        cycles0, resolves0 = tdt.cycles_total, tdt.resolutions()
        for round_id in range(rounds):
            tdt.invalidate(hot[round_id % len(hot)])
            for caller in callers:
                for vtid in hot:
                    tdt.resolve(caller, vtid)
        cycles = tdt.cycles_total - cycles0
        resolves = tdt.resolutions() - resolves0
        # cycles above the all-hit floor == the bill the churn caused
        return (cycles - resolves * costs.tdt_lookup_cycles) / rounds

    sharded = churn_cost(shards)
    flat = churn_cost(1)
    return {
        "fanout": fanout,
        "sharded_cycles_per_invtid": sharded,
        "flat_cycles_per_invtid": flat,
        "amplification": sharded / flat if flat else 0.0,
    }


# ----------------------------------------------------------------------
@register("E17", "Coherence at scale: directory wakeups, remote mwait, "
                 "sharded TDT",
          'Section 3.1 "No More Interrupts" / Section 3.2 / Section 5')
def run(quick: bool = False, seed: int = 0xC0FFEE) -> ExperimentResult:
    costs = CostModel()
    result = ExperimentResult(
        "E17", "Coherence at scale: directory wakeups, remote mwait, "
               "sharded TDT")

    # --- part 1: sharer scaling ---------------------------------------
    sharer_counts = (1, 2, 4, 8) if quick else (1, 2, 4, 8, 16, 32)
    sweep = [_sharer_sweep(sharers) for sharers in sharer_counts]
    table = Table(["sharers", "writer inval (cyc)", "first wake (cyc)",
                   "last wake (cyc)"],
                  title="Directory wakeup vs sharer count "
                        "(one store, S parked waiters)")
    for row in sweep:
        table.add_row(row["sharers"], row["writer_cycles"],
                      row["first_wake"], row["last_wake"])
    result.add_table(table)
    result.data["sharer_sweep"] = sweep

    # --- part 2: remote mwait vs callback -----------------------------
    node_counts = (2, 4, 8) if quick else (2, 4, 8, 16, 32)
    rounds = 30 if quick else 120
    overhead = SW_THREADS.transition_overhead_cycles(costs)
    remote_rows = []
    for nodes in node_counts:
        rdma = _remote_mode(nodes, rounds, "rdma", seed, costs)
        callback = _remote_mode(nodes, rounds, "callback", seed, costs)
        taxes = {
            mode: [latency - wire for latency, wire
                   in zip(data["latencies"], data["wires"])]
            for mode, data in (("rdma", rdma), ("callback", callback))
        }
        remote_rows.append({
            "nodes": nodes,
            "rdma_p50": percentile(rdma["latencies"], 50),
            "rdma_p99": percentile(rdma["latencies"], 99),
            "callback_p50": percentile(callback["latencies"], 50),
            "callback_p99": percentile(callback["latencies"], 99),
            "rdma_tax_p50": percentile(taxes["rdma"], 50),
            "callback_tax_p50": percentile(taxes["callback"], 50),
        })
    table = Table(["nodes", "rdma p50", "rdma p99", "callback p50",
                   "callback p99", "rdma wake tax p50",
                   "callback wake tax p50"],
                  title="Remote-mwait vs rpc-callback wakeup "
                        "(cycles, common fabric draws)")
    for row in remote_rows:
        table.add_row(row["nodes"], row["rdma_p50"], row["rdma_p99"],
                      row["callback_p50"], row["callback_p99"],
                      row["rdma_tax_p50"], row["callback_tax_p50"])
    result.add_table(table)
    result.data["remote_mwait"] = remote_rows
    result.data["sw_transition_overhead"] = overhead

    # --- part 3: TDT miss amplification -------------------------------
    shards = 8 if quick else 32
    tdt_rounds = 20 if quick else 60
    fanouts = [f for f in (1, 2, 4, 8, 16, 32) if f <= shards]
    tdt_rows = [_tdt_amplification(fanout, shards, tdt_rounds, costs)
                for fanout in fanouts]
    table = Table(["fan-out", "sharded cyc/invtid", "flat cyc/invtid",
                   "amplification"],
                  title=f"TDT invalidation bill vs fan-out "
                        f"({shards} shards vs flat)")
    for row in tdt_rows:
        table.add_row(row["fanout"],
                      round(row["sharded_cycles_per_invtid"], 1),
                      round(row["flat_cycles_per_invtid"], 1),
                      round(row["amplification"], 1))
    result.add_table(table)
    result.data["tdt_amplification"] = tdt_rows

    # --- claims -------------------------------------------------------
    last_wakes = [row["last_wake"] for row in sweep]
    result.add_claim(
        "wakeup fan-out serializes: last wake grows with sharer count",
        "leverage the cache coherence protocol ... notify the core",
        f"last wake {last_wakes[0]} -> {last_wakes[-1]} cyc over "
        f"{sweep[0]['sharers']} -> {sweep[-1]['sharers']} sharers",
        Verdict.SUPPORTED
        if all(a < b for a, b in zip(last_wakes, last_wakes[1:]))
        else Verdict.PARTIAL)
    writer_costs = [row["writer_cycles"] for row in sweep]
    expected = [costs.dir_inval_base_cycles
                + costs.dir_inval_per_sharer_cycles * row["sharers"]
                for row in sweep]
    result.add_claim(
        "the writer pays one invalidation per sharer",
        "the coherence protocol's invalidation fan-out",
        f"measured {writer_costs} == base + per_sharer * S {expected}",
        Verdict.SUPPORTED if writer_costs == expected else Verdict.PARTIAL)

    tax_ratios = [row["callback_tax_p50"] / row["rdma_tax_p50"]
                  for row in remote_rows]
    result.add_claim(
        "a remote store into a watched line wakes a ptid an order of "
        "magnitude below the callback path",
        "instead of employing interrupts ... monitor/mwait",
        f"wake-tax p50 ratio {min(tax_ratios):.0f}x-"
        f"{max(tax_ratios):.0f}x across {node_counts} nodes",
        Verdict.SUPPORTED if min(tax_ratios) >= 10 else Verdict.PARTIAL)
    gaps = [row["callback_p50"] - row["rdma_p50"] for row in remote_rows]
    result.add_claim(
        "the p50 gap is the software transition tax",
        "hundreds of cycles ... context switch",
        f"gap {min(gaps):.0f}-{max(gaps):.0f} cyc vs sw transition "
        f"overhead {overhead} cyc",
        Verdict.SUPPORTED
        if all(0.8 * overhead <= gap <= 1.1 * overhead for gap in gaps)
        else Verdict.PARTIAL)
    result.add_claim(
        "the wakeup-path gap is flat in cluster size",
        "per-context hardware state ... stays flat",
        f"gap spread {max(gaps) / min(gaps):.2f}x over "
        f"{node_counts[0]}-{node_counts[-1]} nodes",
        Verdict.SUPPORTED if max(gaps) / min(gaps) < 1.5
        else Verdict.PARTIAL)

    amps = [row["amplification"] for row in tdt_rows]
    result.add_claim(
        "sharding amplifies invtid cost with fan-out",
        "the update only becomes visible ... invtid (Section 3.2), "
        "scaled out",
        f"amplification {amps[0]:.0f}x -> {amps[-1]:.0f}x over fan-out "
        f"{fanouts[0]} -> {fanouts[-1]}",
        Verdict.SUPPORTED if amps[-1] > amps[0] >= 1.0 else Verdict.PARTIAL)
    return result
